"""Figure (extension): the d<=1 / I_comp Pareto frontier of the weights.

The paper fixes one (unpublished) weight setting.  This bench sweeps
the interconnect-to-balance ratio on KSA8/K=5 and renders the resulting
trade-off frontier (`benchmarks/output/figure_pareto.txt`) — the map a
designer would consult to pick ``c1..c3`` for their own tolerance of
dummy current vs coupling hardware.
"""

import pytest

from conftest import write_artifact
from repro.circuits.suite import build_circuit
from repro.harness.pareto import render_frontier, sweep_weights

RATIOS = (0.2, 1.0, 4.0, 16.0, 64.0)


def test_figure_pareto(benchmark, bench_config, output_dir):
    netlist = build_circuit("KSA8")

    def run_sweep():
        return sweep_weights(netlist, 5, bench_config, ratios=RATIOS, seed=2020)

    points, front = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = render_frontier(
        points, front, title="cost-weight Pareto frontier (KSA8, K=5)"
    )
    detail_lines = [
        f"c1={p.c1:g}: crossing={p.crossing_fraction:.3f} "
        f"I_comp={p.i_comp_pct:.2f}% A_FS={p.a_fs_pct:.2f}%"
        + ("   [frontier]" if p in front else "")
        for p in points
    ]
    artifact = text + "\n\n" + "\n".join(detail_lines)
    path = write_artifact(output_dir, "figure_pareto.txt", artifact)
    print()
    print(artifact)
    print(f"[written to {path}]")

    assert len(points) == len(RATIOS)
    assert 1 <= len(front) <= len(points)
    # the sweep must actually move both objectives
    crossings = [p.crossing_fraction for p in points]
    balances = [p.i_comp_pct for p in points]
    assert max(crossings) - min(crossings) > 0.01
    assert max(balances) - min(balances) > 0.5
    # frontier points are mutually non-dominated
    for a in front:
        for b in front:
            if a is b:
                continue
            assert not (
                all(ao <= bo for ao, bo in zip(a.objectives, b.objectives))
                and a.objectives != b.objectives
            )
