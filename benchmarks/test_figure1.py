"""Reproduce **Fig. 1**: the current-recycling floorplan illustration.

The paper's Fig. 1 is a schematic of K stacked ground planes with the
serial bias feed and adjacent-plane couplings.  This bench regenerates
it from a *real* KSA4 partition — stripes sized from actual plane
areas, coupling counts from actual connection distances — and verifies
the physical invariants the figure illustrates.  Rendered to
``benchmarks/output/figure1.txt``.
"""

import numpy as np

from conftest import write_artifact
from repro.harness.figures import figure1
from repro.recycling.verify import plan_recycling, verify_recycling


def test_figure1(benchmark, bench_config, output_dir):
    text, floorplan, result = benchmark.pedantic(
        figure1,
        args=("KSA4", 5),
        kwargs={"config": bench_config},
        rounds=3,
        iterations=1,
    )
    path = write_artifact(output_dir, "figure1.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # figure invariants
    assert floorplan.num_planes == 5
    assert len(floorplan.stripes) == 5
    heights = {round(stripe.height_mm, 9) for stripe in floorplan.stripes}
    assert len(heights) == 1  # equal stripes, as drawn in the paper
    assert floorplan.pairs_per_boundary.shape == (4,)
    assert int(floorplan.pairs_per_boundary.sum()) == int(
        result.connection_distances().sum()
    )

    # the full physical plan behind the figure must verify
    plan = plan_recycling(result)
    assert verify_recycling(plan) == []
    assert plan.chain.supply_current_ma == np.max(result.plane_bias_ma())


def test_figure1_utilization_shows_free_space(benchmark, bench_config):
    """Smaller planes show up as lower stripe utilization — the visual
    counterpart of the A_FS column."""
    _, floorplan, result = benchmark.pedantic(
        figure1, args=("KSA4", 5), kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    utilizations = [stripe.utilization for stripe in floorplan.stripes]
    areas = result.plane_area_mm2()
    order_by_util = np.argsort(utilizations)
    order_by_area = np.argsort(areas)
    assert list(order_by_util) == list(order_by_area)
