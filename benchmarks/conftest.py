"""Shared fixtures for the reproduction benches.

Every bench writes its rendered table/figure to ``benchmarks/output/``
so the artifacts referenced by EXPERIMENTS.md are regenerated on each
``pytest benchmarks/ --benchmark-only`` run.
"""

import os

import pytest

from repro.core.config import PartitionConfig

#: Where benches drop their rendered tables/figures.
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def output_dir():
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def bench_config():
    """The configuration used by all reproduction benches.

    Matches the library defaults but pins the seed so the regenerated
    tables are identical run to run.
    """
    return PartitionConfig(seed=2020)


@pytest.fixture(scope="session")
def search_config():
    """Cheaper configuration for benches that run *many* partitions
    (the Table III K-search partitions ID8 dozens of times at K > 50).
    A single restart and a tighter iteration cap change the reported
    numbers marginally but cut the wall-clock severalfold."""
    return PartitionConfig(seed=2020, restarts=1, max_iterations=600)


def write_artifact(output_dir, name, text):
    """Write one rendered artifact and return its path."""
    path = os.path.join(output_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
