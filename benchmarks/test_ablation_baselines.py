"""Ablation: the paper's gradient method vs classic partitioners.

The paper claims the problem "can not be formulated as a classic K-way
partitioning problem" but publishes no baseline.  This bench runs four
of them plus the gradient method on KSA16/K=5 and writes the panel to
``benchmarks/output/ablation_baselines.txt``.

Headline reproduction finding (see EXPERIMENTS.md): on fully
path-balanced SFQ netlists — which are nearly linear graphs — the
dataflow-contiguous baselines (levelized greedy, spectral, FM) dominate
the gradient method on every metric simultaneously.
"""

import pytest

from conftest import write_artifact
from repro.baselines import (
    annealing_partition,
    fm_partition,
    greedy_partition,
    multilevel_partition,
    random_partition,
    spectral_partition,
)
from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition

METHODS = {
    "gradient": partition,
    "random": random_partition,
    "greedy": greedy_partition,
    "spectral": spectral_partition,
    "fm": fm_partition,
    "annealing": annealing_partition,
    "multilevel": multilevel_partition,
}
_RESULTS = {}


@pytest.mark.parametrize("method", sorted(METHODS))
def test_ablation_baseline(benchmark, method, bench_config):
    netlist = build_circuit("KSA16")
    runner = METHODS[method]
    result = benchmark.pedantic(
        runner, args=(netlist, 5), kwargs={"config": bench_config}, rounds=2, iterations=1
    )
    _RESULTS[method] = (evaluate_partition(result), result.integer_cost())


def test_ablation_baselines_report(benchmark, output_dir, bench_config):
    def assemble():
        netlist = build_circuit("KSA16")
        for method, runner in METHODS.items():
            if method not in _RESULTS:
                result = runner(netlist, 5, config=bench_config)
                _RESULTS[method] = (evaluate_partition(result), result.integer_cost())
        rows = []
        for method in ("gradient", "random", "greedy", "spectral", "fm", "annealing", "multilevel"):
            report, cost = _RESULTS[method]
            rows.append([
                method, percent(report.frac_d_le_1), percent(report.frac_d_le_2),
                f"{report.i_comp_pct:.2f}%", f"{report.a_fs_pct:.2f}%", f"{cost:.4f}",
            ])
        return ascii_table(
            ["method", "d<=1", "d<=2", "I_comp", "A_FS", "integer cost"],
            rows,
            title="ablation: gradient vs classic partitioners (KSA16, K=5)",
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "ablation_baselines.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    gradient_report, gradient_cost = _RESULTS["gradient"]
    random_report, random_cost = _RESULTS["random"]
    greedy_report, greedy_cost = _RESULTS["greedy"]
    # the gradient method must beat random soundly...
    assert gradient_cost < random_cost
    assert gradient_report.frac_d_le_1 > random_report.frac_d_le_1
    # ...and the reproduction finding: contiguous ordering beats it
    assert greedy_report.frac_d_le_1 > gradient_report.frac_d_le_1
    assert greedy_cost < gradient_cost
