"""Reproduce **Table I**: partition the full suite at K = 5.

Each circuit is one pytest-benchmark case timing the whole Algorithm-1
partition (restarts included); the collected reports are rendered next
to the paper's published rows into ``benchmarks/output/table1.txt``.

Shape assertions (not absolute-number matches — see EXPERIMENTS.md):

* the d <= 1 and d <= 2 fractions sit in the paper's band;
* I_comp and A_FS stay in the low tens of percent;
* d <= 1 degrades from KSA4 to the biggest circuits, as in the paper.
"""

import pytest

from conftest import write_artifact
from repro.circuits.suite import SUITE_NAMES, build_circuit
from repro.core.partitioner import partition
from repro.harness.tables import Table1Row, format_table1
from repro.metrics.report import evaluate_partition
from repro.circuits.suite import PAPER_TABLE1

_REPORTS = {}

#: circuits small enough to time with multiple rounds
_FAST = {"KSA4", "KSA8", "KSA16", "MULT4", "ID4", "C499", "C1355", "C432", "C1908"}


@pytest.mark.parametrize("circuit", SUITE_NAMES)
def test_table1_row(benchmark, circuit, bench_config):
    netlist = build_circuit(circuit)
    rounds = 3 if circuit in _FAST else 1

    result = benchmark.pedantic(
        partition,
        args=(netlist, 5),
        kwargs={"config": bench_config},
        rounds=rounds,
        iterations=1,
    )
    report = evaluate_partition(result)
    _REPORTS[circuit] = report

    # ---- shape assertions -------------------------------------------
    assert 0.35 <= report.frac_d_le_1 <= 1.0
    assert report.frac_d_le_2 >= report.frac_d_le_1
    assert report.frac_d_le_2 >= 0.60
    assert report.i_comp_pct <= 40.0
    assert report.a_fs_pct <= 40.0
    assert report.b_max_ma >= report.b_cir_ma / 5  # B_max >= average


def test_table1_assembled(benchmark, output_dir, bench_config):
    """Render the assembled Table I and check cross-row shape."""

    def assemble():
        for name in SUITE_NAMES:  # fill any rows not produced by the benches
            if name not in _REPORTS:
                _REPORTS[name] = evaluate_partition(
                    partition(build_circuit(name), 5, config=bench_config)
                )
        rows = [
            Table1Row(report=_REPORTS[name], paper=PAPER_TABLE1[name])
            for name in SUITE_NAMES
        ]
        return format_table1(rows)

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "table1.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # paper shape: interconnect quality degrades with circuit size
    small = _REPORTS["KSA4"].frac_d_le_1
    big = min(_REPORTS["ID8"].frac_d_le_1, _REPORTS["C3540"].frac_d_le_1)
    assert small > big
    # averages in the paper's neighborhood (paper: 65.1 % and 87.7 %)
    mean_d1 = sum(r.frac_d_le_1 for r in _REPORTS.values()) / len(_REPORTS)
    mean_d2 = sum(r.frac_d_le_2 for r in _REPORTS.values()) / len(_REPORTS)
    assert 0.45 <= mean_d1 <= 0.90
    assert 0.70 <= mean_d2 <= 1.00
