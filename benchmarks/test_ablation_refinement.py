"""Ablation: greedy post-rounding refinement (extension over the paper).

Algorithm 1 ends with a bare per-gate argmax.  ``refine_greedy`` adds
steepest-descent single-gate moves on the integer cost.  This bench
quantifies what that recovers on MULT4/K=5, and times both pipelines.
Written to ``benchmarks/output/ablation_refinement.txt``.
"""

import pytest

from conftest import write_artifact
from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition
from repro.core.refinement import refine_greedy
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition

_RESULTS = {}


def _plain(netlist, config):
    return partition(netlist, 5, config=config)


def _refined(netlist, config):
    return refine_greedy(partition(netlist, 5, config=config))


@pytest.mark.parametrize("variant", ["plain", "refined"])
def test_ablation_refinement(benchmark, variant, bench_config):
    netlist = build_circuit("MULT4")
    runner = _plain if variant == "plain" else _refined
    result = benchmark.pedantic(
        runner, args=(netlist, bench_config), rounds=2, iterations=1
    )
    _RESULTS[variant] = (evaluate_partition(result), result.integer_cost())


def test_ablation_refinement_report(benchmark, output_dir, bench_config):
    def assemble():
        netlist = build_circuit("MULT4")
        for variant, runner in (("plain", _plain), ("refined", _refined)):
            if variant not in _RESULTS:
                result = runner(netlist, bench_config)
                _RESULTS[variant] = (evaluate_partition(result), result.integer_cost())
        rows = []
        for variant in ("plain", "refined"):
            report, cost = _RESULTS[variant]
            rows.append([
                variant, percent(report.frac_d_le_1), percent(report.frac_d_le_2),
                f"{report.i_comp_pct:.2f}%", f"{report.a_fs_pct:.2f}%", f"{cost:.4f}",
            ])
        return ascii_table(
            ["variant", "d<=1", "d<=2", "I_comp", "A_FS", "integer cost"],
            rows,
            title="ablation: argmax rounding vs greedy refinement (MULT4, K=5)",
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "ablation_refinement.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    plain_cost = _RESULTS["plain"][1]
    refined_cost = _RESULTS["refined"][1]
    assert refined_cost <= plain_cost + 1e-12
