"""Ablation: optimality gap of the heuristics on exactly-solvable instances.

On tiny netlists (10 gates, K = 3 — 59k assignments) the true optimum
of the paper's integer cost is computable by enumeration.  This bench
measures how far each heuristic lands from it.  Written to
``benchmarks/output/ablation_exact.txt``.
"""

import numpy as np
import pytest

from conftest import write_artifact
from repro.baselines import (
    annealing_partition,
    exact_partition,
    fm_partition,
    greedy_partition,
    multilevel_partition,
    random_partition,
    spectral_partition,
)
from repro.core.partitioner import partition
from repro.harness.formatting import ascii_table
from repro.netlist.library import default_library
from repro.netlist.netlist import Netlist

NUM_GATES = 10
NUM_PLANES = 3
SEEDS = (3, 7, 11)

METHODS = {
    "gradient": partition,
    "random": random_partition,
    "greedy": greedy_partition,
    "spectral": spectral_partition,
    "fm": fm_partition,
    "annealing": annealing_partition,
    "multilevel": multilevel_partition,
}

_GAPS = {}


def _instance(seed):
    library = default_library()
    rng = np.random.default_rng(seed)
    netlist = Netlist(f"tiny_{seed}", library=library)
    kinds = ["DFF", "AND2", "SPLIT", "OR2", "XOR2"]
    for i in range(NUM_GATES):
        netlist.add_gate(f"g{i}", library[kinds[i % len(kinds)]])
    for i in range(NUM_GATES - 1):
        netlist.connect(f"g{i}", f"g{i + 1}")
    added = 0
    while added < NUM_GATES // 2:
        u, v = sorted(rng.integers(0, NUM_GATES, 2).tolist())
        if u != v and not netlist.has_edge(u, v):
            netlist.connect(u, v)
            added += 1
    return netlist


def _gap_for(method_name, bench_config):
    runner = METHODS[method_name]
    ratios = []
    for seed in SEEDS:
        netlist = _instance(seed)
        optimum = exact_partition(netlist, NUM_PLANES, config=bench_config).integer_cost()
        cost = runner(netlist, NUM_PLANES, config=bench_config).integer_cost()
        ratios.append(cost / optimum if optimum > 0 else 1.0)
    return float(np.mean(ratios))


@pytest.mark.parametrize("method", sorted(METHODS))
def test_ablation_exact_gap(benchmark, method, bench_config):
    gap = benchmark.pedantic(_gap_for, args=(method, bench_config), rounds=1, iterations=1)
    _GAPS[method] = gap
    assert gap >= 1.0 - 1e-9  # nothing beats the optimum
    if method != "random":
        assert gap < 30.0  # every real heuristic is in the right ballpark


def test_ablation_exact_report(benchmark, output_dir, bench_config):
    def assemble():
        for method in METHODS:
            if method not in _GAPS:
                _GAPS[method] = _gap_for(method, bench_config)
        rows = [
            [method, f"{_GAPS[method]:.3f}x"]
            for method in sorted(_GAPS, key=_GAPS.get)
        ]
        return ascii_table(
            ["method", "mean cost / optimum"],
            rows,
            title=(
                f"ablation: optimality gap on {len(SEEDS)} exactly-solved "
                f"instances (G={NUM_GATES}, K={NUM_PLANES})"
            ),
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "ablation_exact.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # structured heuristics must beat random on average
    assert _GAPS["fm"] <= _GAPS["random"]
    assert _GAPS["greedy"] <= _GAPS["random"]
