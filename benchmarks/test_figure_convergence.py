"""Reproduce the gradient-descent convergence behavior of Algorithm 1.

The paper has no explicit convergence plot, but its Algorithm 1 defines
one implicitly: the cost trace from random initialization until the
relative change drops below ``margin = 1e-4``.  This bench regenerates
that curve for KSA8 / K = 5 (``benchmarks/output/figure_convergence.txt``)
and asserts the stopping behavior the paper claims — convergence "within
an acceptable time window", i.e. well before the iteration safety cap.
"""

from conftest import write_artifact
from repro.harness.figures import convergence_trace, render_convergence


def test_convergence_figure(benchmark, bench_config, output_dir):
    history, result = benchmark.pedantic(
        convergence_trace,
        args=("KSA8", 5),
        kwargs={"config": bench_config},
        rounds=3,
        iterations=1,
    )
    text = render_convergence(
        history, title="Algorithm 1 cost vs iteration (KSA8, K=5, winning restart)"
    )
    path = write_artifact(output_dir, "figure_convergence.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # margin-based stop fired well before the safety cap
    assert result.trace.converged
    assert result.trace.iterations < bench_config.max_iterations
    # the trace settles: the last 10 % of iterations move the cost by
    # far less than the first 10 %
    tail_count = max(len(history) // 10, 2)
    head_span = max(history[:tail_count]) - min(history[:tail_count])
    tail_span = max(history[-tail_count:]) - min(history[-tail_count:])
    assert tail_span <= head_span + 1e-12


def test_convergence_margin_controls_iterations(benchmark, bench_config):
    """Loosening the margin must stop the descent earlier."""
    loose = bench_config.with_(margin=1e-2, restarts=1)
    tight = bench_config.with_(margin=1e-5, restarts=1)

    def run_both():
        _, loose_result = convergence_trace("KSA4", 5, config=loose)
        _, tight_result = convergence_trace("KSA4", 5, config=tight)
        return loose_result, tight_result

    loose_result, tight_result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert loose_result.trace.iterations <= tight_result.trace.iterations
