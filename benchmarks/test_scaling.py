"""Performance bench: partition runtime scaling over circuit size.

The paper justifies plain gradient descent over second-order methods by
runtime ("a good estimation for the result within an acceptable time
window").  This bench times the partitioner across the KSA family (93
to ~1600 published gates) and asserts near-linear scaling per iteration
— the per-step work is O(G*K + |E|) in vectorized NumPy.
"""

import time

import pytest

from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition

_TIMES = {}

FAMILY = ("KSA4", "KSA8", "KSA16", "KSA32")


@pytest.mark.parametrize("circuit", FAMILY)
def test_scaling_partition(benchmark, circuit, bench_config):
    netlist = build_circuit(circuit)
    config = bench_config.with_(restarts=1)
    start = time.perf_counter()
    result = benchmark.pedantic(
        partition, args=(netlist, 5), kwargs={"config": config}, rounds=2, iterations=1
    )
    elapsed = time.perf_counter() - start
    iterations = max(result.trace.iterations, 1)
    _TIMES[circuit] = (netlist.num_gates, elapsed / 2.0, iterations)
    assert result.num_planes == 5


def test_scaling_is_subquadratic(benchmark):
    def assemble():
        for circuit in FAMILY:
            if circuit not in _TIMES:
                netlist = build_circuit(circuit)
                start = time.perf_counter()
                result = partition(netlist, 5)
                _TIMES[circuit] = (
                    netlist.num_gates,
                    time.perf_counter() - start,
                    max(result.trace.iterations, 1),
                )
        return dict(_TIMES)

    times = benchmark.pedantic(assemble, rounds=1, iterations=1)
    small_gates, small_time, small_iterations = times["KSA4"]
    big_gates, big_time, big_iterations = times["KSA32"]
    size_ratio = big_gates / small_gates  # ~22x
    per_iteration_ratio = (big_time / big_iterations) / (small_time / small_iterations)
    # per-iteration cost must grow clearly sub-quadratically in G
    assert per_iteration_ratio < size_ratio**2 / 2
