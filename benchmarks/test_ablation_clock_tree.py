"""Ablation: including the clock distribution network in the partition.

The paper's connection counts imply signal nets only (see
DESIGN.md/clocking module).  But on a real chip the flow-clocking spine
must also cross plane boundaries.  This bench synthesizes KSA8 with and
without the clock network, partitions both, and quantifies what the
clock adds: more gates, more connections, and more coupling pairs.
Written to ``benchmarks/output/ablation_clock_tree.txt``.
"""

import pytest

from conftest import write_artifact
from repro.circuits.ksa import kogge_stone_adder
from repro.core.partitioner import partition
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition
from repro.recycling.coupling import plan_couplings
from repro.synth.flow import SynthesisOptions, synthesize

_RESULTS = {}


def _run(include_clock, config):
    options = SynthesisOptions(include_clock_tree=include_clock)
    netlist, _stats = synthesize(kogge_stone_adder(8), options=options)
    result = partition(netlist, 5, config=config)
    return netlist, result


@pytest.mark.parametrize("include_clock", [False, True])
def test_ablation_clock_tree(benchmark, include_clock, bench_config):
    netlist, result = benchmark.pedantic(
        _run, args=(include_clock, bench_config), rounds=2, iterations=1
    )
    _RESULTS[include_clock] = (
        netlist,
        evaluate_partition(result),
        plan_couplings(result),
    )


def test_ablation_clock_tree_report(benchmark, output_dir, bench_config):
    def assemble():
        for include_clock in (False, True):
            if include_clock not in _RESULTS:
                netlist, result = _run(include_clock, bench_config)
                _RESULTS[include_clock] = (
                    netlist,
                    evaluate_partition(result),
                    plan_couplings(result),
                )
        rows = []
        for include_clock in (False, True):
            netlist, report, couplings = _RESULTS[include_clock]
            rows.append([
                "with clock" if include_clock else "signal only",
                netlist.num_gates, netlist.num_connections,
                percent(report.frac_d_le_1), f"{report.i_comp_pct:.2f}%",
                couplings.total_pairs,
            ])
        return ascii_table(
            ["netlist", "gates", "conns", "d<=1", "I_comp", "coupling pairs"],
            rows,
            title="ablation: clock network in the partition graph (KSA8, K=5)",
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "ablation_clock_tree.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    signal_netlist, _, signal_couplings = _RESULTS[False]
    clocked_netlist, _, clocked_couplings = _RESULTS[True]
    assert clocked_netlist.num_gates > signal_netlist.num_gates
    assert clocked_netlist.num_connections > signal_netlist.num_connections
    assert clocked_couplings.total_pairs >= signal_couplings.total_pairs * 0.8
