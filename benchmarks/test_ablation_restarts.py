"""Ablation: random-restart count.

Algorithm 1 initializes ``w`` randomly; the paper is silent on
restarts.  This bench sweeps 1/2/4/8 restarts on KSA8/K=5 — more
restarts can only lower the best integer cost (they are monotone by
construction here since the seed streams are nested-independent), at
linearly growing runtime.  Written to
``benchmarks/output/ablation_restarts.txt``.
"""

import pytest

from conftest import write_artifact
from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition

RESTARTS = (1, 2, 4, 8)
_RESULTS = {}


@pytest.mark.parametrize("restarts", RESTARTS)
def test_ablation_restarts(benchmark, restarts, bench_config):
    config = bench_config.with_(restarts=restarts)
    netlist = build_circuit("KSA8")
    result = benchmark.pedantic(
        partition, args=(netlist, 5), kwargs={"config": config}, rounds=2, iterations=1
    )
    _RESULTS[restarts] = (
        evaluate_partition(result),
        result.integer_cost(),
        min(result.restart_costs),
        max(result.restart_costs),
    )


def test_ablation_restarts_report(benchmark, output_dir, bench_config):
    def assemble():
        netlist = build_circuit("KSA8")
        for restarts in RESTARTS:
            if restarts not in _RESULTS:
                result = partition(
                    netlist, 5, config=bench_config.with_(restarts=restarts)
                )
                _RESULTS[restarts] = (
                    evaluate_partition(result),
                    result.integer_cost(),
                    min(result.restart_costs),
                    max(result.restart_costs),
                )
        rows = []
        for restarts in RESTARTS:
            report, cost, best, worst = _RESULTS[restarts]
            rows.append([
                restarts, percent(report.frac_d_le_1), f"{report.i_comp_pct:.2f}%",
                f"{cost:.4f}", f"{best:.4f}", f"{worst:.4f}",
            ])
        return ascii_table(
            ["restarts", "d<=1", "I_comp", "kept cost", "best restart", "worst restart"],
            rows,
            title="ablation: random restarts (KSA8, K=5)",
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "ablation_restarts.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # restart-to-restart spread is real (the relaxation is non-convex)
    _, _, best8, worst8 = _RESULTS[8]
    assert worst8 >= best8
