"""Ablation: gradient flavor and update rule.

DESIGN.md documents two deliberate implementation choices around
Algorithm 1:

* **gradient_mode** — eq. (10)'s printed F4 gradient (``paper``) is not
  the true derivative of eq. (9)'s F4; ``exact`` is.  Which matters?
* **renormalize_rows** — the pseudo-code clips to [0, 1] only; the
  default here projects rows back onto the simplex after every step
  (clip-only produced unusable balance in calibration).

This bench measures all four combinations on KSA8/K=5 and writes the
comparison to ``benchmarks/output/ablation_gradient.txt``.
"""

import itertools

import pytest

from conftest import write_artifact
from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition

VARIANTS = list(itertools.product(["paper", "exact"], [True, False]))
_RESULTS = {}


@pytest.mark.parametrize("gradient_mode,renormalize", VARIANTS)
def test_ablation_gradient_variant(benchmark, gradient_mode, renormalize, bench_config):
    config = bench_config.with_(gradient_mode=gradient_mode, renormalize_rows=renormalize)
    netlist = build_circuit("KSA8")
    result = benchmark.pedantic(
        partition, args=(netlist, 5), kwargs={"config": config}, rounds=2, iterations=1
    )
    _RESULTS[(gradient_mode, renormalize)] = evaluate_partition(result)


def test_ablation_gradient_report(benchmark, output_dir, bench_config):
    def assemble():
        netlist = build_circuit("KSA8")
        for key in VARIANTS:
            if key not in _RESULTS:
                config = bench_config.with_(gradient_mode=key[0], renormalize_rows=key[1])
                _RESULTS[key] = evaluate_partition(partition(netlist, 5, config=config))
        rows = []
        for (mode, renorm), report in sorted(_RESULTS.items()):
            rows.append([
                mode, str(renorm), percent(report.frac_d_le_1),
                percent(report.frac_d_le_2), f"{report.i_comp_pct:.2f}%",
                f"{report.a_fs_pct:.2f}%",
            ])
        return ascii_table(
            ["gradient", "row renorm", "d<=1", "d<=2", "I_comp", "A_FS"],
            rows,
            title="ablation: gradient flavor x update rule (KSA8, K=5)",
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "ablation_gradient.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # the calibration finding: projection keeps balance workable, the
    # clip-only variant (paper pseudo-code verbatim) does not
    for mode in ("paper", "exact"):
        with_projection = _RESULTS[(mode, True)]
        clip_only = _RESULTS[(mode, False)]
        assert with_projection.i_comp_pct < clip_only.i_comp_pct
