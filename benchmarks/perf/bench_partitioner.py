#!/usr/bin/env python
"""Partitioner engine benchmark: batched fused-kernel vs. legacy loop.

Times :func:`repro.partition` on reconstructed Table I circuits for both
solver engines (``PartitionConfig.engine``), verifies that the engines
produce bitwise-identical rounded labels for the same seed, and writes
the results to ``BENCH_partitioner.json`` so later PRs inherit a
comparable perf trajectory.

``--megabatch`` switches to the cross-job packing scenario instead:
queues of 1/4/16 compatible partition jobs run through
:func:`repro.harness.runner.run_jobs` once solo and once packed
(``megabatch=True``), the per-job payloads are diffed bitwise (any
mismatch is a hard failure — packing is only legal because it is
invisible), and the solo/packed throughput ratio is written to
``BENCH_megabatch.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_partitioner.py
    PYTHONPATH=src python benchmarks/perf/bench_partitioner.py --quick
    PYTHONPATH=src python benchmarks/perf/bench_partitioner.py --megabatch

``--quick`` is the CI smoke mode: one small circuit, one repeat, a
reduced iteration cap — it exists to prove the harness runs, not to
produce meaningful timings.

JSON schema (one entry per circuit in ``results``)::

    {
      "meta":    {timestamp, python, numpy, platform, quick, planes,
                  restarts, repeats, max_iterations, seed},
      "results": [{circuit, gates, connections, planes, restarts,
                   loop_s, batched_s, speedup, labels_identical,
                   loop_iterations, batched_iterations,
                   loop_restart_iterations, batched_restart_iterations,
                   loop_total_iterations, batched_total_iterations,
                   loop_converged_fraction, batched_converged_fraction}],
      "summary": {geomean_speedup, all_labels_identical}
    }

    ``*_iterations`` is the winning restart; ``*_restart_iterations``
    lists every restart and ``*_total_iterations`` sums them, so a
    speedup can be checked against equal work per engine rather than
    conflated with early convergence.  ``*_converged_fraction`` is the
    share of restarts whose margin criterion fired before the iteration
    cap.

Timings are the best (minimum) of ``--repeats`` runs of a full
``partition()`` call — restarts, rounding, restart scoring and repair
included — in a single process on one machine.
"""

import argparse
import json
import math
import os
import platform
import sys
import time

import numpy as np

DEFAULT_CIRCUITS = ("KSA8", "KSA16", "MULT8")
DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_partitioner.json")
DEFAULT_MEGABATCH_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_megabatch.json"
)

#: Queue depths measured by the ``--megabatch`` scenario.
MEGABATCH_JOB_COUNTS = (1, 4, 16)

#: Default circuit for ``--megabatch``: packing amortizes per-iteration
#: Python/dispatch overhead, which dominates small solves — a queue of
#: small repeated requests is exactly the service workload the packer
#: targets (large single solves are already arithmetic-bound).
MEGABATCH_CIRCUIT = "KSA4"


def _time_partition(netlist, num_planes, config, repeats):
    """Best-of-``repeats`` wall time of one full partition() call."""
    from repro.core.partitioner import partition

    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = partition(netlist, num_planes, config=config)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def run_benchmark(circuits, planes, restarts, repeats, max_iterations, seed, quick):
    from repro.circuits.suite import build_circuit
    from repro.core.config import PartitionConfig

    base = PartitionConfig(seed=seed, restarts=restarts, max_iterations=max_iterations)
    rows = []
    for name in circuits:
        netlist = build_circuit(name)
        loop_s, loop_result = _time_partition(
            netlist, planes, base.with_(engine="loop"), repeats
        )
        batched_s, batched_result = _time_partition(
            netlist, planes, base.with_(engine="batched"), repeats
        )
        identical = bool(np.array_equal(loop_result.labels, batched_result.labels))
        loop_iters = [s["iterations"] for s in loop_result.restart_stats]
        batched_iters = [s["iterations"] for s in batched_result.restart_stats]
        loop_conv = [s["converged"] for s in loop_result.restart_stats]
        batched_conv = [s["converged"] for s in batched_result.restart_stats]
        rows.append(
            {
                "circuit": name,
                "gates": netlist.num_gates,
                "connections": netlist.num_connections,
                "planes": planes,
                "restarts": restarts,
                "loop_s": round(loop_s, 6),
                "batched_s": round(batched_s, 6),
                "speedup": round(loop_s / batched_s, 3) if batched_s > 0 else math.inf,
                "labels_identical": identical,
                "loop_iterations": loop_result.trace.iterations,
                "batched_iterations": batched_result.trace.iterations,
                "loop_restart_iterations": loop_iters,
                "batched_restart_iterations": batched_iters,
                "loop_total_iterations": sum(loop_iters),
                "batched_total_iterations": sum(batched_iters),
                "loop_converged_fraction": sum(loop_conv) / len(loop_conv),
                "batched_converged_fraction": sum(batched_conv) / len(batched_conv),
            }
        )
        print(
            f"{name:>8}  G={netlist.num_gates:<5} E={netlist.num_connections:<5} "
            f"loop {loop_s * 1e3:8.1f} ms   batched {batched_s * 1e3:8.1f} ms   "
            f"speedup {rows[-1]['speedup']:5.2f}x   labels identical: {identical}   "
            f"iters {sum(loop_iters)}/{sum(batched_iters)}   "
            f"converged {sum(batched_conv)}/{len(batched_conv)}"
        )

    speedups = [r["speedup"] for r in rows if math.isfinite(r["speedup"])]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups)) if speedups else 0.0
    return {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": quick,
            "planes": planes,
            "restarts": restarts,
            "repeats": repeats,
            "max_iterations": max_iterations,
            "seed": seed,
        },
        "results": rows,
        "summary": {
            "geomean_speedup": round(geomean, 3),
            "all_labels_identical": all(r["labels_identical"] for r in rows),
            # Bitwise engine equivalence implies identical per-restart
            # iteration counts; a False here means a speedup figure is
            # comparing unequal amounts of work.
            "iteration_counts_identical": all(
                r["loop_restart_iterations"] == r["batched_restart_iterations"] for r in rows
            ),
        },
    }


def run_megabatch_benchmark(circuit, planes, restarts, repeats, max_iterations, seed, quick):
    """Solo vs packed execution of 1/4/16 queued compatible jobs.

    Every row re-solves the same queue twice — once with cross-job
    packing off, once on — and diffs the per-job payloads bitwise
    (canonical JSON form, labels included).  ``payloads_identical``
    False anywhere is a benchmark failure, not a data point: packing
    must be invisible.
    """
    from repro.circuits.suite import build_circuit
    from repro.core.config import PartitionConfig
    from repro.harness.checkpoint import payload_to_jsonable
    from repro.harness.runner import SuiteJob, run_jobs

    netlist = build_circuit(circuit)
    config = PartitionConfig(seed=seed, restarts=restarts, max_iterations=max_iterations)
    rows = []
    for count in MEGABATCH_JOB_COUNTS:
        jobs = [
            SuiteJob(
                kind="partition", circuit=circuit, num_planes=planes,
                seed=seed + index, config=config,
            )
            for index in range(count)
        ]
        solo_s = math.inf
        packed_s = math.inf
        solo_payloads = packed_payloads = None
        for _ in range(repeats):
            start = time.perf_counter()
            solo_payloads = run_jobs(jobs, jobs=1, megabatch=False)
            solo_s = min(solo_s, time.perf_counter() - start)
            start = time.perf_counter()
            packed_payloads = run_jobs(jobs, jobs=1, megabatch=True)
            packed_s = min(packed_s, time.perf_counter() - start)
        identical = [payload_to_jsonable(p) for p in solo_payloads] == [
            payload_to_jsonable(p) for p in packed_payloads
        ]
        rows.append(
            {
                "circuit": circuit,
                "gates": netlist.num_gates,
                "connections": netlist.num_connections,
                "planes": planes,
                "restarts": restarts,
                "jobs": count,
                "solo_s": round(solo_s, 6),
                "packed_s": round(packed_s, 6),
                "solo_jobs_per_s": round(count / solo_s, 3) if solo_s > 0 else math.inf,
                "packed_jobs_per_s": round(count / packed_s, 3) if packed_s > 0 else math.inf,
                "throughput_ratio": round(solo_s / packed_s, 3) if packed_s > 0 else math.inf,
                "payloads_identical": identical,
            }
        )
        print(
            f"{circuit:>8}  jobs={count:<3} solo {solo_s * 1e3:8.1f} ms   "
            f"packed {packed_s * 1e3:8.1f} ms   ratio {rows[-1]['throughput_ratio']:5.2f}x   "
            f"payloads identical: {identical}"
        )

    ratios = [r["throughput_ratio"] for r in rows if math.isfinite(r["throughput_ratio"])]
    return {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": quick,
            "scenario": "megabatch",
            "circuit": circuit,
            "planes": planes,
            "restarts": restarts,
            "repeats": repeats,
            "max_iterations": max_iterations,
            "seed": seed,
        },
        "results": rows,
        "summary": {
            "max_throughput_ratio": round(max(ratios), 3) if ratios else 0.0,
            "all_payloads_identical": all(r["payloads_identical"] for r in rows),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuits", nargs="+", default=None)
    parser.add_argument("--planes", type=int, default=5)
    parser.add_argument("--restarts", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--max-iterations", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--output", default=None)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: KSA8 only, 1 repeat, 4 restarts, 300-iteration cap",
    )
    parser.add_argument(
        "--megabatch",
        action="store_true",
        help="benchmark cross-job packing (solo vs packed run_jobs) instead "
             "of the engine comparison; fails on any payload mismatch",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = DEFAULT_MEGABATCH_OUTPUT if args.megabatch else DEFAULT_OUTPUT

    if args.planes < 2:
        parser.error("--planes must be >= 2 (K = 1 is the trivial single-plane partition)")
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.restarts < 1:
        parser.error("--restarts must be >= 1")

    if args.quick:
        args.repeats = 1
        args.restarts = 4
        args.max_iterations = 300
    if args.circuits is None:
        if args.megabatch:
            args.circuits = [MEGABATCH_CIRCUIT]
        elif args.quick:
            args.circuits = ["KSA8"]
        else:
            args.circuits = list(DEFAULT_CIRCUITS)

    if args.megabatch:
        report = run_megabatch_benchmark(
            circuit=args.circuits[0],
            planes=args.planes,
            restarts=args.restarts,
            repeats=args.repeats,
            max_iterations=args.max_iterations,
            seed=args.seed,
            quick=args.quick,
        )
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(
            f"\nmax throughput ratio "
            f"{report['summary']['max_throughput_ratio']}x  ->  {args.output}"
        )
        if not report["summary"]["all_payloads_identical"]:
            print("ERROR: packed payloads differ from solo payloads", file=sys.stderr)
            return 1
        return 0

    report = run_benchmark(
        circuits=args.circuits,
        planes=args.planes,
        restarts=args.restarts,
        repeats=args.repeats,
        max_iterations=args.max_iterations,
        seed=args.seed,
        quick=args.quick,
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\ngeomean speedup {report['summary']['geomean_speedup']}x  ->  {args.output}")
    if not report["summary"]["all_labels_identical"]:
        print("ERROR: engines disagreed on rounded labels", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
