#!/usr/bin/env python
"""Pareto sweep benchmark: warm sweep-to-answer vs cold, with bitwise parity.

For each circuit, submits one ``kind="sweep"`` request (a K x weight-ratio
grid) to an in-process :class:`~repro.service.server.PartitionService`
backed by a temporary result store and times the full submit-to-answer
chain twice:

* **cold** — every grid point is solved through the job runner;
* **warm** — the identical request resubmitted: the whole sweep payload
  must come back from the result store (outcome ``cached``).

The gate is ``warm >= 5x cold`` per circuit.  After timing, every grid
point's stored artifact is compared **bitwise** against a solo
:func:`repro.harness.runner.execute_job` run of the point's own
canonical partition request — the dedupe contract that lets sweeps and
solo jobs share results in both directions.  Two more gates ride along:
every frontier point must carry finite RSFQ/ERSFQ energy numbers, and a
K far past the gate count must land in ``skipped_k`` instead of failing
the sweep (the zero-bias-plane regression).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_pareto.py
    PYTHONPATH=src python benchmarks/perf/bench_pareto.py --quick

``--quick`` is the CI smoke mode: one small circuit and a 2x2 grid — it
proves the harness and the parity contract, not the timings.

JSON schema::

    {
      "meta":    {timestamp, python, numpy, platform, quick, seed,
                  k_values, ratios},
      "results": [{circuit, gates, grid_points, skipped_k, frontier_size,
                   cold_s, warm_s, speedup, cache_outcome,
                   points_bitwise_identical, energies_finite}],
      "infeasible_probe": {circuit, requested_k, skipped_k, completed},
      "summary": {all_points_bitwise_identical, warm_speedup_min,
                  meets_5x_target, all_energies_finite,
                  infeasible_k_skipped}
    }

Timings are single-process, single-machine wall clock.
"""

import argparse
import json
import math
import os
import platform
import sys
import tempfile
import time

import numpy as np

DEFAULT_CIRCUITS = ("KSA8", "MULT8", "C3540")
DEFAULT_K = (4, 5, 6)
DEFAULT_RATIOS = (0.2, 1.0, 4.0, 16.0)
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_pareto.json"
)

QUICK_CIRCUITS = ("KSA4",)
QUICK_K = (2, 3)
QUICK_RATIOS = (1.0, 4.0)


def _wait_done(service, job_id, timeout=600.0):
    deadline = time.time() + timeout
    while True:
        _status, payload = service.job_status(job_id)
        if payload["state"] not in ("queued", "running"):
            return payload
        if time.time() > deadline:
            raise RuntimeError(f"job {job_id} did not finish in {timeout} s")
        time.sleep(0.01)


def _timed_sweep(service, body):
    """Submit ``body``, wait, return (elapsed_s, status, payload)."""
    start = time.perf_counter()
    _code, submitted = service.sweep_submit(dict(body))
    status = submitted if submitted["state"] == "done" \
        else _wait_done(service, submitted["id"])
    if status["state"] != "done":
        raise RuntimeError(f"sweep failed: {status.get('error')}")
    _code, result = service.job_result(submitted["id"])
    return time.perf_counter() - start, status, result["result"]


def verify_point_parity(store, payload, body):
    """Bitwise-compare every stored grid point with a solo run of it."""
    from repro.harness.checkpoint import payload_to_jsonable
    from repro.harness.runner import execute_job
    from repro.service.api import (
        request_to_job,
        sweep_point_request,
        validate_request,
    )

    normalized = validate_request(dict(body))
    for point in payload["points"]:
        point_request = sweep_point_request(
            normalized, point["num_planes"], point["ratio"]
        )
        solo = payload_to_jsonable(execute_job(request_to_job(point_request)))
        stored = store.get(point["request_key"])
        if json.dumps(stored, sort_keys=True) != json.dumps(solo, sort_keys=True):
            return False
    return True


def energies_finite(payload):
    return all(
        math.isfinite(value)
        for point in payload["points"]
        for value in point["energy"].values()
    )


def bench_circuit(service, store, circuit, k_values, ratios, seed):
    from repro.circuits.suite import build_circuit

    body = {
        "kind": "sweep",
        "circuit": circuit,
        "k_values": list(k_values),
        "weight_ratios": list(ratios),
        "seed": seed,
    }
    cold_s, _status, payload = _timed_sweep(service, body)
    warm_s, warm_status, _warm = _timed_sweep(service, body)

    parity = verify_point_parity(store, payload, body)
    finite = energies_finite(payload)
    row = {
        "circuit": circuit,
        "gates": len(build_circuit(circuit).gates),
        "grid_points": len(payload["points"]),
        "skipped_k": payload["skipped_k"],
        "frontier_size": len(payload["frontier"]),
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3) if warm_s > 0 else math.inf,
        "cache_outcome": warm_status.get("outcome"),
        "points_bitwise_identical": parity,
        "energies_finite": finite,
    }
    print(
        f"{circuit:>8}  points={row['grid_points']:<3} "
        f"cold {cold_s * 1e3:8.1f} ms   warm {warm_s * 1e3:7.1f} ms   "
        f"speedup {row['speedup']:7.1f}x   parity: {parity}   "
        f"finite energy: {finite}"
    )
    return row, payload


def infeasible_k_probe(service, circuit, seed):
    """A K far past the gate count must be skipped, not fail the sweep."""
    from repro.circuits.suite import build_circuit

    requested = 10 * len(build_circuit(circuit).gates)
    body = {
        "kind": "sweep",
        "circuit": circuit,
        "k_values": [2, requested],
        "weight_ratios": [1.0],
        "seed": seed,
    }
    try:
        _elapsed, _status, payload = _timed_sweep(service, body)
    except RuntimeError:
        return {"circuit": circuit, "requested_k": requested,
                "skipped_k": [], "completed": False}
    return {
        "circuit": circuit,
        "requested_k": requested,
        "skipped_k": payload["skipped_k"],
        "completed": requested in payload["skipped_k"],
    }


def run_benchmark(circuits, k_values, ratios, seed, quick, render_out):
    from repro.harness.pareto import render_sweep
    from repro.obs.events import EventLog
    from repro.service.server import PartitionService
    from repro.service.store import ResultStore

    rows, renders = [], []
    with tempfile.TemporaryDirectory(prefix="bench-pareto-store-") as root:
        store = ResultStore(root=root, enabled=True)
        service = PartitionService(
            workers=1, store=store, events=EventLog(enabled=False)
        ).start()
        try:
            for circuit in circuits:
                row, payload = bench_circuit(
                    service, store, circuit, k_values, ratios, seed
                )
                rows.append(row)
                renders.append(render_sweep(payload))
            probe = infeasible_k_probe(service, circuits[0], seed)
        finally:
            service.stop()

    print(
        f"\ninfeasible-K probe ({probe['circuit']}, K={probe['requested_k']}): "
        f"skipped cleanly: {probe['completed']}"
    )
    if render_out:
        with open(render_out, "w") as handle:
            handle.write("\n\n".join(renders) + "\n")
        print(f"[frontier renders written to {render_out}]")

    speedups = [r["speedup"] for r in rows]
    return {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": quick,
            "seed": seed,
            "k_values": list(k_values),
            "ratios": list(ratios),
        },
        "results": rows,
        "infeasible_probe": probe,
        "summary": {
            "all_points_bitwise_identical": all(
                r["points_bitwise_identical"] for r in rows
            ),
            "warm_speedup_min": round(min(speedups), 3),
            "meets_5x_target": all(s >= 5.0 for s in speedups),
            "all_energies_finite": all(r["energies_finite"] for r in rows),
            "infeasible_k_skipped": probe["completed"],
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuits", nargs="+", default=None)
    parser.add_argument("--k-values", nargs="+", type=int, default=None)
    parser.add_argument("--ratios", nargs="+", type=float, default=None)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--render-out", default=None,
        help="also write the ASCII frontier renders to this path",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: KSA4 on a 2x2 grid — proves the harness and "
             "the bitwise dedupe contract, not the timings",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.circuits = args.circuits or list(QUICK_CIRCUITS)
        args.k_values = args.k_values or list(QUICK_K)
        args.ratios = args.ratios or list(QUICK_RATIOS)
    args.circuits = args.circuits or list(DEFAULT_CIRCUITS)
    args.k_values = args.k_values or list(DEFAULT_K)
    args.ratios = args.ratios or list(DEFAULT_RATIOS)
    if any(k < 1 for k in args.k_values):
        parser.error("--k-values must be integers >= 1")
    if any(not r > 0 for r in args.ratios):
        parser.error("--ratios must be > 0")

    report = run_benchmark(
        circuits=args.circuits,
        k_values=args.k_values,
        ratios=args.ratios,
        seed=args.seed,
        quick=args.quick,
        render_out=args.render_out,
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"\nwarm speedup min {summary['warm_speedup_min']}x "
        f"(target >= 5x: {summary['meets_5x_target']})  ->  {args.output}"
    )
    failed = False
    if not summary["all_points_bitwise_identical"]:
        print("ERROR: a sweep grid point differs from its solo run",
              file=sys.stderr)
        failed = True
    if not summary["meets_5x_target"]:
        print("ERROR: warm sweep repeat under the 5x target", file=sys.stderr)
        failed = True
    if not summary["all_energies_finite"]:
        print("ERROR: non-finite energy on a sweep point", file=sys.stderr)
        failed = True
    if not summary["infeasible_k_skipped"]:
        print("ERROR: infeasible K failed the sweep instead of being skipped",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
