#!/usr/bin/env python
"""Distributed-fleet benchmark: throughput vs worker-node count.

Boots one fleet coordinator (in-process server, ``isolation="fleet"``)
and drives a fixed batch of unique-seed KSA8 K=4 partition jobs through
real ``repro-gpp worker`` subprocesses at 1, 2 and 4 nodes, plus a
single-node inline-isolation reference.  Every payload — at every
fleet width — is diffed bitwise against a clean local
``execute_job`` run; any mismatch fails the benchmark outright.

Scaling acceptance (>= 2x at 4 workers vs 1) is a *real-parallelism*
criterion: worker nodes are separate processes, so they only scale on
a machine with cores to run them.  The gate is therefore enforced only
when ``os.cpu_count() >= 4``; on smaller hosts the measured ratio and
the skip reason are recorded honestly in ``BENCH_fleet.json`` instead
of gating on physically impossible numbers.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_fleet.py
    PYTHONPATH=src python benchmarks/perf/bench_fleet.py --quick
"""

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
sys.path.insert(0, os.path.join(ROOT, "src"))

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_fleet.json"
)
WORKER_COUNTS = (1, 2, 4)
SCALING_TARGET = 2.0
SCALING_MIN_CPUS = 4


def spawn_worker(url, worker_id, cache_dir):
    env = dict(os.environ)
    env.update({
        "PYTHONPATH": os.path.join(ROOT, "src"),
        "PYTHONUNBUFFERED": "1",
        "REPRO_CACHE_DIR": cache_dir,
    })
    return subprocess.Popen(
        [sys.executable, "-m", "repro.harness.cli", "worker",
         "--coordinator", url, "--id", worker_id,
         "--max-inflight", "1", "--poll", "0.1"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )


def run_batch(client, requests):
    """Submit every request up front, wait for all; returns (wall, payloads)."""
    start = time.perf_counter()
    jobs = [client.submit(dict(request)) for request in requests]
    for job in jobs:
        client.wait(job["id"], timeout=600.0)
    wall = time.perf_counter() - start
    payloads = [client.result(job["id"])["result"] for job in jobs]
    return wall, payloads


def bench_fleet_width(base_request, seeds, cache_dir, nodes):
    """One fleet width: boot coordinator + N worker subprocesses."""
    from repro.service.client import ServiceClient
    from repro.service.server import build_server
    from repro.service.store import ResultStore

    store_dir = tempfile.mkdtemp(prefix="repro-bench-fleet-", dir=cache_dir)
    server = build_server(
        host="127.0.0.1", port=0, isolation="fleet",
        workers=4, queue_size=max(64, 2 * len(seeds)),
        store=ResultStore(root=store_dir, enabled=True),
    )
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    workers = []
    try:
        client = ServiceClient(server.url, timeout=120.0)
        workers = [
            spawn_worker(server.url, f"bench-w{index}", cache_dir)
            for index in range(nodes)
        ]
        requests = [dict(base_request, seed=seed) for seed in seeds]
        wall, payloads = run_batch(client, requests)
        roster = client.health()["fleet"]["workers"]
        completed = {w["id"]: w["completed"] for w in roster}
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait()
        server.shutdown()
        server.server_close()
        serve_thread.join(5)
        shutil.rmtree(store_dir, ignore_errors=True)
    return {
        "workers": nodes,
        "jobs": len(seeds),
        "wall_s": round(wall, 4),
        "throughput_jps": round(len(seeds) / wall, 3) if wall > 0 else 0.0,
        "per_worker_completed": completed,
    }, payloads


def bench_single_node(base_request, seeds, cache_dir):
    """Inline-isolation reference: the same batch, no fleet at all."""
    from repro.service.client import ServiceClient
    from repro.service.server import build_server
    from repro.service.store import ResultStore

    store_dir = tempfile.mkdtemp(prefix="repro-bench-inline-", dir=cache_dir)
    server = build_server(
        host="127.0.0.1", port=0, isolation="inline",
        workers=1, queue_size=max(64, 2 * len(seeds)),
        store=ResultStore(root=store_dir, enabled=True),
    )
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    try:
        client = ServiceClient(server.url, timeout=120.0)
        requests = [dict(base_request, seed=seed) for seed in seeds]
        wall, payloads = run_batch(client, requests)
    finally:
        server.shutdown()
        server.server_close()
        serve_thread.join(5)
        shutil.rmtree(store_dir, ignore_errors=True)
    return {
        "jobs": len(seeds),
        "wall_s": round(wall, 4),
        "throughput_jps": round(len(seeds) / wall, 3) if wall > 0 else 0.0,
    }, payloads


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="KSA8")
    parser.add_argument("--planes", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=16,
                        help="unique-seed jobs per fleet width")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smallest circuit, 4 jobs")
    args = parser.parse_args(argv)

    if args.quick:
        args.circuit = "KSA4"
        args.planes = 3
        args.jobs = 4

    bench_cache = tempfile.mkdtemp(prefix="repro-bench-fleet-root-")
    saved = {k: os.environ.get(k) for k in ("REPRO_CACHE_DIR", "REPRO_CACHE")}
    os.environ["REPRO_CACHE_DIR"] = bench_cache
    os.environ.pop("REPRO_CACHE", None)

    from repro.cache import reset_default_cache
    from repro.harness.checkpoint import payload_to_jsonable
    from repro.harness.runner import execute_job
    from repro.service.api import request_to_job, validate_request

    reset_default_cache()
    base_request = {"circuit": args.circuit, "num_planes": args.planes}
    seeds = [31_000 + index for index in range(args.jobs)]

    # The parity oracle: one clean local solve per seed.
    local = {}
    for seed in seeds:
        request = validate_request(dict(base_request, seed=seed))
        local[seed] = json.dumps(
            payload_to_jsonable(execute_job(request_to_job(request))),
            sort_keys=True,
        )

    parity_ok = True
    levels = []
    single = None
    try:
        single, payloads = bench_single_node(base_request, seeds, bench_cache)
        for seed, payload in zip(seeds, payloads):
            if json.dumps(payload, sort_keys=True) != local[seed]:
                parity_ok = False
                print(f"PARITY VIOLATION: inline seed {seed}", file=sys.stderr)
        print(f"single-node inline: {single['throughput_jps']:7.2f} jobs/s "
              f"({single['wall_s']:.2f} s for {single['jobs']} jobs)")
        for nodes in WORKER_COUNTS:
            level, payloads = bench_fleet_width(
                base_request, seeds, bench_cache, nodes
            )
            for seed, payload in zip(seeds, payloads):
                if json.dumps(payload, sort_keys=True) != local[seed]:
                    parity_ok = False
                    print(f"PARITY VIOLATION: {nodes}-worker fleet seed {seed}",
                          file=sys.stderr)
            levels.append(level)
            print(f"fleet x{nodes} workers: {level['throughput_jps']:7.2f} jobs/s "
                  f"({level['wall_s']:.2f} s for {level['jobs']} jobs)")
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(bench_cache, ignore_errors=True)
        reset_default_cache()

    by_width = {level["workers"]: level["throughput_jps"] for level in levels}
    ratio = (
        round(by_width[4] / by_width[1], 3)
        if by_width.get(1) and by_width.get(4) else None
    )
    cpus = os.cpu_count() or 1
    enforced = cpus >= SCALING_MIN_CPUS
    scaling = {
        "ratio_4_vs_1": ratio,
        "target": SCALING_TARGET,
        "met": ratio is not None and ratio >= SCALING_TARGET,
        "enforced": enforced,
        "reason": (
            f"gate enforced: host has {cpus} cpus" if enforced else
            f"gate skipped: separate worker processes cannot scale on a "
            f"{cpus}-cpu host (need >= {SCALING_MIN_CPUS}); measured "
            f"ratio recorded honestly"
        ),
    }

    report = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": cpus,
            "quick": args.quick,
            "circuit": args.circuit,
            "planes": args.planes,
            "jobs": args.jobs,
            "worker_counts": list(WORKER_COUNTS),
        },
        "single_node_inline": single,
        "fleet": levels,
        "parity_bitwise_identical": parity_ok,
        "scaling": scaling,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\n-> {args.output}")
    print(f"scaling: {scaling['reason']} "
          f"(4-vs-1 ratio {scaling['ratio_4_vs_1']})")

    if not parity_ok:
        print("ERROR: a fleet payload differed from the local run", file=sys.stderr)
        return 1
    if scaling["enforced"] and not scaling["met"]:
        print(f"ERROR: 4-worker fleet is {ratio}x a 1-worker fleet "
              f"(target {SCALING_TARGET}x)", file=sys.stderr)
        return 1
    print("fleet benchmark: acceptance criteria met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
