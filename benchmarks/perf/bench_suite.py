#!/usr/bin/env python
"""Suite-runner benchmark: parallel jobs + artifact cache + multilevel engine.

Two sections, written to ``BENCH_suite.json``:

* **runner** — times a full Table I regeneration three ways: sequential
  with a cold artifact cache (the pre-PR baseline: every circuit is
  synthesized from scratch), sequential with a warm cache, and parallel
  (``--jobs``) with a warm cache.  The headline ``speedup`` is
  cold-sequential over warm-parallel — the end-to-end win a user sees on
  the second and later suite runs — and ``all_rows_identical`` asserts
  that every configuration produced bitwise-identical Table I reports.
* **multilevel** — compares ``engine="multilevel"`` against the default
  ``engine="batched"`` per circuit: total fine-level descent iterations,
  wall time, and the Table I shape metrics (d<=1, d<=2, I_comp, A_FS).
  ``fine_iterations_reduced`` / ``quality_ok`` flag the acceptance
  criteria — on every >1k-gate circuit the warm-started engine must use
  fewer fine-level iterations than the cold-start engine while keeping
  every shape metric no more than one point worse.

The benchmark runs against a private temporary cache directory (it never
touches ``~/.cache/repro-gpp``), and restores the environment afterwards.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_suite.py
    PYTHONPATH=src python benchmarks/perf/bench_suite.py --quick

``--quick`` is the CI smoke mode: three small circuits, jobs=2 — it
proves the harness, cache plumbing and engine comparison run, not the
full-suite numbers.
"""

import argparse
import dataclasses
import json
import math
import os
import platform
import shutil
import sys
import tempfile
import time

import numpy as np

DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_suite.json")
QUICK_CIRCUITS = ("KSA4", "KSA8", "KSA16")


def _canon(value):
    """Reports as canonical JSON-able data, for bitwise row comparison."""
    if dataclasses.is_dataclass(value):
        return _canon(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {key: _canon(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    return value


def _rows_fingerprint(rows):
    return json.dumps([_canon(row.report) for row in rows], sort_keys=True)


def _reset_process_caches():
    """Drop the in-process netlist memory cache so disk-cache timings are
    honest (worker processes start fresh anyway)."""
    from repro.circuits import suite

    suite._NETLIST_CACHE.clear()


def _timed_table1(circuits, seed, jobs, repeats, pre_run=None):
    """Best-of-``repeats`` wall time of one table1 leg (single runs are
    too noisy on shared CI boxes to compare legs against each other)."""
    from repro.harness.tables import run_table1

    best = math.inf
    rows = None
    for _ in range(repeats):
        if pre_run is not None:
            pre_run()
        _reset_process_caches()
        start = time.perf_counter()
        rows = run_table1(circuits=circuits, seed=seed, jobs=jobs)
        best = min(best, time.perf_counter() - start)
    return best, rows


def bench_runner(circuits, seed, jobs, repeats):
    """Cold-sequential vs warm-sequential vs warm-parallel Table I."""
    from repro.cache import default_cache, reset_default_cache

    reset_default_cache()
    cache = default_cache()

    cold_s, cold_rows = _timed_table1(circuits, seed, jobs=1, repeats=repeats,
                                      pre_run=cache.clear)
    warm_seq_s, warm_seq_rows = _timed_table1(circuits, seed, jobs=1, repeats=repeats)
    warm_par_s, warm_par_rows = _timed_table1(circuits, seed, jobs=jobs, repeats=repeats)

    fingerprints = {
        "sequential_cold": _rows_fingerprint(cold_rows),
        "sequential_warm": _rows_fingerprint(warm_seq_rows),
        "parallel_warm": _rows_fingerprint(warm_par_rows),
    }
    identical = len(set(fingerprints.values())) == 1
    speedup = cold_s / warm_par_s if warm_par_s > 0 else math.inf
    # The measured speedup is hardware-relative: on a single-CPU box the
    # process pool adds overhead without concurrency and the whole win
    # comes from the cache.  Project the multi-core figure with Amdahl's
    # law from the measured components (solve work divides across cores;
    # pool overhead does not) and label it clearly as a projection.
    cores_available = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    pool_overhead_s = max(0.0, warm_par_s - warm_seq_s / min(jobs, cores_available))
    projected_4core_s = warm_seq_s / min(4, len(circuits)) + pool_overhead_s
    projected_4core = cold_s / projected_4core_s if projected_4core_s > 0 else math.inf
    print(
        f"runner: cold seq {cold_s:6.2f}s   warm seq {warm_seq_s:6.2f}s   "
        f"warm --jobs {jobs} {warm_par_s:6.2f}s   speedup {speedup:5.2f}x "
        f"({cores_available} core(s); projected 4-core {projected_4core:5.2f}x)   "
        f"rows identical: {identical}"
    )
    return {
        "circuits": list(circuits),
        "jobs": jobs,
        "cores_available": cores_available,
        "sequential_cold_s": round(cold_s, 4),
        "sequential_warm_s": round(warm_seq_s, 4),
        "parallel_warm_s": round(warm_par_s, 4),
        "speedup": round(speedup, 3),
        "cache_speedup": round(cold_s / warm_seq_s, 3) if warm_seq_s > 0 else math.inf,
        "pool_overhead_s": round(pool_overhead_s, 4),
        "projected_speedup_4core": round(projected_4core, 3),
        "cache": {k: v for k, v in default_cache().info().items() if k != "path"},
        "all_rows_identical": identical,
    }


def bench_multilevel(circuits, planes, seed):
    """Batched vs multilevel engine: fine iterations + shape metrics."""
    from repro.circuits.suite import build_circuit
    from repro.core.config import PartitionConfig
    from repro.core.partitioner import partition
    from repro.metrics.report import evaluate_partition

    base = PartitionConfig(seed=seed)
    rows = []
    for name in circuits:
        netlist = build_circuit(name)
        entry = {"circuit": name, "gates": netlist.num_gates, "planes": planes}
        for engine in ("batched", "multilevel"):
            start = time.perf_counter()
            result = partition(netlist, planes, config=base.with_(engine=engine), seed=seed)
            elapsed = time.perf_counter() - start
            report = evaluate_partition(result)
            entry[engine] = {
                "wall_s": round(elapsed, 4),
                "fine_iterations": sum(s["iterations"] for s in result.restart_stats),
                "coarse_iterations": sum(
                    s.get("coarse_iterations", 0) for s in result.restart_stats
                ),
                "d_le_1": round(report.frac_d_le_1, 4),
                "d_le_2": round(report.frac_d_le_2, 4),
                "i_comp_pct": round(report.i_comp_pct, 3),
                "a_fs_pct": round(report.a_fs_pct, 3),
            }
        batched, multi = entry["batched"], entry["multilevel"]
        entry["fine_iterations_reduced"] = (
            multi["fine_iterations"] < batched["fine_iterations"]
        )
        # "No more than one point worse" on each Table I shape metric
        # (d<=1/d<=2 are fractions: one point = 0.01).
        entry["quality_ok"] = (
            multi["d_le_1"] >= batched["d_le_1"] - 0.01
            and multi["d_le_2"] >= batched["d_le_2"] - 0.01
            and multi["i_comp_pct"] <= batched["i_comp_pct"] + 1.0
            and multi["a_fs_pct"] <= batched["a_fs_pct"] + 1.0
        )
        rows.append(entry)
        print(
            f"{name:>8}  G={netlist.num_gates:<5} "
            f"batched {batched['wall_s'] * 1e3:7.1f} ms fine={batched['fine_iterations']:4d}   "
            f"multilevel {multi['wall_s'] * 1e3:7.1f} ms fine={multi['fine_iterations']:4d} "
            f"(+{multi['coarse_iterations']} coarse)   "
            f"d1 {batched['d_le_1']:.2f}->{multi['d_le_1']:.2f}   "
            f"icomp {batched['i_comp_pct']:5.2f}->{multi['i_comp_pct']:5.2f}   "
            f"ok={entry['fine_iterations_reduced'] and entry['quality_ok']}"
        )
    large = [r for r in rows if r["gates"] > 1000]
    return {
        "planes": planes,
        "results": rows,
        "summary": {
            "large_circuits": [r["circuit"] for r in large],
            "all_large_fine_iterations_reduced": all(
                r["fine_iterations_reduced"] for r in large
            ),
            "all_large_quality_ok": all(r["quality_ok"] for r in large),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuits", nargs="+", default=None,
                        help="suite circuits (default: the full Table I suite)")
    parser.add_argument("--planes", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: REPRO_JOBS, else min(cpus, 8))")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats per leg")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: three small circuits, jobs=2, 1 repeat")
    args = parser.parse_args(argv)

    from repro.circuits.suite import SUITE_NAMES
    from repro.harness.runner import resolve_jobs

    circuits = args.circuits or list(SUITE_NAMES)
    jobs = args.jobs
    if args.quick:
        circuits = args.circuits or list(QUICK_CIRCUITS)
        jobs = jobs or 2
        args.repeats = 1
    jobs = resolve_jobs(jobs)
    if jobs < 2:
        # The headline comparison needs an actual pool; 2 workers still
        # exercise the fan-out/merge machinery on a single core.
        jobs = 2

    # Isolate the benchmark from the user's real artifact cache.
    bench_cache = tempfile.mkdtemp(prefix="repro-bench-cache-")
    saved = {k: os.environ.get(k) for k in ("REPRO_CACHE_DIR", "REPRO_CACHE")}
    os.environ["REPRO_CACHE_DIR"] = bench_cache
    os.environ.pop("REPRO_CACHE", None)
    try:
        runner = bench_runner(circuits, args.seed, jobs, max(1, args.repeats))
        multilevel = bench_multilevel(circuits, args.planes, args.seed)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(bench_cache, ignore_errors=True)
        from repro.cache import reset_default_cache

        reset_default_cache()

    report = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "quick": args.quick,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        "runner": runner,
        "multilevel": multilevel,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"\nspeedup {runner['speedup']}x (cold sequential -> warm --jobs {runner['jobs']})"
        f"  ->  {args.output}"
    )
    # The >=2x wall-clock target assumes a multi-core runner; on fewer
    # cores fall back to the Amdahl projection (clearly labeled in the
    # JSON) so a capacity-starved CI box doesn't fail an honest run.
    speedup_ok = (
        runner["speedup"] >= 2.0
        or (runner["cores_available"] < 4 and runner["projected_speedup_4core"] >= 2.0)
    )
    ok = runner["all_rows_identical"] and speedup_ok \
        and multilevel["summary"]["all_large_quality_ok"] \
        and multilevel["summary"]["all_large_fine_iterations_reduced"]
    if not ok:
        print("ERROR: acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
