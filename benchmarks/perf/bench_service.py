#!/usr/bin/env python
"""Partitioning-service benchmark: concurrent clients vs one server.

Boots a real :mod:`repro.service` HTTP server (ephemeral port, private
temporary result store) and drives it with 1, 4 and 16 concurrent
clients, measuring two scenarios per concurrency level:

* **solve** — every request is unique (distinct seeds), so each one
  runs a real partition through the worker pool.  Reports end-to-end
  throughput and per-request latency percentiles.
* **cached** — every client repeats one identical request, so after the
  first solve the content-keyed result store answers everything.
  Reports the same figures plus the store hit count; the acceptance
  check asserts the cached scenario is faster than the solve scenario
  and that every response is bitwise-identical to a local run.

Results go to ``BENCH_service.json``.  Usage::

    PYTHONPATH=src python benchmarks/perf/bench_service.py
    PYTHONPATH=src python benchmarks/perf/bench_service.py --quick

``--quick`` is the CI smoke mode: the smallest suite circuit and fewer
requests — it proves the server, queue, store and client plumbing under
concurrency, not absolute numbers.
"""

import argparse
import json
import os
import platform
import shutil
import statistics
import sys
import tempfile
import threading
import time

import numpy as np

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_service.json"
)
CONCURRENCY_LEVELS = (1, 4, 16)


def _percentile(samples, fraction):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _drive(client_factory, concurrency, bodies_per_client):
    """Run one scenario; returns (wall_s, latencies, failures).

    ``bodies_per_client(worker_index)`` yields the request bodies one
    client thread submits sequentially (each waits for completion —
    closed-loop load, the standard service-benchmark shape).
    """
    latencies = []
    failures = []
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)

    def worker(index):
        client = client_factory()
        bodies = bodies_per_client(index)
        barrier.wait()
        for body in bodies:
            start = time.perf_counter()
            try:
                payload = client.partition(body, timeout=600.0)
            except Exception as error:  # noqa: BLE001 - recorded, not raised
                with lock:
                    failures.append(str(error))
                continue
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append((elapsed, body, payload))

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return wall, latencies, failures


def bench_level(server, concurrency, requests_per_client, base_request):
    """One concurrency level: the solve scenario then the cached one."""
    from repro.service.client import ServiceClient

    def client_factory():
        return ServiceClient(server.url, timeout=120.0)

    # -- solve: all-unique seeds, every request is a real partition ----
    def unique_bodies(index):
        return [
            dict(base_request, seed=10_000 + concurrency * 1000
                 + index * requests_per_client + i)
            for i in range(requests_per_client)
        ]

    solve_wall, solve_done, solve_failures = _drive(
        client_factory, concurrency, unique_bodies
    )

    # -- cached: one identical request, the store answers the repeats --
    cached_request = dict(base_request, seed=4242)
    before_hits = server.service.store.snapshot_stats()["hits"]

    def repeated_bodies(_index):
        return [dict(cached_request) for _ in range(requests_per_client)]

    cached_wall, cached_done, cached_failures = _drive(
        client_factory, concurrency, repeated_bodies
    )
    store_hits = server.service.store.snapshot_stats()["hits"] - before_hits

    def stats(wall, done, total):
        samples = [entry[0] for entry in done]
        return {
            "requests": total,
            "completed": len(done),
            "wall_s": round(wall, 4),
            "throughput_rps": round(len(done) / wall, 3) if wall > 0 else 0.0,
            "latency_mean_s": round(statistics.mean(samples), 4) if samples else 0.0,
            "latency_p50_s": round(_percentile(samples, 0.50), 4),
            "latency_p95_s": round(_percentile(samples, 0.95), 4),
            "latency_max_s": round(max(samples), 4) if samples else 0.0,
        }

    total = concurrency * requests_per_client
    # Bitwise check: every cached-scenario response equals the local solve.
    from repro.harness.runner import execute_job
    from repro.service.api import request_to_job, validate_request

    local = execute_job(request_to_job(validate_request(cached_request)))
    identical = all(
        np.array_equal(payload["labels"], local["labels"])
        for _elapsed, _body, payload in cached_done
    )

    level = {
        "concurrency": concurrency,
        "requests_per_client": requests_per_client,
        "solve": stats(solve_wall, solve_done, total),
        "cached": stats(cached_wall, cached_done, total),
        "store_hits": store_hits,
        "failures": solve_failures + cached_failures,
        "cached_bitwise_identical": identical,
        "cached_faster": cached_wall < solve_wall,
    }
    print(
        f"clients {concurrency:>2}: solve {level['solve']['throughput_rps']:7.2f} rps "
        f"(p95 {level['solve']['latency_p95_s'] * 1e3:7.1f} ms)   "
        f"cached {level['cached']['throughput_rps']:7.2f} rps "
        f"(p95 {level['cached']['latency_p95_s'] * 1e3:7.1f} ms)   "
        f"store hits {store_hits}   identical={identical}"
    )
    return level


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="KSA8")
    parser.add_argument("--planes", type=int, default=4)
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client per scenario")
    parser.add_argument("--workers", type=int, default=None,
                        help="service worker threads (default min(cpus, 4))")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smallest circuit, 2 requests per client")
    args = parser.parse_args(argv)

    if args.quick:
        args.circuit = "KSA4"
        args.planes = 3
        args.requests = 2

    # Isolate from the user's real artifact cache (netlist synthesis AND
    # the service result store both live under REPRO_CACHE_DIR).
    bench_cache = tempfile.mkdtemp(prefix="repro-bench-service-")
    saved = {k: os.environ.get(k) for k in ("REPRO_CACHE_DIR", "REPRO_CACHE")}
    os.environ["REPRO_CACHE_DIR"] = bench_cache
    os.environ.pop("REPRO_CACHE", None)

    from repro.cache import reset_default_cache
    from repro.service.server import build_server
    from repro.service.store import ResultStore

    reset_default_cache()
    base_request = {"circuit": args.circuit, "num_planes": args.planes}
    levels = []
    try:
        server = build_server(
            host="127.0.0.1", port=0,
            workers=args.workers,
            queue_size=max(64, 16 * args.requests),
            store=ResultStore(root=bench_cache, enabled=True),
        )
        serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
        serve_thread.start()
        print(f"benchmarking {server.url}  circuit={args.circuit} "
              f"K={args.planes}  workers={server.service.manager.workers}")
        try:
            for concurrency in CONCURRENCY_LEVELS:
                levels.append(
                    bench_level(server, concurrency, args.requests, base_request)
                )
        finally:
            server.shutdown()
            server.server_close()
            serve_thread.join(5)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(bench_cache, ignore_errors=True)
        reset_default_cache()

    report = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "quick": args.quick,
            "circuit": args.circuit,
            "planes": args.planes,
            "requests_per_client": args.requests,
            "concurrency_levels": list(CONCURRENCY_LEVELS),
        },
        "levels": levels,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\n-> {args.output}")

    ok = all(
        not level["failures"]
        and level["cached_bitwise_identical"]
        and level["solve"]["completed"] == level["solve"]["requests"]
        and level["cached"]["completed"] == level["cached"]["requests"]
        for level in levels
    ) and any(level["cached_faster"] for level in levels)
    if not ok:
        print("ERROR: acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
