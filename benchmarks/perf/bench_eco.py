#!/usr/bin/env python
"""Incremental (ECO) re-partitioning benchmark: warm edit-to-answer vs cold.

For each circuit and edit size, applies a deterministic synthetic edit
(re-type a spread of gates to their dual cell, nudge the rest), then
times the full *edit-to-answer* chain both ways:

* **warm** — ``apply_diff`` + netlist rebuild + ``align_labels`` +
  :func:`repro.core.incremental.incremental_partition` (the exact chain
  the service's ``PATCH /v1/jobs/<key>`` route runs);
* **cold** — ``apply_diff`` + netlist rebuild + a full multi-restart
  :func:`repro.partition` (what every edit cost before the ECO path).

Each row records the speedup, the warm mode (``warm`` or a documented
cold fallback), and the quality delta of the warm answer against the
cold one; ``guard_ok`` asserts the warm cost sits within the ECO
quality-guard tolerance of the cold cost — a False anywhere is a
benchmark failure, not a data point.

The run finishes with an in-process service probe: a base job is
submitted to a :class:`~repro.service.server.PartitionService` backed by
a temporary result store, then PATCHed with an *empty* diff — the
returned payload must be byte-identical to the stored base payload and
counted as a cache hit (``service.eco.empty_diffs`` /
``service.eco.cache_hits``).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_eco.py
    PYTHONPATH=src python benchmarks/perf/bench_eco.py --quick

``--quick`` is the CI smoke mode: one small circuit, one edit size, two
repeats — it proves the harness (and the bitwise empty-diff contract),
not the timings.

JSON schema::

    {
      "meta":    {timestamp, python, numpy, platform, quick, planes,
                  repeats, seed, fractions, quality_eps},
      "results": [{circuit, gates, connections, planes, edit_fraction,
                   edited_gates, touched_gates, region_gates,
                   region_fraction, mode, fallback_reason,
                   base_solve_s, warm_s, cold_s, speedup,
                   warm_cost, cold_cost, quality_delta_pct, guard_ok}],
      "summary": {qualifying_circuits, meets_10x_target, all_guard_ok,
                  empty_diff_bitwise_identical}
    }

``qualifying_circuits`` lists circuits of >= 1000 gates whose <= 1%
edit rows all reached >= 10x; ``meets_10x_target`` is True when at
least two qualify.  Timings are the best (minimum) of ``--repeats``
runs in a single process on one machine.
"""

import argparse
import json
import math
import os
import platform
import sys
import tempfile
import time

import numpy as np

DEFAULT_CIRCUITS = ("KSA16", "MULT8", "C3540")
DEFAULT_FRACTIONS = (0.001, 0.01, 0.05)
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_eco.json"
)

#: Cell re-type map used by the synthetic edit: every swap preserves the
#: gate's port count, so the edit never changes netlist connectivity
#: shape — only cell identity (bias/area) and, for unswappable cells,
#: placement.
CELL_SWAP = {
    "AND2": "OR2", "OR2": "AND2",
    "XOR2": "XNOR2", "XNOR2": "XOR2",
    "NAND2": "NOR2", "NOR2": "NAND2",
}

#: The probe circuit for the empty-diff bitwise check (small: the probe
#: tests the service contract, not solver speed).
PROBE_CIRCUIT = "KSA8"


def make_edit(base_dict, fraction):
    """Deterministic synthetic ECO edit touching ``fraction`` of gates.

    Picks an even index spread, re-types swappable cells to their dual
    and nudges the rest by half a micron, so every selected gate lands
    in the diff as "modified".
    """
    num_gates = len(base_dict["gates"])
    count = max(1, int(round(num_gates * fraction)))
    picked = sorted(set(
        np.linspace(0, num_gates - 1, count).round().astype(int).tolist()
    ))
    edited = dict(base_dict)
    edited["gates"] = [dict(gate) for gate in base_dict["gates"]]
    for index in picked:
        gate = edited["gates"][index]
        swapped = CELL_SWAP.get(gate["cell"])
        if swapped is not None:
            gate["cell"] = swapped
        else:
            gate["x_um"] = (gate["x_um"] or 0.0) + 0.5
    edited["name"] = base_dict["name"] + "_eco"
    return edited, len(picked)


def bench_circuit(name, planes, repeats, seed, fractions, quality_eps):
    from repro.circuits.suite import build_circuit
    from repro.core.config import PartitionConfig
    from repro.core.incremental import (
        align_labels,
        incremental_partition,
        quality_ok,
    )
    from repro.core.partitioner import partition
    from repro.netlist.diff import apply_diff, netlist_diff, touched_gate_names
    from repro.netlist.library import default_library
    from repro.netlist.serialize import (
        library_fingerprint,
        netlist_from_dict,
        netlist_to_dict,
    )

    library = default_library()
    fingerprint = library_fingerprint(library)
    config = PartitionConfig()

    netlist = build_circuit(name)
    base_dict = netlist_to_dict(netlist)
    base_names = [gate.name for gate in netlist.gates]

    start = time.perf_counter()
    base_result = partition(netlist, planes, config, seed=seed)
    base_solve_s = time.perf_counter() - start

    rows = []
    for fraction in fractions:
        edited_dict, edited_gates = make_edit(base_dict, fraction)
        diff = netlist_diff(base_dict, edited_dict, fingerprint)
        touched = touched_gate_names(diff)

        warm_s = math.inf
        warm_result = warm_info = None
        for _ in range(repeats):
            start = time.perf_counter()
            applied = apply_diff(base_dict, diff)
            edited = netlist_from_dict(applied, library, validate=False)
            prev = align_labels(base_names, base_result.labels, edited)
            warm_result, warm_info = incremental_partition(
                edited, planes, prev, touched, config=config, seed=seed,
            )
            warm_s = min(warm_s, time.perf_counter() - start)

        cold_s = math.inf
        cold_result = None
        for _ in range(repeats):
            start = time.perf_counter()
            applied = apply_diff(base_dict, diff)
            edited = netlist_from_dict(applied, library, validate=False)
            cold_result = partition(edited, planes, config, seed=seed)
            cold_s = min(cold_s, time.perf_counter() - start)

        warm_cost = float(warm_result.integer_cost())
        cold_cost = float(cold_result.integer_cost())
        guard = bool(quality_ok(warm_cost, cold_cost, quality_eps))
        row = {
            "circuit": name,
            "gates": netlist.num_gates,
            "connections": netlist.num_connections,
            "planes": planes,
            "edit_fraction": fraction,
            "edited_gates": edited_gates,
            "touched_gates": warm_info["touched_gates"],
            "region_gates": warm_info["region_gates"],
            "region_fraction": round(warm_info["region_fraction"], 4),
            "mode": warm_info["mode"],
            "fallback_reason": warm_info["fallback_reason"],
            "base_solve_s": round(base_solve_s, 6),
            "warm_s": round(warm_s, 6),
            "cold_s": round(cold_s, 6),
            "speedup": round(cold_s / warm_s, 3) if warm_s > 0 else math.inf,
            "warm_cost": round(warm_cost, 6),
            "cold_cost": round(cold_cost, 6),
            "quality_delta_pct": round(
                100.0 * (warm_cost - cold_cost) / cold_cost, 3
            ) if cold_cost else 0.0,
            "guard_ok": guard,
        }
        rows.append(row)
        print(
            f"{name:>8}  G={netlist.num_gates:<5} edit={fraction * 100:5.1f}%  "
            f"warm {warm_s * 1e3:7.1f} ms   cold {cold_s * 1e3:7.1f} ms   "
            f"speedup {row['speedup']:6.2f}x   mode={row['mode']:<4}   "
            f"quality {row['quality_delta_pct']:+.2f}%   guard ok: {guard}"
        )
    return rows


def empty_diff_probe(planes, seed):
    """Submit a base job, PATCH an empty diff, compare payloads bitwise.

    Runs entirely in process against a :class:`PartitionService` backed
    by a temporary result store, mirroring what the HTTP route does.
    Returns a report dict; ``bitwise_identical`` must be True.
    """
    from repro.circuits.suite import build_circuit
    from repro.netlist.diff import diff_netlists
    from repro.obs.events import EventLog
    from repro.service.server import PartitionService
    from repro.service.store import ResultStore

    netlist = build_circuit(PROBE_CIRCUIT)
    diff = diff_netlists(netlist, netlist)  # identity edit

    with tempfile.TemporaryDirectory(prefix="bench-eco-store-") as root:
        service = PartitionService(
            workers=1,
            store=ResultStore(root=root, enabled=True),
            events=EventLog(enabled=False),
        ).start()
        try:
            body = {
                "kind": "partition",
                "circuit": PROBE_CIRCUIT,
                "num_planes": planes,
                "seed": seed,
            }
            _status, submitted = service.submit(body)
            base_key = submitted["key"]
            deadline = time.time() + 120.0
            while True:
                _status, status_payload = service.job_status(submitted["id"])
                if status_payload["state"] not in ("queued", "running"):
                    break
                if time.time() > deadline:
                    raise RuntimeError("base job did not finish in 120 s")
                time.sleep(0.01)
            _status, base_result = service.job_result(submitted["id"])

            _status, patched = service.eco_submit(base_key, {"diff": diff})
            _status, eco_result = service.job_result(patched["id"])

            identical = json.dumps(
                base_result["result"], sort_keys=True
            ) == json.dumps(eco_result["result"], sort_keys=True)
            metrics = service.metrics.as_dict()
            return {
                "circuit": PROBE_CIRCUIT,
                "bitwise_identical": identical,
                "empty_diff_counted": bool(patched.get("eco", {}).get("empty_diff")),
                "cache_hits": metrics.get(
                    "service.eco.cache_hits", {}
                ).get("value", 0),
                "empty_diffs": metrics.get(
                    "service.eco.empty_diffs", {}
                ).get("value", 0),
            }
        finally:
            service.stop()


def run_benchmark(circuits, planes, repeats, seed, fractions, quick):
    from repro.core.incremental import resolve_eco_quality_eps

    quality_eps = resolve_eco_quality_eps()
    rows = []
    for name in circuits:
        rows.extend(
            bench_circuit(name, planes, repeats, seed, fractions, quality_eps)
        )

    probe = empty_diff_probe(planes, seed)
    print(
        f"\nempty-diff probe ({probe['circuit']}): bitwise identical: "
        f"{probe['bitwise_identical']}   counted as cache hit: "
        f"{probe['empty_diffs'] >= 1 and probe['cache_hits'] >= 1}"
    )

    qualifying = []
    for name in circuits:
        small_edits = [
            r for r in rows
            if r["circuit"] == name and r["edit_fraction"] <= 0.01
        ]
        if small_edits and small_edits[0]["gates"] >= 1000 and all(
            r["speedup"] >= 10.0 for r in small_edits
        ):
            qualifying.append(name)

    return {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": quick,
            "planes": planes,
            "repeats": repeats,
            "seed": seed,
            "fractions": list(fractions),
            "quality_eps": quality_eps,
        },
        "results": rows,
        "empty_diff_probe": probe,
        "summary": {
            "qualifying_circuits": qualifying,
            "meets_10x_target": len(qualifying) >= 2,
            "all_guard_ok": all(r["guard_ok"] for r in rows),
            "empty_diff_bitwise_identical": probe["bitwise_identical"],
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuits", nargs="+", default=None)
    parser.add_argument("--planes", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--fractions", nargs="+", type=float, default=None,
        help="edit sizes as gate fractions (default: 0.001 0.01 0.05)",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: KSA16 only, one edit size, 2 repeats — proves "
             "the harness and the empty-diff contract, not the timings",
    )
    args = parser.parse_args(argv)

    if args.planes < 2:
        parser.error("--planes must be >= 2")
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.fractions is not None and any(
        not 0 < f < 1 for f in args.fractions
    ):
        parser.error("--fractions must be gate fractions in (0, 1)")

    if args.quick:
        args.repeats = min(args.repeats, 2)
        if args.circuits is None:
            args.circuits = ["KSA16"]
        if args.fractions is None:
            # Small enough that the warm path actually runs (a 1% edit
            # on a dense small adder can exceed the region threshold).
            args.fractions = [0.001]
    if args.circuits is None:
        args.circuits = list(DEFAULT_CIRCUITS)
    if args.fractions is None:
        args.fractions = list(DEFAULT_FRACTIONS)

    report = run_benchmark(
        circuits=args.circuits,
        planes=args.planes,
        repeats=args.repeats,
        seed=args.seed,
        fractions=args.fractions,
        quick=args.quick,
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"\nqualifying circuits (>=1k gates, >=10x for <=1% edits): "
        f"{summary['qualifying_circuits']}  ->  {args.output}"
    )
    failed = False
    if not summary["all_guard_ok"]:
        print("ERROR: quality guard failed on a benchmarked point", file=sys.stderr)
        failed = True
    if not summary["empty_diff_bitwise_identical"]:
        print("ERROR: empty-diff PATCH payload differs from the stored base",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
