"""Reproduce **Table III**: smallest plane count under a 100 mA pad limit.

One benchmark case per circuit timing the full K search
(:func:`repro.core.planner.plan_bias_limited`).  The assembled table —
``K_LB / K_res`` per circuit plus the paper's values — lands in
``benchmarks/output/table3.txt``.

Shape assertions:

* ``K_res >= K_LB`` always, and the achieved ``B_max <= 100 mA``;
* the ``K_res - K_LB`` gap grows from small circuits to the largest
  ones (the paper's headline trend);
* recycling replaces ``K_LB`` parallel bias lines with one serial feed.
"""

import pytest

from conftest import write_artifact
from repro.circuits.suite import build_circuit
from repro.core.planner import plan_bias_limited
from repro.harness.tables import PAPER_TABLE3, TABLE3_CIRCUITS, Table3Row, format_table3
from repro.metrics.report import evaluate_partition

LIMIT_MA = 100.0
_ROWS = {}

#: plan search is expensive for the giants; time them for a single round
_FAST = {"KSA8", "KSA16", "MULT4", "ID4", "C499", "C1355"}


def _plan_row(circuit, bench_config):
    netlist = build_circuit(circuit)
    # gallop: O(log gap) partitions instead of the paper's linear sweep;
    # K_res can differ by the binary-search lattice only when B_max is
    # non-monotone in K (rare), which the assembled check tolerates.
    plan = plan_bias_limited(
        netlist, bias_limit_ma=LIMIT_MA, config=bench_config, search="gallop"
    )
    paper = PAPER_TABLE3.get(circuit)
    return Table3Row(
        circuit=circuit,
        k_lb=plan.k_lb,
        k_res=plan.k_res,
        report=evaluate_partition(plan.result),
        bias_lines_saved=plan.bias_lines_saved,
        paper_k_lb=paper[0] if paper else None,
        paper_k_res=paper[1] if paper else None,
    )


@pytest.mark.parametrize("circuit", TABLE3_CIRCUITS)
def test_table3_row(benchmark, circuit, search_config):
    rounds = 2 if circuit in _FAST else 1
    row = benchmark.pedantic(
        _plan_row, args=(circuit, search_config), rounds=rounds, iterations=1
    )
    _ROWS[circuit] = row
    assert row.k_res >= row.k_lb
    assert row.report.b_max_ma <= LIMIT_MA + 1e-9
    assert row.bias_lines_saved == row.k_lb - 1
    assert row.report.frac_d_le_half_k >= 0.55


def test_table3_assembled(benchmark, output_dir, search_config):
    def assemble():
        for circuit in TABLE3_CIRCUITS:
            if circuit not in _ROWS:
                _ROWS[circuit] = _plan_row(circuit, search_config)
        return format_table3([_ROWS[c] for c in TABLE3_CIRCUITS])

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    rows = [_ROWS[c] for c in TABLE3_CIRCUITS]
    path = write_artifact(output_dir, "table3.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # the K_res - K_LB gap grows with circuit size (paper: 0 for KSA8,
    # 12 for ID8, 18 for C3540)
    gap = {row.circuit: row.k_res - row.k_lb for row in rows}
    assert gap["KSA8"] <= 1
    assert gap["ID8"] >= gap["KSA8"]
    assert gap["C3540"] >= gap["MULT4"]
