"""Ablation: cost-weight sweep (the ``c1..c4`` of eq. (8)).

The paper leaves the weights as unspecified tunables.  This bench
sweeps the interconnect weight ``c1`` (with balance weights fixed) and
the balance weights ``c2=c3`` (with ``c1`` fixed), exposing the
quality trade-off the weights control:

* raising ``c1`` buys connection locality (d <= 1 up);
* raising ``c2``/``c3`` buys balance (I_comp/A_FS down).

Written to ``benchmarks/output/ablation_weights.txt``.
"""

import pytest

from conftest import write_artifact
from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition

C1_VALUES = (5.0, 80.0, 400.0)
C23_VALUES = (2.0, 15.0, 120.0)
_C1_RESULTS = {}
_C23_RESULTS = {}


@pytest.mark.parametrize("c1", C1_VALUES)
def test_ablation_c1(benchmark, c1, bench_config):
    config = bench_config.with_(c1=c1)
    netlist = build_circuit("KSA8")
    result = benchmark.pedantic(
        partition, args=(netlist, 5), kwargs={"config": config}, rounds=2, iterations=1
    )
    _C1_RESULTS[c1] = evaluate_partition(result)


@pytest.mark.parametrize("c23", C23_VALUES)
def test_ablation_c23(benchmark, c23, bench_config):
    config = bench_config.with_(c2=c23, c3=c23)
    netlist = build_circuit("KSA8")
    result = benchmark.pedantic(
        partition, args=(netlist, 5), kwargs={"config": config}, rounds=2, iterations=1
    )
    _C23_RESULTS[c23] = evaluate_partition(result)


def test_ablation_weights_report(benchmark, output_dir, bench_config):
    def assemble():
        netlist = build_circuit("KSA8")
        for c1 in C1_VALUES:
            if c1 not in _C1_RESULTS:
                _C1_RESULTS[c1] = evaluate_partition(
                    partition(netlist, 5, config=bench_config.with_(c1=c1))
                )
        for c23 in C23_VALUES:
            if c23 not in _C23_RESULTS:
                _C23_RESULTS[c23] = evaluate_partition(
                    partition(netlist, 5, config=bench_config.with_(c2=c23, c3=c23))
                )
        rows = []
        for c1 in C1_VALUES:
            report = _C1_RESULTS[c1]
            rows.append([
                f"c1={c1:g}", percent(report.frac_d_le_1),
                f"{report.i_comp_pct:.2f}%", f"{report.a_fs_pct:.2f}%",
            ])
        for c23 in C23_VALUES:
            report = _C23_RESULTS[c23]
            rows.append([
                f"c2=c3={c23:g}", percent(report.frac_d_le_1),
                f"{report.i_comp_pct:.2f}%", f"{report.a_fs_pct:.2f}%",
            ])
        return ascii_table(
            ["weights", "d<=1", "I_comp", "A_FS"],
            rows,
            title="ablation: cost-weight sweep (KSA8, K=5)",
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "ablation_weights.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # trade-off direction checks
    assert _C1_RESULTS[C1_VALUES[-1]].frac_d_le_1 >= _C1_RESULTS[C1_VALUES[0]].frac_d_le_1
    assert (
        _C23_RESULTS[C23_VALUES[-1]].i_comp_pct
        <= _C23_RESULTS[C23_VALUES[0]].i_comp_pct + 3.0
    )
