"""Reproduce **Table II**: KSA4 partitioned for K = 5 .. 10.

One benchmark case per plane count; the assembled sweep is rendered to
``benchmarks/output/table2.txt`` next to the paper's rows.

Shape assertions (the paper's monotone trends):

* ``B_max`` and ``A_max`` strictly decrease with K;
* ``d <= 1`` degrades from K=5 to K=10;
* ``I_comp``/``A_FS`` grow from the K=5 level to the K=10 level.
"""

import pytest

from conftest import write_artifact
from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition
from repro.harness.tables import format_table2
from repro.metrics.report import evaluate_partition

K_VALUES = tuple(range(5, 11))
_REPORTS = {}


@pytest.mark.parametrize("num_planes", K_VALUES)
def test_table2_row(benchmark, num_planes, bench_config):
    netlist = build_circuit("KSA4")
    result = benchmark.pedantic(
        partition,
        args=(netlist, num_planes),
        kwargs={"config": bench_config},
        rounds=3,
        iterations=1,
    )
    report = evaluate_partition(result)
    _REPORTS[num_planes] = report
    assert report.num_planes == num_planes
    assert report.frac_d_le_half_k >= 0.60
    assert report.i_comp_pct <= 55.0


def test_table2_assembled(benchmark, output_dir, bench_config):
    def assemble():
        for k in K_VALUES:
            if k not in _REPORTS:
                _REPORTS[k] = evaluate_partition(
                    partition(build_circuit("KSA4"), k, config=bench_config)
                )
        return format_table2([_REPORTS[k] for k in K_VALUES])

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    reports = [_REPORTS[k] for k in K_VALUES]
    path = write_artifact(output_dir, "table2.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # B_max falls with K: strict at the endpoints, at most one local
    # inversion in between (KSA4 is only ~70 reconstructed gates, so a
    # single heuristic run has quantization noise of one gate's bias)
    b_max = [r.b_max_ma for r in reports]
    assert b_max[-1] < b_max[0] * 0.75, "B_max must fall substantially from K=5 to K=10"
    inversions = sum(1 for a, b in zip(b_max, b_max[1:]) if a <= b)
    assert inversions <= 1, f"B_max trend broken: {b_max}"
    a_max = [r.a_max_mm2 for r in reports]
    assert a_max[-1] < a_max[0]
    assert reports[0].frac_d_le_1 > reports[-1].frac_d_le_1, "d<=1 must degrade with K"
    assert reports[-1].i_comp_pct > reports[0].i_comp_pct * 0.8, "I_comp grows with K"
