"""Ablation: Algorithm 1's gradient descent vs quasi-Newton (L-BFGS-B).

Section V argues for plain gradient descent because "the Newton method
[...] requires the calculation of the Hessian matrix, which is
computationally expensive" while GD "provides a good estimation for the
result within an acceptable time window".  L-BFGS-B tests that claim at
first-order cost: curvature from gradient history, native [0,1] box
handling.  Written to ``benchmarks/output/ablation_optimizer.txt``.
"""

import pytest

from conftest import write_artifact
from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition
from repro.core.scipy_optimizer import partition_lbfgs
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition

SOLVERS = {"gradient-descent": partition, "l-bfgs-b": partition_lbfgs}
_RESULTS = {}


@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_ablation_optimizer(benchmark, solver, bench_config):
    netlist = build_circuit("KSA8")
    runner = SOLVERS[solver]
    result = benchmark.pedantic(
        runner, args=(netlist, 5), kwargs={"config": bench_config}, rounds=2, iterations=1
    )
    _RESULTS[solver] = (
        evaluate_partition(result),
        result.integer_cost(),
        result.trace.iterations,
    )


def test_ablation_optimizer_report(benchmark, output_dir, bench_config):
    def assemble():
        netlist = build_circuit("KSA8")
        for solver, runner in SOLVERS.items():
            if solver not in _RESULTS:
                result = runner(netlist, 5, config=bench_config)
                _RESULTS[solver] = (
                    evaluate_partition(result),
                    result.integer_cost(),
                    result.trace.iterations,
                )
        rows = []
        for solver in sorted(SOLVERS):
            report, cost, iterations = _RESULTS[solver]
            rows.append([
                solver, percent(report.frac_d_le_1), f"{report.i_comp_pct:.2f}%",
                f"{report.a_fs_pct:.2f}%", f"{cost:.4f}", iterations,
            ])
        return ascii_table(
            ["solver", "d<=1", "I_comp", "A_FS", "integer cost", "iterations"],
            rows,
            title="ablation: gradient descent vs L-BFGS-B (KSA8, K=5)",
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    path = write_artifact(output_dir, "ablation_optimizer.txt", text)
    print()
    print(text)
    print(f"[written to {path}]")

    # both must produce usable partitions (not a quality ranking claim;
    # the interesting output is the table itself)
    for solver in SOLVERS:
        report, _, _ = _RESULTS[solver]
        assert report.frac_d_le_2 >= 0.55
        assert report.i_comp_pct <= 60.0
