"""One registry for every ``REPRO_*`` environment variable.

Before this module, each subsystem rolled its own environment parsing
(the runner read ``REPRO_JOBS``/``REPRO_RETRIES``, the cache read
``REPRO_CACHE``/``REPRO_CACHE_DIR``, observability read ``REPRO_TRACE``,
fault injection read ``REPRO_FAULT``) with locally duplicated
strip/parse/validate logic and no single place documenting what knobs
exist.  This module is that place:

* :data:`ENV_VARS` — the full, documented table of recognized
  variables.  ``repro-gpp`` help text, docs and tests all derive from
  it, and :func:`raw` refuses to read an undeclared name so a new knob
  cannot ship undocumented (``tests/test_envcfg.py`` additionally
  greps the source tree for strays).
* Typed accessors — :func:`raw`, :func:`number`, :func:`flag_disabled`,
  :func:`flag_enabled`, :func:`choice` — with the exact
  parsing/validation semantics the
  subsystems used before (error message format included; several tests
  assert on those messages).

The subsystems keep their public resolver functions
(:func:`repro.harness.runner.resolve_jobs`,
:func:`repro.cache.store.cache_enabled`, ...) — those express defaults
and subsystem policy — but all of them now read the environment through
here.  The ``REPRO_SERVICE_*`` family of the partitioning service
(:mod:`repro.service`) is declared here from day one.

This module deliberately imports nothing beyond the standard library
and :mod:`repro.utils.errors`, so every other subsystem (including
:mod:`repro.obs`, imported at interpreter startup by almost everything)
can depend on it without cycles.
"""

import os
from dataclasses import dataclass

from repro.utils.errors import ReproError

#: Values that turn a :func:`flag_disabled`-style switch off.
DISABLED_VALUES = ("0", "off", "false", "no")

#: Values that turn a truthy toggle (``REPRO_TRACE=1``) on.
TRUTHY_VALUES = ("1", "true", "yes", "on")


@dataclass(frozen=True)
class EnvVar:
    """One documented environment variable.

    ``kind`` is a human-readable value shape (``"int >= 1"``,
    ``"flag"``, ``"path"``, ...), ``default`` the effective behavior
    when unset, ``used_by`` the owning subsystem — all three feed the
    rendered documentation table, none affect parsing.
    """

    name: str
    kind: str
    default: str
    used_by: str
    doc: str


#: Every recognized ``REPRO_*`` variable.  Keep sorted by name within
#: each subsystem block; docs/service.md renders this table.
ENV_VARS = (
    # -- core solver ---------------------------------------------------
    EnvVar("REPRO_BACKEND", "backend name", "numpy",
           "repro.core.backend",
           "Array backend executing the solver kernels (matmul/einsum/"
           "segment-sum).  Must be a name registered with "
           "repro.core.backend.register_backend; only 'numpy' ships "
           "built in."),
    # -- cache ---------------------------------------------------------
    EnvVar("REPRO_CACHE", "flag", "enabled",
           "repro.cache",
           "Set to 0/off/false/no to disable every artifact-cache read "
           "and write (forces cold runs)."),
    EnvVar("REPRO_CACHE_DIR", "path", "~/.cache/repro-gpp",
           "repro.cache",
           "Root directory of the on-disk artifact cache."),
    # -- observability -------------------------------------------------
    EnvVar("REPRO_EVENTS", "flag or path", "service on, CLI off",
           "repro.obs.events",
           "Job-lifecycle event log: 0/off/false/no disables it "
           "everywhere, 1/true/yes/on enables in-memory capture (the "
           "CLI/runner default is off; the service always keeps its "
           "in-memory log unless disabled), any other value also names "
           "a JSONL file every event is appended to."),
    EnvVar("REPRO_TRACE", "flag or path", "disabled",
           "repro.obs",
           "1/true/yes/on enables span+metric+telemetry capture; any "
           "other non-empty value also names the JSONL trace output "
           "path written by the CLI on exit."),
    EnvVar("REPRO_TRACE_CONTEXT", "flag", "enabled",
           "repro.obs.context",
           "Set to 0/off/false/no to stop the service/CLI from "
           "attaching trace contexts (request/trace/span ids) to "
           "spans; with it off, span events record exactly the v1 "
           "shape."),
    # -- suite runner --------------------------------------------------
    EnvVar("REPRO_JOBS", "int >= 1", "min(cpus, 8)",
           "repro.harness.runner",
           "Worker process count of the parallel suite runner."),
    EnvVar("REPRO_JOB_TIMEOUT", "seconds > 0", "unlimited",
           "repro.harness.runner",
           "Per-job-attempt wall-clock limit; a timed-out attempt "
           "terminates the worker pool and is retried."),
    EnvVar("REPRO_MEGABATCH", "flag", "disabled",
           "repro.harness.megabatch",
           "1/true/yes/on packs compatible queued partition jobs into "
           "one batched kernel invocation (suite runner and service "
           "drain loop).  Per-job results are bitwise-identical to solo "
           "solves."),
    EnvVar("REPRO_MEGABATCH_LIMIT", "int >= 1", "16",
           "repro.harness.megabatch",
           "Maximum number of jobs packed into one mega-batch group."),
    EnvVar("REPRO_RETRIES", "int >= 0", "2",
           "repro.harness.runner",
           "Retries per failed job (additional attempts after the "
           "first)."),
    EnvVar("REPRO_RETRY_BACKOFF", "seconds >= 0", "0.05",
           "repro.harness.runner",
           "Exponential-backoff base delay: the n-th retry waits "
           "backoff * 2**(n-1) seconds."),
    # -- incremental (ECO) re-partitioning -----------------------------
    EnvVar("REPRO_ECO_HALO", "int >= 0", "2",
           "repro.core.incremental",
           "Radius (in undirected hops) of the halo grown around the "
           "gates an ECO diff touches; gates inside the halo are "
           "re-solved, everything outside stays pinned to its previous "
           "plane."),
    EnvVar("REPRO_ECO_QUALITY_EPS", "float >= 0", "0.05",
           "repro.core.incremental",
           "Quality guard of the warm-start path: the warm result's "
           "integer cost must stay within (1 + eps) of the "
           "carried-forward reference assignment, otherwise the solve "
           "falls back to a cold multi-restart run."),
    EnvVar("REPRO_ECO_THRESHOLD", "fraction in (0, 1]", "0.25",
           "repro.core.incremental",
           "Maximum perturbed-region size (touched gates + halo) as a "
           "fraction of the netlist before the warm-start path gives "
           "up and solves cold; large edits gain nothing from "
           "warm-starting."),
    # -- fault injection -----------------------------------------------
    EnvVar("REPRO_FAULT", "spec", "none",
           "repro.harness.faults",
           "Deterministic fault plan, e.g. 'crash@1,hang@3x2' "
           "(kind@job-index[xN])."),
    EnvVar("REPRO_FAULT_HANG_SECONDS", "seconds >= 0", "3600",
           "repro.harness.faults",
           "Sleep length of an injected hang fault."),
    # -- Pareto sweep planning -----------------------------------------
    EnvVar("REPRO_SWEEP_CLOCK_GHZ", "GHz > 0", "20",
           "repro.harness.pareto",
           "Default clock frequency of the per-point ERSFQ dynamic-power "
           "estimate attached to sweep results; an explicit clock_ghz "
           "field in the sweep request wins (and is what enters the "
           "content key)."),
    EnvVar("REPRO_SWEEP_JOBS", "int >= 1", "1",
           "repro.harness.pareto",
           "Worker processes a sweep fans its uncached grid points over "
           "(through the parallel suite runner)."),
    EnvVar("REPRO_SWEEP_MAX_POINTS", "int >= 1", "256",
           "repro.harness.pareto",
           "Upper bound on K x weight-ratio grid points per sweep "
           "request; larger grids are rejected at validation (HTTP "
           "400)."),
    # -- distributed fleet ---------------------------------------------
    EnvVar("REPRO_FLEET_HEARTBEAT", "seconds > 0", "lease TTL / 3",
           "repro.fleet",
           "Heartbeat period the coordinator hands to workers with "
           "every lease; a worker that stops heartbeating loses its "
           "leases after the lease TTL and the jobs are requeued."),
    EnvVar("REPRO_FLEET_LEASE_TTL", "seconds > 0", "30",
           "repro.fleet",
           "Lease time-to-live: a leased job whose deadline passes "
           "without a heartbeat extension is reclaimed by the "
           "coordinator and requeued (charged as a timed-out retry)."),
    EnvVar("REPRO_FLEET_MAX_INFLIGHT", "int >= 1", "2",
           "repro.fleet",
           "Maximum jobs a worker node leases per request (and "
           "executes before reporting back)."),
    EnvVar("REPRO_FLEET_POLL", "seconds >= 0", "2",
           "repro.fleet",
           "Long-poll wait of an idle worker's lease request: the "
           "coordinator parks the request up to this long waiting for "
           "work before answering with an empty lease set."),
    EnvVar("REPRO_FLEET_WORKER_ID", "string", "<hostname>-<pid>",
           "repro.fleet",
           "Stable identifier a worker node registers under; shows up "
           "in /fleet/v1/workers, /healthz and the per-worker gauges."),
    # -- partitioning service ------------------------------------------
    EnvVar("REPRO_SERVICE_HOST", "host", "127.0.0.1",
           "repro.service",
           "Bind address of `repro-gpp serve`."),
    EnvVar("REPRO_SERVICE_PORT", "int >= 0", "8731",
           "repro.service",
           "TCP port of `repro-gpp serve` (0 = pick an ephemeral "
           "port)."),
    EnvVar("REPRO_SERVICE_WORKERS", "int >= 1", "min(cpus, 4)",
           "repro.service",
           "Job-executing worker threads of the service."),
    EnvVar("REPRO_SERVICE_QUEUE", "int >= 1", "64",
           "repro.service",
           "Maximum queued (admitted but not yet running) jobs; a full "
           "queue answers HTTP 429 with a Retry-After header."),
    EnvVar("REPRO_SERVICE_RETRY_AFTER", "seconds > 0", "1",
           "repro.service",
           "Retry-After value advertised with a 429 backpressure "
           "response."),
    EnvVar("REPRO_SERVICE_STORE", "flag", "enabled",
           "repro.service",
           "Set to 0/off/false/no to disable the content-keyed result "
           "store (every request re-solves)."),
    EnvVar("REPRO_SERVICE_ISOLATION", "inline | process | fleet", "inline",
           "repro.service",
           "Job execution mode: 'inline' runs solves in the worker "
           "thread (fast; retries but no hard deadlines), 'process' "
           "runs each job in a worker process through the pool path "
           "(crash isolation and enforced REPRO_JOB_TIMEOUT "
           "deadlines), 'fleet' dispatches jobs to external worker "
           "nodes over the /fleet/v1 lease API (see docs/fleet.md)."),
)

_BY_NAME = {var.name: var for var in ENV_VARS}


def declared(name):
    """The :class:`EnvVar` entry for ``name`` (ReproError if unknown).

    Reading an undeclared variable is a programming error: every knob
    must appear in :data:`ENV_VARS` so it is documented and testable.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"environment variable {name!r} is not declared in repro.envcfg.ENV_VARS"
        ) from None


def raw(name, environ=None):
    """The stripped string value of a declared variable ('' when unset)."""
    declared(name)
    return (environ if environ is not None else os.environ).get(name, "").strip()


def number(name, parse, check, message, environ=None):
    """Parse a numeric variable; ``None`` when unset.

    ``parse`` converts the string (``int``/``float``), ``check``
    validates the parsed value, ``message`` names the expected shape in
    the error (``"an integer >= 1"``).  The raised message format —
    ``"<NAME> must be <message>, got <value!r>"`` — is stable; tests
    assert on it.
    """
    value = raw(name, environ)
    if not value:
        return None
    try:
        parsed = parse(value)
    except ValueError:
        raise ReproError(f"{name} must be {message}, got {value!r}") from None
    if not check(parsed):
        raise ReproError(f"{name} must be {message}, got {value!r}")
    return parsed


def flag_disabled(name, environ=None):
    """True when the variable is explicitly one of 0/off/false/no.

    Unset (or any other value) means *enabled* — this is the
    ``REPRO_CACHE`` convention: a switch that defaults on and is only
    turned off deliberately.
    """
    return raw(name, environ).lower() in DISABLED_VALUES


def flag_enabled(name, environ=None):
    """True when the variable is explicitly one of 1/true/yes/on.

    Unset (or any other value) means *disabled* — the mirror image of
    :func:`flag_disabled`, for opt-in switches such as
    ``REPRO_MEGABATCH`` that default off and are only turned on
    deliberately.
    """
    return raw(name, environ).lower() in TRUTHY_VALUES


def choice(name, allowed, default, environ=None):
    """A string variable constrained to ``allowed``; ``default`` when unset."""
    value = raw(name, environ)
    if not value:
        return default
    lowered = value.lower()
    if lowered not in allowed:
        raise ReproError(
            f"{name} must be one of {', '.join(sorted(allowed))}, got {value!r}"
        )
    return lowered


def render_table():
    """The documented variable table as aligned plain text."""
    headers = ("variable", "value", "default", "used by")
    rows = [(v.name, v.kind, v.default, v.used_by) for v in ENV_VARS]
    widths = [max(len(r[i]) for r in rows + [headers]) for i in range(4)]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(4)))
    return "\n".join(lines)
