"""Fiduccia-Mattheyses-style refinement baseline.

Classic FM refines a seed partition with *passes*: within a pass every
gate may move once (then locks); the best-gain move is applied even if
its gain is negative, and at the end of the pass the best prefix of the
move sequence is kept.  This hill-climbing ability is what separates FM
from plain greedy descent.

The gain function here is the paper's integer cost (``c1 F1 + c2 F2 +
c3 F3``), evaluated incrementally, and candidate moves are restricted
to *adjacent* planes — matching the serial ground-plane geometry where
a gate's realistic alternatives are the planes next door.
"""

import heapq

import numpy as np

from repro.baselines.greedy import greedy_partition
from repro.core.config import PartitionConfig
from repro.core.partitioner import PartitionResult
from repro.core.refinement import _IncrementalCost
from repro.obs import OBS
from repro.utils.errors import PartitionError


def _push_moves(heap, state, gate, num_planes):
    """Push (stale) gain entries for both adjacent-plane moves of a gate."""
    current = state.labels[gate]
    for target in (current - 1, current + 1):
        if 0 <= target < num_planes:
            heapq.heappush(heap, (state.move_delta(gate, target), gate, target))


def _run_pass(state, adjacency, num_planes):
    """One FM pass with a lazy-revalidation gain heap.

    Gains go stale as moves are applied (the variance terms drift
    globally); instead of rescanning all gates per move — O(G^2) per
    pass — popped entries are recomputed and re-pushed when their gain
    changed materially.  Returns ``(best_prefix_gain, moves)`` where
    each move is ``(gate, from_plane, to_plane)``; the state ends rolled
    back to the best prefix.
    """
    num_gates = state.labels.shape[0]
    locked = np.zeros(num_gates, dtype=bool)
    heap = []
    for gate in range(num_gates):
        _push_moves(heap, state, gate, num_planes)

    moves = []
    cumulative = 0.0
    best_cumulative = 0.0
    best_prefix = 0
    tolerance = 1e-9

    while heap:
        stale_delta, gate, target = heapq.heappop(heap)
        if locked[gate] or state.labels[gate] == target:
            continue
        if abs(target - state.labels[gate]) != 1:
            continue  # gate moved since this entry was pushed
        if state.plane_sizes[state.labels[gate]] <= 1:
            continue
        delta = state.move_delta(gate, target)
        if delta > stale_delta + tolerance and heap and delta > heap[0][0]:
            heapq.heappush(heap, (delta, gate, target))  # revalidate later
            continue
        moves.append((gate, int(state.labels[gate]), target))
        state.apply_move(gate, target)
        locked[gate] = True
        cumulative += delta
        if cumulative < best_cumulative - 1e-15:
            best_cumulative = cumulative
            best_prefix = len(moves)
        # Gains of the neighbors changed the most: refresh them eagerly.
        for neighbor in adjacency[gate]:
            if not locked[neighbor]:
                _push_moves(heap, state, neighbor, num_planes)
        # Cutoff: once the pass has drifted far uphill, stop early.
        if cumulative > abs(best_cumulative) + 1.0:
            break

    # roll back to the best prefix
    for gate, source, _target in reversed(moves[best_prefix:]):
        state.apply_move(gate, source)
    return best_cumulative, moves[:best_prefix]


def fm_partition(netlist, num_planes, seed=None, config=None, seed_partition=None, max_passes=6):
    """FM-refine a seed partition (levelized greedy by default).

    Parameters
    ----------
    seed_partition:
        Optional :class:`PartitionResult` to start from; defaults to
        :func:`~repro.baselines.greedy.greedy_partition`.
    max_passes:
        Pass budget; the loop also stops at the first pass with no
        improvement.
    """
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    config = config or PartitionConfig()
    if seed_partition is None:
        seed_partition = greedy_partition(netlist, num_planes, config=config)
    elif seed_partition.num_planes != num_planes:
        raise PartitionError("seed partition has a different plane count")

    state = _IncrementalCost(
        seed_partition.labels,
        num_planes,
        netlist.edge_array(),
        netlist.bias_vector_ma(),
        netlist.area_vector_um2(),
        config,
    )
    passes = 0
    moves_kept = 0
    with OBS.trace.span("fm", gates=netlist.num_gates, planes=num_planes) as span:
        for _ in range(max_passes):
            gain, kept_moves = _run_pass(state, state.adjacency, num_planes)
            passes += 1
            moves_kept += len(kept_moves)
            if not kept_moves or gain >= -1e-15:
                break
        span.set(passes=passes, moves=moves_kept)
    if OBS.enabled:
        OBS.metrics.counter("baseline.fm.passes").inc(passes)
        OBS.metrics.counter("baseline.fm.moves_kept").inc(moves_kept)
    return PartitionResult(
        netlist=netlist, num_planes=num_planes, labels=state.labels.copy(), config=config
    )
