"""Levelized greedy partitioning.

SFQ circuits are gate-level pipelines, so dataflow depth is a natural
linear arrangement: gates at adjacent pipeline stages are heavily
connected, gates many stages apart rarely are.  This baseline

1. orders gates by ``(logic level, BFS tiebreak)``;
2. walks the order, filling plane 0, then 1, ... — closing a plane when
   its bias current reaches the ideal ``B_cir / K`` share (while always
   leaving enough gates for the remaining planes).

Connections then mostly link neighboring chunks, giving a strong
``d <= 1`` fraction with decent bias balance — the natural hand-crafted
competitor to the paper's gradient method.
"""

import numpy as np

from repro.core.config import PartitionConfig
from repro.core.partitioner import PartitionResult
from repro.netlist.graph import adjacency_lists, logic_levels
from repro.utils.errors import PartitionError


def levelized_order(netlist):
    """Gate ordering by pipeline level, with BFS-from-previous tiebreak.

    Within one level, gates adjacent to already-ordered gates come
    first, which keeps tightly-coupled cones contiguous.
    """
    levels = logic_levels(netlist)
    neighbors = adjacency_lists(netlist, directed=False)
    order = []
    placed = np.zeros(netlist.num_gates, dtype=bool)
    for level in range(int(levels.max()) + 1 if netlist.num_gates else 0):
        members = np.flatnonzero(levels == level)
        if members.size == 0:
            continue
        # gates touching the already-ordered prefix first
        touching = []
        fresh = []
        for gate in members:
            if any(placed[n] for n in neighbors[gate]):
                touching.append(int(gate))
            else:
                fresh.append(int(gate))
        for gate in touching + fresh:
            order.append(gate)
            placed[gate] = True
    return np.asarray(order, dtype=np.intp)


def pack_order_by_bias(order, bias, num_planes):
    """Split a gate order into ``num_planes`` contiguous bias-balanced chunks.

    Each gate goes to the plane whose ideal bias interval contains the
    gate's *midpoint* of cumulative bias (boundaries at ``k * B_cir /
    K``) — the assignment that minimizes per-plane deviation for a fixed
    order.  Planes left empty by pathological bias distributions are
    repaired by splitting the heaviest chunk.
    """
    num_gates = order.shape[0]
    if num_planes > num_gates:
        raise PartitionError(f"cannot split {num_gates} gates into {num_planes} planes")
    total = float(bias[order].sum())
    labels = np.empty(num_gates, dtype=np.intp)
    if total <= 0.0:
        # zero-bias netlist: fall back to equal gate counts
        for position, gate in enumerate(order):
            labels[gate] = min(position * num_planes // num_gates, num_planes - 1)
        return labels
    share = total / num_planes
    cumulative = 0.0
    for gate in order:
        midpoint = cumulative + float(bias[gate]) / 2.0
        labels[gate] = min(int(midpoint / share), num_planes - 1)
        cumulative += float(bias[gate])

    # Guarantee non-empty planes while preserving contiguity: walk the
    # order and pull the boundary of an empty plane back by one gate.
    sizes = np.bincount(labels, minlength=num_planes)
    while (sizes == 0).any():
        empty = int(np.flatnonzero(sizes == 0)[0])
        # donate from the nearest non-empty plane below (or above)
        donor = None
        for candidate in range(empty - 1, -1, -1):
            if sizes[candidate] > 1:
                donor = candidate
                break
        if donor is None:
            for candidate in range(empty + 1, num_planes):
                if sizes[candidate] > 1:
                    donor = candidate
                    break
        if donor is None:
            raise PartitionError("cannot make all planes non-empty")
        donor_positions = [g for g in order if labels[g] == donor]
        mover = donor_positions[-1] if donor < empty else donor_positions[0]
        labels[mover] = empty
        sizes[donor] -= 1
        sizes[empty] += 1
    return labels


def greedy_partition(netlist, num_planes, seed=None, config=None):
    """Levelized-order, bias-balanced greedy partition."""
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    config = config or PartitionConfig()
    order = levelized_order(netlist)
    labels = pack_order_by_bias(order, netlist.bias_vector_ma(), num_planes)
    return PartitionResult(
        netlist=netlist, num_planes=num_planes, labels=labels, config=config
    )
