"""Baseline partitioners.

The paper argues ground-plane partitioning "can not be formulated as a
classic K-way partitioning problem" (Section IV-A) because of the
serial-plane distance cost and the twin balance constraints.  These
baselines make that claim measurable:

* :func:`random_partition` — uniform random assignment (floor);
* :func:`greedy_partition` — dataflow-levelized linear ordering packed
  into bias-balanced contiguous chunks (a strong structural heuristic);
* :func:`spectral_partition` — Fiedler-vector ordering chunked the same
  way (classic spectral linear arrangement);
* :func:`fm_partition` — Fiduccia-Mattheyses-style pass-based
  refinement of a seed partition under the paper's integer cost.

All baselines return :class:`~repro.core.partitioner.PartitionResult`,
so every metric and bench runs on them unchanged.
"""

from repro.baselines.random_partition import random_partition
from repro.baselines.greedy import greedy_partition, levelized_order
from repro.baselines.spectral import spectral_partition, fiedler_order
from repro.baselines.fm import fm_partition
from repro.baselines.annealing import annealing_partition
from repro.baselines.exact import exact_partition
from repro.baselines.multilevel import multilevel_partition

__all__ = [
    "random_partition",
    "greedy_partition",
    "levelized_order",
    "spectral_partition",
    "fiedler_order",
    "fm_partition",
    "annealing_partition",
    "exact_partition",
    "multilevel_partition",
]
