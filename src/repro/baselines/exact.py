"""Exhaustive (provably optimal) partitioning for tiny instances.

The paper's problem (eq. (7)) is an integer program; for circuits of a
dozen gates it can simply be *solved* by enumerating all ``K^G``
assignments, vectorized over NumPy chunks.  This is useless for real
circuits but invaluable for science: it measures the **optimality gap**
of the gradient method, FM and the other heuristics on instances where
the true optimum is known (see ``benchmarks/test_ablation_exact.py``
and ``tests/test_exact.py``).

Plane order matters (the serial chain makes distance-1 and distance-3
different costs), so no symmetry reduction applies beyond skipping
assignments with empty planes.
"""

import numpy as np

from repro.core.config import PartitionConfig
from repro.core.partitioner import PartitionResult
from repro.utils.errors import PartitionError

#: refuse instances beyond this many assignments (K^G)
MAX_ASSIGNMENTS = 20_000_000
_CHUNK = 200_000


def _enumerate_labels(num_gates, num_planes):
    """Yield ``(chunk_size, labels)`` arrays covering all K^G assignments."""
    total = num_planes**num_gates
    for start in range(0, total, _CHUNK):
        stop = min(start + _CHUNK, total)
        codes = np.arange(start, stop, dtype=np.int64)
        labels = np.empty((stop - start, num_gates), dtype=np.int8)
        for gate in range(num_gates):
            labels[:, gate] = codes % num_planes
            codes //= num_planes
        yield labels


def _chunk_costs(labels, num_planes, edges, bias, area, config):
    """Integer cost of every assignment in the chunk, shape ``(N,)``."""
    count, _num_gates = labels.shape
    k = num_planes

    costs = np.zeros(count)
    if edges.shape[0] and k > 1:
        diff = labels[:, edges[:, 0]].astype(np.int32) - labels[:, edges[:, 1]].astype(np.int32)
        n1 = edges.shape[0] * (k - 1) ** 4
        costs += config.c1 * (diff.astype(np.float64) ** 4).sum(axis=1) / n1

    if k > 1:
        plane_bias = np.zeros((count, k))
        plane_area = np.zeros((count, k))
        for plane in range(k):
            mask = labels == plane
            plane_bias[:, plane] = mask @ bias
            plane_area[:, plane] = mask @ area
        for weight, per_plane in ((config.c2, plane_bias), (config.c3, plane_area)):
            mean = per_plane.mean(axis=1)
            variance = ((per_plane - mean[:, None]) ** 2).mean(axis=1)
            normalizer = (k - 1) * np.where(mean > 0, mean, 1.0) ** 2
            costs += weight * np.where(mean > 0, variance / normalizer, 0.0)
    return costs


def exact_partition(netlist, num_planes, config=None, require_nonempty=True):
    """Enumerate every assignment; return the provably optimal
    :class:`~repro.core.partitioner.PartitionResult` under the paper's
    integer cost.

    Raises :class:`PartitionError` when ``K^G`` exceeds
    :data:`MAX_ASSIGNMENTS` (≈ G=12 at K=4, G=15 at K=3).
    """
    config = config or PartitionConfig()
    num_gates = netlist.num_gates
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if num_planes > num_gates:
        raise PartitionError(f"cannot split {num_gates} gates into {num_planes} planes")
    total = num_planes**num_gates
    if total > MAX_ASSIGNMENTS:
        raise PartitionError(
            f"{num_planes}^{num_gates} = {total} assignments exceeds the "
            f"exact-solver cap ({MAX_ASSIGNMENTS}); use a heuristic"
        )

    edges = netlist.edge_array()
    bias = netlist.bias_vector_ma()
    area = netlist.area_vector_um2()

    best_cost = np.inf
    best_labels = None
    for labels in _enumerate_labels(num_gates, num_planes):
        if require_nonempty and num_planes > 1:
            present = np.zeros((labels.shape[0], num_planes), dtype=bool)
            for plane in range(num_planes):
                present[:, plane] = (labels == plane).any(axis=1)
            labels = labels[present.all(axis=1)]
            if labels.shape[0] == 0:
                continue
        costs = _chunk_costs(
            np.ascontiguousarray(labels), num_planes, edges, bias, area, config
        )
        index = int(np.argmin(costs))
        if costs[index] < best_cost:
            best_cost = float(costs[index])
            best_labels = labels[index].astype(np.intp).copy()

    if best_labels is None:
        raise PartitionError("no feasible assignment found")
    return PartitionResult(
        netlist=netlist,
        num_planes=num_planes,
        labels=best_labels,
        config=config,
    )
