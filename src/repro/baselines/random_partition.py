"""Uniform random partitioning — the floor every heuristic must beat."""

import numpy as np

from repro.core.config import PartitionConfig
from repro.core.partitioner import PartitionResult, _repair_empty_planes
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng


def random_partition(netlist, num_planes, seed=None, config=None):
    """Assign every gate to a uniformly random plane.

    Empty planes are repaired the same way the main partitioner does,
    so downstream metrics are always well-defined.
    """
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if num_planes > netlist.num_gates:
        raise PartitionError(
            f"cannot split {netlist.num_gates} gates into {num_planes} planes"
        )
    config = config or PartitionConfig()
    rng = make_rng(config.seed if seed is None else seed)
    labels = rng.integers(0, num_planes, size=netlist.num_gates).astype(np.intp)
    labels, repaired = _repair_empty_planes(labels, num_planes, netlist)
    return PartitionResult(
        netlist=netlist,
        num_planes=num_planes,
        labels=labels,
        config=config,
        repaired_gates=repaired,
    )
