"""Multilevel K-way partitioning (the scheme of the paper's ref. [18]).

Section IV-A claims ground-plane partitioning "can not be formulated as
a classic K-way partitioning problem".  The strongest way to examine
that claim is to *build* the classic machinery — the Karypis-Kumar
multilevel scheme — adapted only in its objective:

1. **coarsen** — heavy-edge matching collapses strongly connected gate
   pairs into supernodes (bias and area add; parallel edges keep their
   multiplicity, preserving the F1 term), repeated until the graph is
   small;
2. **initial partition** — the coarsest graph is partitioned with the
   paper's own gradient descent (it is tiny, so this is cheap and keeps
   the comparison within-family);
3. **uncoarsen + refine** — labels project back level by level, with
   greedy steepest-descent passes on the *exact serial-plane integer
   cost* at every level.

So the only "classic" ingredient missing from the paper's framing —
the distance-aware cost — is simply used as the refinement objective,
which the multilevel framework accepts without complaint.
"""

import numpy as np

from repro.core.assignment import round_assignment
from repro.core.coarsening import coarsen_problem
from repro.core.config import PartitionConfig
from repro.core.optimizer import minimize_assignment
from repro.core.partitioner import PartitionResult, _repair_empty_planes
from repro.core.refinement import _IncrementalCost, greedy_improve
from repro.obs import OBS
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng


def multilevel_partition(netlist, num_planes, seed=None, config=None, coarsest_nodes=None, refine_passes=6):
    """Multilevel partition of a netlist into K serial planes.

    Parameters
    ----------
    coarsest_nodes:
        Stop coarsening at this node count (default ``max(40, 6K)``).
    refine_passes:
        Greedy refinement pass budget per level.
    """
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if num_planes > netlist.num_gates:
        raise PartitionError(
            f"cannot split {netlist.num_gates} gates into {num_planes} planes"
        )
    config = config or PartitionConfig()
    rng = make_rng(config.seed if seed is None else seed)
    if coarsest_nodes is None:
        coarsest_nodes = max(40, 6 * num_planes)

    if num_planes == 1:
        return PartitionResult(
            netlist=netlist,
            num_planes=1,
            labels=np.zeros(netlist.num_gates, dtype=np.intp),
            config=config,
        )

    # ---- coarsening (shared with the engine="multilevel" accelerator,
    # see repro.core.coarsening) ---------------------------------------
    bias = netlist.bias_vector_ma()
    area = netlist.area_vector_um2()
    edges = netlist.edge_array()
    with OBS.trace.span("multilevel_coarsen", gates=netlist.num_gates) as span:
        levels, maps = coarsen_problem(
            netlist.num_gates, edges, bias, area, coarsest_nodes, rng
        )
        span.set(levels=len(maps), coarsest_nodes=int(levels[-1][0].shape[0]))
    if OBS.enabled:
        OBS.metrics.counter("baseline.multilevel.coarsen_levels").inc(len(maps))

    # ---- initial partition on the coarsest level --------------------
    coarse_bias, coarse_area, coarse_edges, coarse_weights = levels[-1]
    # expand weighted edges to repeated rows so F1 keeps multiplicity
    repeated = np.repeat(coarse_edges, coarse_weights.astype(int), axis=0) if coarse_edges.size else coarse_edges
    with OBS.trace.span("multilevel_initial", nodes=int(coarse_bias.shape[0])):
        trace = minimize_assignment(
            num_planes, repeated, coarse_bias, coarse_area, config, rng=rng
        )
        labels = round_assignment(trace.w)

    # ---- uncoarsen + refine -----------------------------------------
    with OBS.trace.span("multilevel_refine", levels=len(maps)):
        for level_index in range(len(maps) - 1, -1, -1):
            fine_to_coarse = maps[level_index]
            labels = labels[fine_to_coarse]
            fine_bias, fine_area, fine_edges, fine_weights = levels[level_index]
            expanded = (
                np.repeat(fine_edges, fine_weights.astype(int), axis=0)
                if fine_edges.size
                else fine_edges
            )
            state = _IncrementalCost(labels, num_planes, expanded, fine_bias, fine_area, config)
            greedy_improve(state, num_planes, max_passes=refine_passes)
            labels = state.labels

    if not maps:
        # graph was already at/below the coarsest size: the loop above
        # never ran, so refine the initial partition directly (with the
        # wider move set — tiny instances afford it)
        state = _IncrementalCost(labels, num_planes, edges, bias, area, config)
        greedy_improve(
            state, num_planes, max_passes=refine_passes, candidate_planes="all"
        )
        labels = state.labels

    labels = np.asarray(labels, dtype=np.intp)
    if config.ensure_nonempty:
        labels, _moved = _repair_empty_planes(labels, num_planes, netlist)
    return PartitionResult(
        netlist=netlist, num_planes=num_planes, labels=labels, config=config, trace=trace
    )
