"""Spectral partitioning baseline.

The Fiedler vector (eigenvector of the graph Laplacian's second-smallest
eigenvalue) is the classic continuous relaxation of minimum-cut linear
arrangement: sorting gates by their Fiedler component places strongly
connected gates near each other.  Chunking that order into
bias-balanced contiguous pieces (same packer as the greedy baseline)
yields a serial-plane partition that minimizes boundary crossings in
the spectral sense.

Dense eigendecomposition is used below ~1200 gates; larger circuits use
``scipy.sparse.linalg.eigsh`` with a shift-invert-free Lanczos on the
sparse Laplacian.
"""

import numpy as np

from repro.baselines.greedy import pack_order_by_bias
from repro.core.config import PartitionConfig
from repro.core.partitioner import PartitionResult
from repro.netlist.graph import connected_components
from repro.obs import OBS
from repro.utils.errors import PartitionError

_DENSE_LIMIT = 1200


def _fiedler_dense(num_gates, edges):
    laplacian = np.zeros((num_gates, num_gates))
    for u, v in edges:
        laplacian[u, u] += 1.0
        laplacian[v, v] += 1.0
        laplacian[u, v] -= 1.0
        laplacian[v, u] -= 1.0
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    # index 0 is the constant vector (eigenvalue 0); 1 is Fiedler
    return eigenvectors[:, 1]


def _fiedler_sparse(num_gates, edges):
    from scipy.sparse import coo_matrix
    from scipy.sparse.linalg import eigsh

    rows = np.concatenate([edges[:, 0], edges[:, 1], edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0], edges[:, 0], edges[:, 1]])
    degree_data = np.ones(2 * edges.shape[0])
    data = np.concatenate([-np.ones(2 * edges.shape[0]), degree_data])
    laplacian = coo_matrix((data, (rows, cols)), shape=(num_gates, num_gates)).tocsr()
    _, vectors = eigsh(laplacian, k=2, sigma=-1e-3, which="LM")
    return vectors[:, 1]


def fiedler_order(netlist):
    """Gate ordering by Fiedler-vector component.

    Disconnected circuits are handled per component (components are
    concatenated in discovery order, each spectrally ordered inside).
    """
    num_gates = netlist.num_gates
    edges = netlist.edge_array()
    components = connected_components(netlist)
    order_parts = []
    for component_id in range(int(components.max()) + 1 if num_gates else 0):
        members = np.flatnonzero(components == component_id)
        if members.size <= 2:
            order_parts.append(members)
            continue
        local_index = {int(g): i for i, g in enumerate(members)}
        mask = np.isin(edges[:, 0], members)
        local_edges = np.array(
            [[local_index[int(u)], local_index[int(v)]] for u, v in edges[mask]], dtype=np.intp
        ).reshape(-1, 2)
        if members.size <= _DENSE_LIMIT:
            fiedler = _fiedler_dense(members.size, local_edges)
        else:
            fiedler = _fiedler_sparse(members.size, local_edges)
        order_parts.append(members[np.argsort(fiedler, kind="stable")])
    return np.concatenate(order_parts) if order_parts else np.zeros(0, dtype=np.intp)


def spectral_partition(netlist, num_planes, seed=None, config=None):
    """Fiedler-ordered, bias-balanced contiguous partition."""
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    config = config or PartitionConfig()
    with OBS.trace.span("spectral", gates=netlist.num_gates, planes=num_planes):
        with OBS.trace.span("fiedler"):
            order = fiedler_order(netlist)
        labels = pack_order_by_bias(order, netlist.bias_vector_ma(), num_planes)
    return PartitionResult(
        netlist=netlist, num_planes=num_planes, labels=labels, config=config
    )
