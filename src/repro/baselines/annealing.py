"""Simulated-annealing baseline.

The classic physical-design alternative to both FM and gradient
relaxations: random single-gate moves to adjacent planes, Metropolis
acceptance, geometric cooling.  Uses the same incremental integer-cost
evaluator as the refinement/FM code, so the objective is identical to
the paper's (eq. (8) restricted to feasible assignments).

Annealing explores uphill more freely than FM's best-prefix passes and
needs no gradient at all — the most general-purpose member of the
baseline family, at the highest runtime.
"""

import math

import numpy as np

from repro.baselines.greedy import greedy_partition
from repro.core.config import PartitionConfig
from repro.core.partitioner import PartitionResult
from repro.core.refinement import _IncrementalCost
from repro.obs import OBS
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng


def annealing_partition(
    netlist,
    num_planes,
    seed=None,
    config=None,
    seed_partition=None,
    initial_temperature=None,
    cooling=0.95,
    moves_per_temperature=None,
    min_temperature_ratio=1e-4,
):
    """Simulated-annealing partition.

    Parameters
    ----------
    seed_partition:
        Starting point (defaults to the levelized greedy partition —
        starting hot from random labels works too but wastes moves).
    initial_temperature:
        Metropolis temperature in cost units; defaults to the standard
        deviation of a sample of random move deltas (accepting ~60 % of
        uphill moves initially).
    cooling:
        Geometric factor per temperature step.
    moves_per_temperature:
        Proposed moves per step; defaults to ``8 * G``.
    min_temperature_ratio:
        Stop when T falls below this fraction of the initial T.
    """
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if not 0.0 < cooling < 1.0:
        raise PartitionError(f"cooling must be in (0, 1), got {cooling}")
    config = config or PartitionConfig()
    rng = make_rng(config.seed if seed is None else seed)
    if seed_partition is None:
        seed_partition = greedy_partition(netlist, num_planes, config=config)
    elif seed_partition.num_planes != num_planes:
        raise PartitionError("seed partition has a different plane count")

    state = _IncrementalCost(
        seed_partition.labels,
        num_planes,
        netlist.edge_array(),
        netlist.bias_vector_ma(),
        netlist.area_vector_um2(),
        config,
    )
    num_gates = netlist.num_gates
    if moves_per_temperature is None:
        moves_per_temperature = 8 * num_gates

    def propose():
        gate = int(rng.integers(0, num_gates))
        current = state.labels[gate]
        if state.plane_sizes[current] <= 1:
            return None
        target = current + (1 if rng.random() < 0.5 else -1)
        if not 0 <= target < num_planes:
            return None
        return gate, target

    # calibrate the starting temperature from sampled move deltas
    if initial_temperature is None:
        samples = []
        for _ in range(min(200, 10 * num_gates)):
            move = propose()
            if move:
                samples.append(abs(state.move_delta(*move)))
        spread = float(np.std(samples)) if samples else 1.0
        initial_temperature = max(spread, 1e-9)

    temperature = initial_temperature
    best_labels = state.labels.copy()
    best_cost = 0.0
    current_cost = 0.0  # relative to the seed; only deltas matter

    temperature_steps = 0
    accepted = 0
    with OBS.trace.span("annealing", gates=netlist.num_gates, planes=num_planes) as span:
        while temperature > initial_temperature * min_temperature_ratio:
            for _ in range(moves_per_temperature):
                move = propose()
                if move is None:
                    continue
                delta = state.move_delta(*move)
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    state.apply_move(*move)
                    accepted += 1
                    current_cost += delta
                    if current_cost < best_cost:
                        best_cost = current_cost
                        best_labels = state.labels.copy()
            temperature *= cooling
            temperature_steps += 1
        span.set(temperature_steps=temperature_steps, accepted_moves=accepted)
    if OBS.enabled:
        OBS.metrics.counter("baseline.annealing.temperature_steps").inc(temperature_steps)
        OBS.metrics.counter("baseline.annealing.accepted_moves").inc(accepted)

    return PartitionResult(
        netlist=netlist, num_planes=num_planes, labels=best_labels, config=config
    )
