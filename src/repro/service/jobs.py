"""Bounded job queue, worker pool and job lifecycle of the service.

:class:`JobManager` owns everything between "request validated" and
"payload available":

* a bounded FIFO of admitted jobs — at capacity, :meth:`submit` raises
  :class:`~repro.service.errors.QueueFullError` and the server answers
  HTTP 429 with a ``Retry-After`` header (backpressure, never unbounded
  memory);
* in-flight dedup — a second request with the same content key while
  the first is queued/running attaches to the existing job instead of
  solving twice;
* a result-store fast path — a stored payload turns the submit into an
  immediately-``done`` job without touching the queue;
* worker threads executing each job through the fault-tolerant
  :func:`repro.harness.runner.run_jobs` path (retries + failure
  taxonomy; ``isolation="process"`` additionally forces the process
  pool for crash isolation and enforceable deadlines);
* best-effort cancellation: a queued job is dropped before it runs, a
  running job finishes (inline solves cannot be interrupted).

Thread-safety: all job/queue state is guarded by one condition
variable.  Solver observability (the process-wide ``OBS`` singleton) is
not thread-safe, so when capture is enabled job execution is
additionally serialized by a dedicated lock — trace capture costs
concurrency, which is fine for its debugging use; with capture off
(the default) workers run fully in parallel.

Observability (this PR's substrate; see docs/observability.md):

* every lifecycle transition emits into the server's
  :class:`~repro.obs.events.EventLog` (``queued`` → ``leased`` →
  ``solving`` → ``solved`` → ``stored`` → ``done`` / ``failed`` /
  ``cancelled``), stamped with the job's trace context when one was
  attached at submit;
* per-phase latency histograms (``service.job.queue_wait_seconds`` /
  ``solve_seconds`` / ``finalize_seconds`` / ``store_seconds``) feed
  the Prometheus exposition of ``GET /metrics``;
* with ``tracing`` on (``repro-gpp serve --trace-requests``), each job
  records phase spans into a private tracer parented under the
  originating request's span, and the solver itself is captured —
  inline isolation borrows the ``OBS`` singleton for a serialized
  window (under ``_obs_lock``), process isolation ships the context
  into the pool worker via ``SuiteJob.trace_context`` and routes the
  worker snapshot back through ``run_jobs(snapshot_sink=...)``.  Both
  paths feed ``trace_sink`` (the server's absorb hook) so one request
  yields one connected span tree.  Deep tracing serializes solves and
  is strictly opt-in.
"""

import dataclasses
import itertools
import threading
import time
import uuid
from collections import deque

from repro.harness import faults as fault_mod
from repro.harness import megabatch as megabatch_mod
from repro.harness.checkpoint import payload_to_jsonable
from repro.harness.runner import run_jobs
from repro.obs import NOOP_SPAN, OBS, TraceContext, Tracer
from repro.service.api import pack_signature, request_to_job
from repro.service.errors import (
    NotFoundError,
    QueueFullError,
    ServiceUnavailableError,
)
from repro.utils.errors import ReproError

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Finished jobs beyond this many are evicted oldest-first, so a
#: long-running server's job table cannot grow without bound.
MAX_FINISHED_JOBS = 1024


class Job:
    """One submitted request's lifecycle record."""

    __slots__ = ("id", "key", "request", "state", "payload", "error",
                 "submitted_at", "started_at", "finished_at", "cached",
                 "cancel_requested", "done_event", "seq", "trace")

    _seq = itertools.count()

    def __init__(self, key, request):
        self.id = uuid.uuid4().hex[:16]
        self.key = key
        self.request = request
        self.state = "queued"
        self.payload = None
        self.error = None
        self.submitted_at = time.time()
        self.started_at = None
        self.finished_at = None
        self.cached = False
        self.cancel_requested = False
        self.done_event = threading.Event()
        self.seq = next(Job._seq)
        self.trace = None  # TraceContext wire dict of the job's span

    @property
    def finished(self):
        return self.state in ("done", "failed", "cancelled")

    def to_dict(self):
        """The status JSON of this job (no payload; see the result route)."""
        out = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "request": self.request,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.trace is not None:
            out["trace"] = {
                "trace_id": self.trace.get("trace"),
                "request_id": self.trace.get("request"),
            }
        return out


class JobManager:
    """See the module docstring."""

    def __init__(self, workers=1, queue_size=64, timeout=None, retries=None,
                 backoff=None, isolation="inline", store=None, retry_after=1,
                 fault_plan=None, metrics=None, megabatch=None,
                 megabatch_limit=None, events=None, tracing=False,
                 trace_sink=None, fleet=None):
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ReproError(f"queue_size must be >= 1, got {queue_size}")
        if isolation not in ("inline", "process", "fleet"):
            raise ReproError(
                f"isolation must be 'inline', 'process' or 'fleet', "
                f"got {isolation!r}"
            )
        if isolation == "fleet" and fleet is None:
            raise ReproError(
                "isolation='fleet' needs a FleetCoordinator (fleet=...)"
            )
        self.fleet = fleet if isolation == "fleet" else None
        self.workers = workers
        self.queue_size = queue_size
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.isolation = isolation
        self.store = store
        self.retry_after = retry_after
        self.fault_plan = fault_plan
        self.metrics = metrics
        self.events = events          # EventLog (or None: no event emission)
        self.tracing = bool(tracing)  # deep solver tracing (serializes solves)
        self.trace_sink = trace_sink  # callable(tracer=, snapshot=) per job
        # Mega-batching is inline-only: the packed solve runs in the
        # worker thread, which would silently bypass the crash
        # isolation and enforceable deadlines process isolation buys.
        # Deep tracing also disables it — a packed group has no single
        # originating request to parent its spans under.
        self.megabatch = (
            megabatch_mod.megabatch_enabled(megabatch)
            and isolation == "inline"
            and not self.tracing
        )
        self.megabatch_limit = megabatch_mod.resolve_megabatch_limit(megabatch_limit)

        self._cond = threading.Condition()
        self._queue = deque()           # Jobs admitted but not yet running
        self._jobs = {}                 # id -> Job (bounded; see _evict)
        self._inflight = {}             # key -> queued/running Job
        self._finished_order = deque()  # ids of finished jobs, oldest first
        self._running = False
        self._draining = False
        self._threads = []
        self._obs_lock = threading.Lock()

    # -- metrics / events ----------------------------------------------
    def _inc(self, name, amount=1):
        if self.metrics is not None:
            with self._cond:
                self.metrics.counter(name).inc(amount)

    def _observe(self, name, value):
        """Record one phase-latency histogram sample (seconds)."""
        if self.metrics is not None:
            with self._cond:
                self.metrics.histogram(name).observe(value)

    def _emit(self, job, event, **attrs):
        """One lifecycle event, stamped with the job's trace context."""
        if self.events is None:
            return
        ctx = TraceContext.from_wire(job.trace) if job.trace else None
        self.events.emit(event, job_id=job.id, ctx=ctx, **attrs)

    # -- lifecycle -----------------------------------------------------
    def start(self):
        with self._cond:
            if self._running:
                return self
            self._running = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def draining(self):
        """True once :meth:`begin_drain` ran; new submits answer 503."""
        with self._cond:
            return self._draining

    def begin_drain(self):
        """Stop admitting work; already-admitted jobs keep running.

        The graceful-shutdown entry point of ``repro-gpp serve``
        (SIGTERM/SIGINT): after this every :meth:`submit` raises
        :class:`ServiceUnavailableError` (HTTP 503) while the queue and
        the in-flight jobs drain normally — follow with :meth:`drain`
        to wait for them.
        """
        with self._cond:
            self._draining = True

    def drain(self, timeout=None):
        """Wait until no job is queued or running; True when drained.

        ``timeout`` bounds the wait in seconds (``None`` waits forever
        — callers bound it by REPRO_JOB_TIMEOUT).  Does not stop the
        workers; call :meth:`stop` after for that.
        """
        deadline = None if timeout is None else time.time() + timeout
        with self._cond:
            while self._queue or any(
                job.state in ("queued", "running")
                for job in self._inflight.values()
            ):
                remaining = None if deadline is None else deadline - time.time()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=0.2 if remaining is None
                                else min(0.2, remaining))
            return True

    def stop(self, timeout=5.0):
        """Stop accepting work and join the worker threads.

        Queued jobs are marked cancelled; a job already running finishes
        (inline execution cannot be interrupted) but its worker exits
        right after.
        """
        dropped = []
        with self._cond:
            self._running = False
            while self._queue:
                job = self._queue.popleft()
                self._finish_locked(job, "cancelled",
                                    error="server shutting down")
                dropped.append(job)
            self._cond.notify_all()
        for job in dropped:
            self._emit(job, "cancelled", reason="server shutting down")
        deadline = time.time() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.time()))
        self._threads = []
        return self

    # -- submission ----------------------------------------------------
    def submit(self, key, normalized, ctx=None):
        """Admit a validated request; returns ``(job, outcome)``.

        ``outcome`` is ``"cached"`` (payload served from the result
        store, job born ``done``), ``"deduped"`` (attached to an
        in-flight job with the same key) or ``"queued"``.  Raises
        :class:`QueueFullError` at capacity.

        ``ctx`` is the request's :class:`~repro.obs.context.TraceContext`
        (when the server attached one): the job's own span context is
        derived from it, so everything the job records parents under
        the originating request.
        """
        with self._cond:
            if self._draining:
                raise ServiceUnavailableError(
                    "server is draining for shutdown; not accepting new jobs"
                )
        stored = self.store.get(key) if self.store is not None else None
        if stored is not None:
            with self._cond:
                job = Job(key, normalized)
                if ctx is not None:
                    job.trace = ctx.child("job").to_wire()
                job.state = "done"
                job.cached = True
                job.payload = stored
                job.finished_at = time.time()
                job.done_event.set()
                self._jobs[job.id] = job
                self._record_finished_locked(job)
            self._inc("service.store.hits")
            self._inc("service.jobs.completed")
            self._emit(job, "cached")
            self._emit(job, "done", cached=True)
            return job, "cached"

        with self._cond:
            existing = self._inflight.get(key)
            if existing is not None:
                self._inc_locked("service.jobs.deduped")
                deduped = existing
            else:
                deduped = None
                if len(self._queue) >= self.queue_size:
                    self._inc_locked("service.queue.rejections")
                    rejection = QueueFullError(
                        f"job queue is full ({self.queue_size} queued); retry later",
                        retry_after=self.retry_after,
                    )
                else:
                    rejection = None
                    job = Job(key, normalized)
                    if ctx is not None:
                        job.trace = ctx.child("job").to_wire()
                    self._jobs[job.id] = job
                    self._inflight[key] = job
                    self._queue.append(job)
                    depth = len(self._queue)
                    self._inc_locked("service.jobs.submitted")
                    self._cond.notify()
        if deduped is not None:
            self._emit(deduped, "deduped")
            return deduped, "deduped"
        if rejection is not None:
            if self.events is not None:
                self.events.emit("rejected", ctx=ctx, key=key,
                                 queue_size=self.queue_size)
            raise rejection
        self._emit(job, "queued", queue_depth=depth)
        return job, "queued"

    def _inc_locked(self, name, amount=1):
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # -- queries -------------------------------------------------------
    def get(self, job_id):
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise NotFoundError(f"no such job {job_id!r}") from None

    def list_jobs(self):
        with self._cond:
            return sorted(self._jobs.values(), key=lambda job: job.seq)

    def queue_depth(self):
        with self._cond:
            return len(self._queue)

    def running_count(self):
        """Jobs currently executing on a worker thread."""
        with self._cond:
            return sum(
                1 for job in self._inflight.values() if job.state == "running"
            )

    def cancel(self, job_id):
        """Best-effort cancel; returns the job.

        A queued job is dropped and marked ``cancelled``.  A running job
        only gets its flag set — inline execution cannot be interrupted
        — and completes normally.  Finished jobs are left untouched.
        """
        cancelled = False
        with self._cond:
            try:
                job = self._jobs[job_id]
            except KeyError:
                raise NotFoundError(f"no such job {job_id!r}") from None
            if job.state == "queued":
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass
                self._finish_locked(job, "cancelled", error="cancelled by client")
                self._inc_locked("service.jobs.cancelled")
                cancelled = True
            elif job.state == "running":
                job.cancel_requested = True
        if cancelled:
            self._emit(job, "cancelled", reason="cancelled by client")
        return job

    # -- worker internals ----------------------------------------------
    def _finish_locked(self, job, state, payload=None, error=None):
        job.state = state
        job.payload = payload
        job.error = error
        job.finished_at = time.time()
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self._record_finished_locked(job)
        job.done_event.set()
        self._cond.notify_all()

    def _record_finished_locked(self, job):
        self._finished_order.append(job.id)
        while len(self._finished_order) > MAX_FINISHED_JOBS:
            evicted = self._finished_order.popleft()
            if evicted != job.id:
                self._jobs.pop(evicted, None)

    def _next_job(self):
        with self._cond:
            while self._running and not self._queue:
                self._cond.wait(timeout=0.2)
            if not self._running:
                return None
            job = self._queue.popleft()
            job.state = "running"
            job.started_at = time.time()
            return job

    def _next_batch(self):
        """Pop the next job plus any queued jobs packable with it.

        With mega-batching off this degenerates to a one-job batch.
        With it on, the queue is drained of jobs whose
        :func:`~repro.service.api.pack_signature` matches the head
        job's (up to ``megabatch_limit``); non-matching jobs keep
        their relative order at the front of the queue.
        """
        job = self._next_job()
        if job is None:
            return None
        batch = [job]
        if self.megabatch:
            with self._cond:
                signature = pack_signature(job.request)
                if signature is not None and self._queue:
                    keep = deque()
                    while self._queue and len(batch) < self.megabatch_limit:
                        candidate = self._queue.popleft()
                        if pack_signature(candidate.request) == signature:
                            candidate.state = "running"
                            candidate.started_at = time.time()
                            batch.append(candidate)
                        else:
                            keep.append(candidate)
                    while keep:
                        self._queue.appendleft(keep.pop())
        return batch

    def _worker_loop(self):
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            if len(batch) == 1:
                self._execute(batch[0])
            else:
                self._execute_batch(batch)

    def _execute_batch(self, jobs):
        """Run a packed group of compatible jobs as one solve.

        Per-job payloads are bitwise-identical to solo execution (the
        runner's mega-batch contract), so the result store and clients
        never observe the difference.  When a fault plan is active
        (chaos semantics are per-job) or the packed run fails for any
        reason, every job re-runs through the solo :meth:`_execute`
        path — nothing has been finished at that point, so the
        fallback is clean.
        """
        fault_plan = self.fault_plan
        if fault_plan is None:
            fault_plan = fault_mod.plan_from_env()
        if fault_plan is not None:
            for job in jobs:
                self._execute(job)
            return
        for job in jobs:
            queue_wait = max(
                0.0, (job.started_at or time.time()) - job.submitted_at)
            self._observe("service.job.queue_wait_seconds", queue_wait)
            self._emit(job, "leased", queue_wait_s=round(queue_wait, 6))
            self._emit(job, "solving", batched=True, group_size=len(jobs))
        try:
            suite_jobs = [request_to_job(job.request) for job in jobs]
            serialize = OBS.enabled
            if serialize:
                self._obs_lock.acquire()
            try:
                payloads = run_jobs(
                    suite_jobs,
                    jobs=1,
                    timeout=self.timeout,
                    retries=self.retries,
                    backoff=self.backoff,
                    megabatch=True,
                )
            finally:
                if serialize:
                    self._obs_lock.release()
            jsonables = [payload_to_jsonable(payload) for payload in payloads]
        except Exception:
            self._inc("service.megabatch.fallbacks")
            for job in jobs:
                self._execute(job)
            return
        self._inc("service.megabatch.groups")
        self._inc("service.megabatch.packed_jobs", len(jobs))
        for job, payload, jsonable in zip(jobs, payloads, jsonables):
            if self.store is not None:
                self.store.put(job.key, payload, meta={"request": job.request})
                self._inc("service.store.writes")
                self._emit(job, "stored")
            with self._cond:
                self._finish_locked(job, "done", payload=jsonable)
                self._inc_locked("service.jobs.completed")
            self._emit(job, "done", batched=True)

    def _job_tracer(self, job):
        """Deep-tracing setup of one job: ``(private Tracer, ctx)``.

        Returns ``(None, None)`` unless tracing is on, a sink exists and
        the job carries a trace context — the plain path records
        nothing per job.
        """
        if not self.tracing or self.trace_sink is None or job.trace is None:
            return None, None
        ctx = TraceContext.from_wire(job.trace)
        if ctx is None:
            return None, None
        tracer = Tracer()
        tracer.enabled = True
        return tracer, ctx

    def _absorb(self, tracer, snap):
        """Hand a job's phase spans + solver snapshot to the trace sink."""
        if self.trace_sink is None:
            return
        if tracer is None and snap is None:
            return
        self.trace_sink(tracer=tracer, snapshot=snap)

    def _solve(self, suite_job, fault_plan, solve_ctx, job):
        """One job's solve; returns ``(payloads, solver snapshot | None)``.

        ``solve_ctx`` (deep tracing only) parents the solver's spans
        under the job's phase tree: process isolation ships it into the
        pool worker via ``SuiteJob.trace_context`` and collects the
        worker snapshot through ``snapshot_sink``; inline isolation
        borrows the ``OBS`` singleton for a serialized capture window.
        The partition payloads are bitwise-identical either way — the
        context never enters a content key.

        ``isolation="fleet"`` dispatches instead of solving: the job is
        queued on the :class:`~repro.fleet.coordinator.FleetCoordinator`
        and this worker thread blocks until a worker node resolves it
        (the coordinator owns leases, heartbeat expiry, retry/backoff
        accounting and payload validation).  Fault plans are *not*
        applied coordinator-side — worker nodes honor their own
        ``REPRO_FAULT`` environment, which is the whole point of the
        worker-kill chaos story.
        """
        if self.isolation == "fleet":
            return self._solve_fleet(suite_job, solve_ctx, job)
        force_pool = self.isolation == "process"
        kwargs = dict(jobs=1, timeout=self.timeout, retries=self.retries,
                      backoff=self.backoff, fault_plan=fault_plan)
        if solve_ctx is not None and force_pool:
            shipped = dataclasses.replace(
                suite_job, trace_context=solve_ctx.to_wire())
            snaps = []
            serialize = OBS.enabled
            if serialize:
                self._obs_lock.acquire()
            try:
                payloads = run_jobs([shipped], force_pool=True,
                                    snapshot_sink=snaps.append, **kwargs)
            finally:
                if serialize:
                    self._obs_lock.release()
            return payloads, (snaps[0] if snaps else None)
        if solve_ctx is not None:
            with self._obs_lock:
                if OBS.enabled:
                    # A user capture (REPRO_TRACE) owns the singleton;
                    # don't reset it — run plainly inside that capture.
                    payloads = run_jobs([suite_job], force_pool=force_pool,
                                        **kwargs)
                    return payloads, None
                OBS.reset()
                OBS.enable()
                OBS.trace.context = solve_ctx
                try:
                    payloads = run_jobs([suite_job], force_pool=force_pool,
                                        **kwargs)
                    snap = OBS.snapshot(origin=f"service/{job.id}")
                finally:
                    OBS.disable(reset=True)
                return payloads, snap
        serialize = OBS.enabled
        if serialize:
            # The OBS singleton (tracer span stack) is single-threaded.
            self._obs_lock.acquire()
        try:
            payloads = run_jobs([suite_job], force_pool=force_pool, **kwargs)
        finally:
            if serialize:
                self._obs_lock.release()
        return payloads, None

    def _solve_fleet(self, suite_job, solve_ctx, job):
        """Dispatch one job to the fleet and wait for its resolution.

        Returns the same ``(payloads, snapshot)`` shape as a local
        solve; raises :class:`ReproError` when the fleet exhausted the
        job's retries (the normal failed-job path picks that up).  The
        wait is bounded only when an explicit ``timeout`` was
        configured — a queue deeper than the worker pool legitimately
        parks jobs for longer than any per-attempt budget.
        """
        trace = solve_ctx.to_wire() if solve_ctx is not None else job.trace
        task = self.fleet.submit(
            job.key, suite_job, job.request, trace=trace,
            tracing=self.tracing and solve_ctx is not None, job_id=job.id,
        )
        deadline = None
        if self.timeout is not None:
            per_attempt = self.fleet.lease_ttl + float(self.timeout)
            deadline = (self.fleet.retries + 1) * per_attempt + 10.0
        payload, snapshot = task.wait(timeout=deadline)
        return [payload], snapshot

    def _execute(self, job):
        if job.request.get("kind") == "sweep":
            self._execute_sweep(job)
            return
        fault_plan = self.fault_plan
        if fault_plan is None:
            fault_plan = fault_mod.plan_from_env()
        queue_wait = max(0.0, (job.started_at or time.time()) - job.submitted_at)
        self._observe("service.job.queue_wait_seconds", queue_wait)
        self._emit(job, "leased", queue_wait_s=round(queue_wait, 6))
        tracer, ctx = self._job_tracer(job)
        snap = None
        try:
            root = (tracer.span("service.job", ctx=ctx, job=job.id,
                                circuit=job.request.get("circuit"))
                    if tracer is not None else NOOP_SPAN)
            with root:
                suite_job = request_to_job(job.request)
                self._emit(job, "solving")
                started = time.perf_counter()
                with (tracer.span("solve") if tracer is not None else NOOP_SPAN):
                    solve_ctx = tracer.context if tracer is not None else None
                    payloads, snap = self._solve(
                        suite_job, fault_plan, solve_ctx, job)
                solve_s = time.perf_counter() - started
                self._observe("service.job.solve_seconds", solve_s)
                self._emit(job, "solved", solve_s=round(solve_s, 6))
                if job.request.get("kind") == "eco":
                    # Edit-to-answer phase histogram + warm/cold split
                    # of the incremental path (docs/eco.md).
                    self._observe("service.job.eco_seconds", solve_s)
                    info = (payloads[0] or {}).get("eco") or {}
                    if info.get("mode") == "warm":
                        self._inc("service.eco.warm")
                    elif info.get("mode") == "cold":
                        self._inc("service.eco.cold_fallbacks")
                started = time.perf_counter()
                with (tracer.span("finalize") if tracer is not None else NOOP_SPAN):
                    payload = payload_to_jsonable(payloads[0])
                self._observe("service.job.finalize_seconds",
                              time.perf_counter() - started)
                if self.store is not None:
                    started = time.perf_counter()
                    with (tracer.span("store") if tracer is not None else NOOP_SPAN):
                        self.store.put(job.key, payloads[0],
                                       meta={"request": job.request})
                    store_s = time.perf_counter() - started
                    self._observe("service.job.store_seconds", store_s)
                    self._inc("service.store.writes")
                    self._emit(job, "stored", store_s=round(store_s, 6))
        except ReproError as error:
            with self._cond:
                self._finish_locked(job, "failed", error=str(error))
                self._inc_locked("service.jobs.failed")
            self._emit(job, "failed", error=str(error))
            self._absorb(tracer, snap)
            return
        with self._cond:
            self._finish_locked(job, "done", payload=payload)
            self._inc_locked("service.jobs.completed")
        self._emit(job, "done")
        self._absorb(tracer, snap)

    def _execute_sweep(self, job):
        """One ``kind="sweep"`` job: fan the K x ratio grid, store points.

        Grid points are the exact solo partition requests a client could
        POST, keyed and stored individually through the result store, so
        sweeps and solo jobs dedupe against each other bitwise; only the
        misses fan through :func:`run_jobs`.
        """
        from repro.harness.pareto import execute_sweep

        fault_plan = self.fault_plan
        if fault_plan is None:
            fault_plan = fault_mod.plan_from_env()
        queue_wait = max(0.0, (job.started_at or time.time()) - job.submitted_at)
        self._observe("service.job.queue_wait_seconds", queue_wait)
        self._emit(job, "leased", queue_wait_s=round(queue_wait, 6))
        tracer, ctx = self._job_tracer(job)
        try:
            root = (tracer.span("service.job", ctx=ctx, job=job.id,
                                circuit=job.request.get("circuit"))
                    if tracer is not None else NOOP_SPAN)
            with root:
                self._emit(job, "solving")
                started = time.perf_counter()
                run_kwargs = dict(timeout=self.timeout, retries=self.retries,
                                  backoff=self.backoff, fault_plan=fault_plan,
                                  force_pool=self.isolation == "process")
                serialize = OBS.enabled
                if serialize:
                    # The OBS singleton (tracer span stack) is single-threaded.
                    self._obs_lock.acquire()
                try:
                    with (tracer.span("sweep") if tracer is not None else NOOP_SPAN):
                        payload, stats = execute_sweep(
                            job.request, store=self.store, run_kwargs=run_kwargs)
                finally:
                    if serialize:
                        self._obs_lock.release()
                sweep_s = time.perf_counter() - started
                self._observe("service.job.sweep_seconds", sweep_s)
                self._inc("service.sweep.points", stats["points"])
                self._inc("service.sweep.point_cache_hits", stats["cache_hits"])
                self._inc("service.sweep.solved", stats["solved"])
                self._inc("service.sweep.skipped_k", stats["skipped_k"])
                if self.store is not None:
                    self._inc("service.store.writes", stats["solved"])
                self._emit(job, "solved", solve_s=round(sweep_s, 6),
                           points=stats["points"], cache_hits=stats["cache_hits"])
                payload = payload_to_jsonable(payload)
                if self.store is not None:
                    started = time.perf_counter()
                    with (tracer.span("store") if tracer is not None else NOOP_SPAN):
                        self.store.put(job.key, payload,
                                       meta={"request": job.request})
                    store_s = time.perf_counter() - started
                    self._observe("service.job.store_seconds", store_s)
                    self._inc("service.store.writes")
                    self._emit(job, "stored", store_s=round(store_s, 6))
        except ReproError as error:
            with self._cond:
                self._finish_locked(job, "failed", error=str(error))
                self._inc_locked("service.jobs.failed")
            self._emit(job, "failed", error=str(error))
            self._absorb(tracer, None)
            return
        with self._cond:
            self._finish_locked(job, "done", payload=payload)
            self._inc_locked("service.jobs.completed")
        self._emit(job, "done")
        self._absorb(tracer, None)
