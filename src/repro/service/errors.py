"""Error taxonomy of the partitioning service.

Every error maps to one HTTP status, so the server's translation layer
is a single ``except ServiceError`` clause — see
:meth:`ServiceError.status`.  All of them derive from
:class:`~repro.utils.errors.ReproError`, keeping ``except ReproError``
a valid catch-all throughout the codebase.
"""

from repro.utils.errors import ReproError


class ServiceError(ReproError):
    """Base class; concrete subclasses fix the HTTP status code."""

    status = 500
    code = "internal"


class BadRequestError(ServiceError):
    """The request body failed validation (HTTP 400)."""

    status = 400
    code = "bad-request"


class NotFoundError(ServiceError):
    """No such job / route (HTTP 404)."""

    status = 404
    code = "not-found"


class ConflictError(ServiceError):
    """The job exists but is not in a state the request needs (HTTP 409)."""

    status = 409
    code = "conflict"


class QueueFullError(ServiceError):
    """Backpressure: the bounded job queue is at capacity (HTTP 429).

    ``retry_after`` is the whole-seconds hint advertised in the
    ``Retry-After`` response header.
    """

    status = 429
    code = "queue-full"

    def __init__(self, message, retry_after=1):
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class ServiceUnavailableError(ServiceError):
    """The server is draining for shutdown and takes no new work (HTTP 503)."""

    status = 503
    code = "draining"


class JobFailedError(ServiceError):
    """Fetching the result of a job whose execution failed (HTTP 500)."""

    status = 500
    code = "job-failed"
