"""Request schema, validation and content keys of the service API.

A partition request is a JSON object::

    {
      "kind":       "partition" | "plan",        # default "partition"
      "circuit":    "KSA16",                     # suite generator name,
      "netlist":    {...},                       #   OR a serialized netlist
      "num_planes": 4,                           # required for "partition"
      "method":     "gradient",                  # any PARTITION_METHODS key
      "engine":     "batched",                   # gradient engines only
      "seed":       0,                           # integer, default 0
      "refine":     false,
      "pinned":     {"gate name": plane, ...},   # gradient method only
      "bias_limit_ma": 100.0                     # "plan" jobs only
    }

    exactly one of ``circuit`` / ``netlist`` must be present.

Validation (:func:`validate_request`) normalizes this into a canonical
dict; :func:`request_key` hashes the canonical form together with every
schema version that could change the produced bytes, which makes the
key safe to use as a result-store address; :func:`request_to_job`
builds the *same* :class:`~repro.harness.runner.SuiteJob` the CLI
builds, which is what makes a served result bitwise-identical to a
local ``repro-gpp partition`` run.

``seed`` must be an integer and defaults to 0 (no "give me whatever"
mode): the result store deduplicates by content key, so every knob that
influences the answer must be pinned by the request.
"""

import hashlib
import json

from repro import __version__
from repro.cache.store import CACHE_SCHEMA_VERSION, canonical_jsonable
from repro.circuits.suite import SUITE_NAMES
from repro.core.config import ENGINES, PartitionConfig
from repro.harness.checkpoint import CHECKPOINT_SCHEMA_VERSION
from repro.netlist.diff import DIFF_FORMAT_VERSION, validate_diff
from repro.netlist.serialize import NETLIST_FORMAT_VERSION, validate_netlist_dict
from repro.obs import EVENT_SCHEMA_VERSION, TRACE_SCHEMA_VERSION
from repro.service.errors import BadRequestError
from repro.utils.errors import NetlistError

#: Version of the request/response JSON shapes described above.
SERVICE_API_VERSION = 1

#: Request fields the validator recognizes; anything else is rejected
#: (typos like "numplanes" must not silently fall back to a default and
#: then dedup against the wrong result).
REQUEST_FIELDS = (
    "kind", "circuit", "netlist", "num_planes", "method", "engine",
    "seed", "refine", "pinned", "bias_limit_ma",
)

JOB_KINDS = ("partition", "plan")


def schema_versions():
    """Every version stamp of the data formats this build speaks."""
    return {
        "package": __version__,
        "api": SERVICE_API_VERSION,
        "trace_schema": TRACE_SCHEMA_VERSION,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "checkpoint_schema": CHECKPOINT_SCHEMA_VERSION,
        "netlist_format": NETLIST_FORMAT_VERSION,
        "events_schema": EVENT_SCHEMA_VERSION,
        "diff_format": DIFF_FORMAT_VERSION,
    }


def _methods():
    # Deferred: repro.harness.tables imports the runner at module scope.
    from repro.harness.tables import PARTITION_METHODS

    return PARTITION_METHODS


def validate_request(data):
    """Normalize a request body into its canonical dict, or raise 400."""
    if not isinstance(data, dict):
        raise BadRequestError(f"request body must be a JSON object, got {type(data).__name__}")
    unknown = sorted(set(data) - set(REQUEST_FIELDS))
    if unknown:
        raise BadRequestError(
            f"unknown request field(s) {', '.join(unknown)}; "
            f"recognized: {', '.join(REQUEST_FIELDS)}"
        )

    kind = data.get("kind", "partition")
    if kind not in JOB_KINDS:
        raise BadRequestError(f"kind must be one of {JOB_KINDS}, got {kind!r}")

    circuit = data.get("circuit")
    netlist = data.get("netlist")
    if (circuit is None) == (netlist is None):
        raise BadRequestError("exactly one of 'circuit' and 'netlist' is required")
    if circuit is not None:
        if circuit not in SUITE_NAMES:
            raise BadRequestError(
                f"unknown circuit {circuit!r}; available: {', '.join(SUITE_NAMES)}"
            )
    else:
        if not isinstance(netlist, dict) or netlist.get("kind") != "netlist":
            raise BadRequestError("'netlist' must be a serialized netlist object")
        try:
            # Full structural validation (duplicate gate names, edges or
            # ports referencing unknown gates) up front, so a malformed
            # netlist is a clear 400 instead of a worker-side crash.
            validate_netlist_dict(netlist)
        except NetlistError as error:
            raise BadRequestError(str(error)) from None

    method = data.get("method", "gradient")
    if method not in _methods():
        raise BadRequestError(
            f"unknown method {method!r}; available: {sorted(_methods())}"
        )

    engine = data.get("engine", "batched")
    if engine not in ENGINES:
        raise BadRequestError(f"engine must be one of {ENGINES}, got {engine!r}")

    seed = data.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise BadRequestError(
            f"seed must be an integer (results are content-addressed), got {seed!r}"
        )

    refine = data.get("refine", False)
    if not isinstance(refine, bool):
        raise BadRequestError(f"refine must be a boolean, got {refine!r}")

    normalized = {
        "kind": kind,
        "method": method,
        "engine": engine,
        "seed": seed,
        "refine": refine,
    }
    if circuit is not None:
        normalized["circuit"] = circuit
    else:
        normalized["netlist"] = netlist

    if kind == "partition":
        num_planes = data.get("num_planes")
        if isinstance(num_planes, bool) or not isinstance(num_planes, int) or num_planes < 1:
            raise BadRequestError(
                f"num_planes must be an integer >= 1, got {num_planes!r}"
            )
        normalized["num_planes"] = num_planes
    elif data.get("num_planes") is not None:
        raise BadRequestError("num_planes does not apply to plan jobs (K is searched)")

    pinned = data.get("pinned")
    if pinned is not None:
        if kind != "partition":
            raise BadRequestError("pinned gates only apply to partition jobs")
        if method != "gradient":
            raise BadRequestError(
                f"pinned gates are only supported by the 'gradient' method, not {method!r}"
            )
        if not isinstance(pinned, dict) or not pinned:
            raise BadRequestError("pinned must be a non-empty object of gate -> plane")
        for gate, plane in pinned.items():
            if isinstance(plane, bool) or not isinstance(plane, int) or plane < 0:
                raise BadRequestError(
                    f"pinned plane for gate {gate!r} must be an integer >= 0, got {plane!r}"
                )
            if plane >= normalized["num_planes"]:
                raise BadRequestError(
                    f"pinned plane {plane} for gate {gate!r} out of range "
                    f"for num_planes={normalized['num_planes']}"
                )
        normalized["pinned"] = {str(gate): int(plane) for gate, plane in pinned.items()}

    if kind == "plan":
        bias_limit = data.get("bias_limit_ma", 100.0)
        if isinstance(bias_limit, bool) or not isinstance(bias_limit, (int, float)) \
                or not bias_limit > 0:
            raise BadRequestError(
                f"bias_limit_ma must be a number > 0, got {bias_limit!r}"
            )
        normalized["bias_limit_ma"] = float(bias_limit)
    elif data.get("bias_limit_ma") is not None:
        raise BadRequestError("bias_limit_ma only applies to plan jobs")

    return normalized


def request_key(normalized):
    """Content address of a validated request.

    sha256 over the canonical request plus every schema version in
    :func:`schema_versions` — any code change that could alter the
    produced bytes bumps a version and thereby invalidates stored
    results.
    """
    blob = json.dumps(
        canonical_jsonable({"request": normalized, "versions": schema_versions()}),
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def pack_signature(normalized):
    """Mega-batch grouping key of a validated request, or ``None``.

    Two queued requests with equal signatures may share one packed
    solve (:mod:`repro.harness.megabatch`): the signature is the
    canonical request with ``seed`` dropped, restricted to the shapes
    the packer accepts — gradient partition jobs on the batched engine
    with ``num_planes >= 2``.  Everything else returns ``None`` and
    runs solo.
    """
    if normalized.get("kind") != "partition":
        return None
    if normalized.get("method") != "gradient":
        return None
    if normalized.get("engine") != "batched":
        return None
    if normalized.get("num_planes", 0) < 2:
        return None
    stripped = {key: value for key, value in normalized.items() if key != "seed"}
    return json.dumps(canonical_jsonable(stripped), sort_keys=True)


def request_to_job(normalized):
    """The :class:`~repro.harness.runner.SuiteJob` of a validated request.

    Field-for-field identical to the job the CLI path builds for the
    same inputs — the bitwise-parity guarantee lives here.
    """
    from repro.harness.runner import SuiteJob

    netlist = normalized.get("netlist")
    return SuiteJob(
        kind=normalized["kind"],
        circuit=normalized["circuit"] if netlist is None else netlist["name"],
        num_planes=normalized.get("num_planes"),
        method=normalized["method"],
        seed=normalized["seed"],
        config=PartitionConfig(engine=normalized["engine"]),
        refine=normalized["refine"],
        bias_limit_ma=normalized.get("bias_limit_ma", 100.0),
        netlist_json=netlist,
        pinned=normalized.get("pinned"),
        prev_labels=tuple(normalized["prev_labels"]) if normalized.get("kind") == "eco" else None,
        eco=normalized.get("eco") if normalized.get("kind") == "eco" else None,
    )


# ----------------------------------------------------------------------
# Incremental (ECO) re-partitioning: PATCH /v1/jobs/<request_key>
# ----------------------------------------------------------------------

#: Fields of a PATCH body; ``diff`` is required, the rest override the
#: ``REPRO_ECO_*`` knobs for this one edit.
ECO_FIELDS = ("diff", "halo", "threshold", "quality_eps")


def validate_eco_body(data):
    """Normalize a ``PATCH /v1/jobs/<key>`` body, or raise 400.

    Returns ``{"diff": <validated netlist diff>, "halo"?, "threshold"?,
    "quality_eps"?}`` with only the explicitly-given knobs present (the
    absent ones resolve from ``REPRO_ECO_*`` at solve time — and stay
    out of the content key, see :func:`eco_request_key`).
    """
    if not isinstance(data, dict):
        raise BadRequestError(
            f"request body must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - set(ECO_FIELDS))
    if unknown:
        raise BadRequestError(
            f"unknown request field(s) {', '.join(unknown)}; "
            f"recognized: {', '.join(ECO_FIELDS)}"
        )
    try:
        diff = validate_diff(data.get("diff"))
    except NetlistError as error:
        raise BadRequestError(str(error)) from None
    normalized = {"diff": diff}
    halo = data.get("halo")
    if halo is not None:
        if isinstance(halo, bool) or not isinstance(halo, int) or halo < 0:
            raise BadRequestError(f"halo must be an integer >= 0, got {halo!r}")
        normalized["halo"] = halo
    threshold = data.get("threshold")
    if threshold is not None:
        if isinstance(threshold, bool) or not isinstance(threshold, (int, float)) \
                or not 0 < threshold <= 1:
            raise BadRequestError(
                f"threshold must be a fraction in (0, 1], got {threshold!r}"
            )
        normalized["threshold"] = float(threshold)
    eps = data.get("quality_eps")
    if eps is not None:
        if isinstance(eps, bool) or not isinstance(eps, (int, float)) or eps < 0:
            raise BadRequestError(
                f"quality_eps must be a number >= 0, got {eps!r}"
            )
        normalized["quality_eps"] = float(eps)
    return normalized


def eco_request_key(base_key, diff_digest, params):
    """Content address of one ECO edit: ``(base, diff, knobs, versions)``.

    Hashing the *base key* (not the base request) chains edits — an edit
    of an edit keys off the warm result it patched — while the knob
    overrides and schema versions keep results from different halo or
    guard settings apart.
    """
    knobs = {
        name: params[name]
        for name in ("halo", "threshold", "quality_eps")
        if name in params
    }
    blob = json.dumps(
        canonical_jsonable({
            "eco": {"base": base_key, "diff": diff_digest, "knobs": knobs},
            "versions": schema_versions(),
        }),
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()
