"""Request schema, validation and content keys of the service API.

A partition request is a JSON object::

    {
      "kind":       "partition" | "plan" | "sweep",  # default "partition"
      "circuit":    "KSA16",                     # suite generator name,
      "netlist":    {...},                       #   OR a serialized netlist
      "num_planes": 4,                           # required for "partition"
      "method":     "gradient",                  # any PARTITION_METHODS key
      "engine":     "batched",                   # gradient engines only
      "seed":       0,                           # integer, default 0
      "refine":     false,
      "pinned":     {"gate name": plane, ...},   # gradient method only
      "bias_limit_ma": 100.0,                    # "plan" jobs only
      "weights":    {"c1": 160.0, ...},          # eq. (8) overrides (not "plan")
      "k_values":   [3, 4, 5],                   # "sweep" jobs: plane-count grid
      "weight_ratios": [0.2, 1.0, 4.0],          # "sweep" jobs: c1 multipliers
      "clock_ghz":  20.0                         # "sweep" jobs: energy-model clock
    }

    exactly one of ``circuit`` / ``netlist`` must be present.

Validation (:func:`validate_request`) normalizes this into a canonical
dict; :func:`request_key` hashes the canonical form together with every
schema version that could change the produced bytes, which makes the
key safe to use as a result-store address; :func:`request_to_job`
builds the *same* :class:`~repro.harness.runner.SuiteJob` the CLI
builds, which is what makes a served result bitwise-identical to a
local ``repro-gpp partition`` run.

``seed`` must be an integer and defaults to 0 (no "give me whatever"
mode): the result store deduplicates by content key, so every knob that
influences the answer must be pinned by the request.
"""

import hashlib
import json
import math

from repro import __version__
from repro.cache.store import CACHE_SCHEMA_VERSION, canonical_jsonable
from repro.circuits.suite import SUITE_NAMES
from repro.core.config import ENGINES, PartitionConfig
from repro.harness.checkpoint import CHECKPOINT_SCHEMA_VERSION
from repro.netlist.diff import DIFF_FORMAT_VERSION, validate_diff
from repro.netlist.serialize import NETLIST_FORMAT_VERSION, validate_netlist_dict
from repro.obs import EVENT_SCHEMA_VERSION, TRACE_SCHEMA_VERSION
from repro.service.errors import BadRequestError
from repro.utils.errors import NetlistError

#: Version of the request/response JSON shapes described above.
SERVICE_API_VERSION = 1

#: Request fields the validator recognizes; anything else is rejected
#: (typos like "numplanes" must not silently fall back to a default and
#: then dedup against the wrong result).
REQUEST_FIELDS = (
    "kind", "circuit", "netlist", "num_planes", "method", "engine",
    "seed", "refine", "pinned", "bias_limit_ma", "weights",
    "k_values", "weight_ratios", "clock_ghz",
)

JOB_KINDS = ("partition", "plan", "sweep")

_DEFAULT_CONFIG = PartitionConfig()

#: The paper's eq. (8) default weight tuple.  A request's ``weights``
#: field is dropped at normalization when it matches these, so the
#: weighted and unweighted spellings of the same request share one
#: content key (and therefore one stored result).
DEFAULT_WEIGHTS = {
    "c1": _DEFAULT_CONFIG.c1,
    "c2": _DEFAULT_CONFIG.c2,
    "c3": _DEFAULT_CONFIG.c3,
    "c4": _DEFAULT_CONFIG.c4,
}


def schema_versions():
    """Every version stamp of the data formats this build speaks."""
    return {
        "package": __version__,
        "api": SERVICE_API_VERSION,
        "trace_schema": TRACE_SCHEMA_VERSION,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "checkpoint_schema": CHECKPOINT_SCHEMA_VERSION,
        "netlist_format": NETLIST_FORMAT_VERSION,
        "events_schema": EVENT_SCHEMA_VERSION,
        "diff_format": DIFF_FORMAT_VERSION,
    }


def _methods():
    # Deferred: repro.harness.tables imports the runner at module scope.
    from repro.harness.tables import PARTITION_METHODS

    return PARTITION_METHODS


def validate_request(data):
    """Normalize a request body into its canonical dict, or raise 400."""
    if not isinstance(data, dict):
        raise BadRequestError(f"request body must be a JSON object, got {type(data).__name__}")
    unknown = sorted(set(data) - set(REQUEST_FIELDS))
    if unknown:
        raise BadRequestError(
            f"unknown request field(s) {', '.join(unknown)}; "
            f"recognized: {', '.join(REQUEST_FIELDS)}"
        )

    kind = data.get("kind", "partition")
    if kind not in JOB_KINDS:
        raise BadRequestError(f"kind must be one of {JOB_KINDS}, got {kind!r}")

    circuit = data.get("circuit")
    netlist = data.get("netlist")
    if (circuit is None) == (netlist is None):
        raise BadRequestError("exactly one of 'circuit' and 'netlist' is required")
    if circuit is not None:
        if circuit not in SUITE_NAMES:
            raise BadRequestError(
                f"unknown circuit {circuit!r}; available: {', '.join(SUITE_NAMES)}"
            )
    else:
        if not isinstance(netlist, dict) or netlist.get("kind") != "netlist":
            raise BadRequestError("'netlist' must be a serialized netlist object")
        try:
            # Full structural validation (duplicate gate names, edges or
            # ports referencing unknown gates) up front, so a malformed
            # netlist is a clear 400 instead of a worker-side crash.
            validate_netlist_dict(netlist)
        except NetlistError as error:
            raise BadRequestError(str(error)) from None

    method = data.get("method", "gradient")
    if method not in _methods():
        raise BadRequestError(
            f"unknown method {method!r}; available: {sorted(_methods())}"
        )

    engine = data.get("engine", "batched")
    if engine not in ENGINES:
        raise BadRequestError(f"engine must be one of {ENGINES}, got {engine!r}")

    seed = data.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise BadRequestError(
            f"seed must be an integer (results are content-addressed), got {seed!r}"
        )

    refine = data.get("refine", False)
    if not isinstance(refine, bool):
        raise BadRequestError(f"refine must be a boolean, got {refine!r}")

    normalized = {
        "kind": kind,
        "method": method,
        "engine": engine,
        "seed": seed,
        "refine": refine,
    }
    if circuit is not None:
        normalized["circuit"] = circuit
    else:
        normalized["netlist"] = netlist

    weights = data.get("weights")
    if weights is not None:
        if kind == "plan":
            raise BadRequestError("weights only apply to partition and sweep jobs")
        if not isinstance(weights, dict) or not weights:
            raise BadRequestError("weights must be a non-empty object of c1..c4 -> number")
        unknown_weights = sorted(set(weights) - set(DEFAULT_WEIGHTS))
        if unknown_weights:
            raise BadRequestError(
                f"unknown weight(s) {', '.join(unknown_weights)}; "
                f"recognized: {', '.join(sorted(DEFAULT_WEIGHTS))}"
            )
        full = dict(DEFAULT_WEIGHTS)
        for name in sorted(weights):
            value = weights[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)) \
                    or not (value >= 0 and math.isfinite(value)):
                raise BadRequestError(
                    f"weight {name} must be a finite number >= 0, got {value!r}"
                )
            full[name] = float(value)
        if full != DEFAULT_WEIGHTS:
            normalized["weights"] = full

    if kind == "partition":
        num_planes = data.get("num_planes")
        if isinstance(num_planes, bool) or not isinstance(num_planes, int) or num_planes < 1:
            raise BadRequestError(
                f"num_planes must be an integer >= 1, got {num_planes!r}"
            )
        normalized["num_planes"] = num_planes
    elif data.get("num_planes") is not None:
        if kind == "sweep":
            raise BadRequestError(
                "num_planes does not apply to sweep jobs (the K grid comes from k_values)"
            )
        raise BadRequestError("num_planes does not apply to plan jobs (K is searched)")

    if kind == "sweep":
        # Deferred: repro.harness.pareto pulls in the solver stack.
        from repro.harness.pareto import (
            DEFAULT_RATIOS, resolve_sweep_clock, resolve_sweep_max_points,
        )

        if method != "gradient":
            raise BadRequestError(
                "sweep jobs require the 'gradient' method (the c1..c4 weights "
                f"only parameterize its cost), got {method!r}"
            )
        k_values = data.get("k_values")
        if not isinstance(k_values, (list, tuple)) or not k_values:
            raise BadRequestError("k_values must be a non-empty array of integers >= 1")
        for k in k_values:
            if isinstance(k, bool) or not isinstance(k, int) or k < 1:
                raise BadRequestError(
                    f"k_values entries must be integers >= 1, got {k!r}"
                )
        normalized["k_values"] = sorted({int(k) for k in k_values})

        ratios = data.get("weight_ratios")
        if ratios is None:
            ratios = list(DEFAULT_RATIOS)
        if not isinstance(ratios, (list, tuple)) or not ratios:
            raise BadRequestError("weight_ratios must be a non-empty array of numbers > 0")
        cleaned = set()
        for ratio in ratios:
            if isinstance(ratio, bool) or not isinstance(ratio, (int, float)) \
                    or not (ratio > 0 and math.isfinite(ratio)):
                raise BadRequestError(
                    f"weight_ratios entries must be finite numbers > 0, got {ratio!r}"
                )
            cleaned.add(float(ratio))
        normalized["weight_ratios"] = sorted(cleaned)

        clock = data.get("clock_ghz")
        if clock is not None and (
            isinstance(clock, bool) or not isinstance(clock, (int, float))
            or not (clock > 0 and math.isfinite(clock))
        ):
            raise BadRequestError(f"clock_ghz must be a number > 0, got {clock!r}")
        # Resolved at validation time so the content key pins the clock
        # the energy numbers were computed at.
        normalized["clock_ghz"] = resolve_sweep_clock(clock)

        max_points = resolve_sweep_max_points()
        total = len(normalized["k_values"]) * len(normalized["weight_ratios"])
        if total > max_points:
            raise BadRequestError(
                f"sweep grid of {total} points exceeds REPRO_SWEEP_MAX_POINTS={max_points}"
            )
    else:
        for field in ("k_values", "weight_ratios", "clock_ghz"):
            if data.get(field) is not None:
                raise BadRequestError(f"{field} only applies to sweep jobs")

    pinned = data.get("pinned")
    if pinned is not None:
        if kind != "partition":
            raise BadRequestError("pinned gates only apply to partition jobs")
        if method != "gradient":
            raise BadRequestError(
                f"pinned gates are only supported by the 'gradient' method, not {method!r}"
            )
        if not isinstance(pinned, dict) or not pinned:
            raise BadRequestError("pinned must be a non-empty object of gate -> plane")
        for gate, plane in pinned.items():
            if isinstance(plane, bool) or not isinstance(plane, int) or plane < 0:
                raise BadRequestError(
                    f"pinned plane for gate {gate!r} must be an integer >= 0, got {plane!r}"
                )
            if plane >= normalized["num_planes"]:
                raise BadRequestError(
                    f"pinned plane {plane} for gate {gate!r} out of range "
                    f"for num_planes={normalized['num_planes']}"
                )
        normalized["pinned"] = {str(gate): int(plane) for gate, plane in pinned.items()}

    if kind == "plan":
        bias_limit = data.get("bias_limit_ma", 100.0)
        if isinstance(bias_limit, bool) or not isinstance(bias_limit, (int, float)) \
                or not bias_limit > 0:
            raise BadRequestError(
                f"bias_limit_ma must be a number > 0, got {bias_limit!r}"
            )
        normalized["bias_limit_ma"] = float(bias_limit)
    elif data.get("bias_limit_ma") is not None:
        raise BadRequestError("bias_limit_ma only applies to plan jobs")

    return normalized


def request_key(normalized):
    """Content address of a validated request.

    sha256 over the canonical request plus every schema version in
    :func:`schema_versions` — any code change that could alter the
    produced bytes bumps a version and thereby invalidates stored
    results.
    """
    blob = json.dumps(
        canonical_jsonable({"request": normalized, "versions": schema_versions()}),
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def pack_signature(normalized):
    """Mega-batch grouping key of a validated request, or ``None``.

    Two queued requests with equal signatures may share one packed
    solve (:mod:`repro.harness.megabatch`): the signature is the
    canonical request with ``seed`` dropped, restricted to the shapes
    the packer accepts — gradient partition jobs on the batched engine
    with ``num_planes >= 2``.  Everything else returns ``None`` and
    runs solo.
    """
    if normalized.get("kind") != "partition":
        return None
    if normalized.get("method") != "gradient":
        return None
    if normalized.get("engine") != "batched":
        return None
    if normalized.get("num_planes", 0) < 2:
        return None
    stripped = {key: value for key, value in normalized.items() if key != "seed"}
    return json.dumps(canonical_jsonable(stripped), sort_keys=True)


def request_to_job(normalized):
    """The :class:`~repro.harness.runner.SuiteJob` of a validated request.

    Field-for-field identical to the job the CLI path builds for the
    same inputs — the bitwise-parity guarantee lives here.
    """
    from repro.harness.runner import SuiteJob

    netlist = normalized.get("netlist")
    return SuiteJob(
        kind=normalized["kind"],
        circuit=normalized["circuit"] if netlist is None else netlist["name"],
        num_planes=normalized.get("num_planes"),
        method=normalized["method"],
        seed=normalized["seed"],
        config=PartitionConfig(engine=normalized["engine"], **normalized.get("weights", {})),
        refine=normalized["refine"],
        bias_limit_ma=normalized.get("bias_limit_ma", 100.0),
        netlist_json=netlist,
        pinned=normalized.get("pinned"),
        prev_labels=tuple(normalized["prev_labels"]) if normalized.get("kind") == "eco" else None,
        eco=normalized.get("eco") if normalized.get("kind") == "eco" else None,
    )


# ----------------------------------------------------------------------
# Pareto sweeps: POST /v1/sweeps (or kind="sweep" on /v1/jobs)
# ----------------------------------------------------------------------


def resolve_weights(normalized):
    """Full ``c1..c4`` mapping of a validated request, defaults filled in."""
    full = dict(DEFAULT_WEIGHTS)
    full.update(normalized.get("weights", {}))
    return full


def sweep_point_request(normalized, num_planes, ratio):
    """The canonical solo partition request of one sweep grid point.

    ``ratio`` scales ``c1`` over the sweep's base weights.  When the
    scaled tuple lands back on the defaults (ratio 1.0 with a default
    base), the weights field is dropped again, so the grid point keys
    to the exact same stored result as a plain partition request —
    sweeps and solo jobs dedupe against each other in both directions.
    """
    weights = resolve_weights(normalized)
    weights["c1"] = weights["c1"] * float(ratio)
    point = {
        "kind": "partition",
        "method": normalized["method"],
        "engine": normalized["engine"],
        "seed": normalized["seed"],
        "refine": normalized["refine"],
        "num_planes": int(num_planes),
    }
    if "circuit" in normalized:
        point["circuit"] = normalized["circuit"]
    else:
        point["netlist"] = normalized["netlist"]
    if weights != DEFAULT_WEIGHTS:
        point["weights"] = weights
    return point


# ----------------------------------------------------------------------
# Incremental (ECO) re-partitioning: PATCH /v1/jobs/<request_key>
# ----------------------------------------------------------------------

#: Fields of a PATCH body; ``diff`` is required, the rest override the
#: ``REPRO_ECO_*`` knobs for this one edit.
ECO_FIELDS = ("diff", "halo", "threshold", "quality_eps")


def validate_eco_body(data):
    """Normalize a ``PATCH /v1/jobs/<key>`` body, or raise 400.

    Returns ``{"diff": <validated netlist diff>, "halo"?, "threshold"?,
    "quality_eps"?}`` with only the explicitly-given knobs present (the
    absent ones resolve from ``REPRO_ECO_*`` at solve time — and stay
    out of the content key, see :func:`eco_request_key`).
    """
    if not isinstance(data, dict):
        raise BadRequestError(
            f"request body must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - set(ECO_FIELDS))
    if unknown:
        raise BadRequestError(
            f"unknown request field(s) {', '.join(unknown)}; "
            f"recognized: {', '.join(ECO_FIELDS)}"
        )
    try:
        diff = validate_diff(data.get("diff"))
    except NetlistError as error:
        raise BadRequestError(str(error)) from None
    normalized = {"diff": diff}
    halo = data.get("halo")
    if halo is not None:
        if isinstance(halo, bool) or not isinstance(halo, int) or halo < 0:
            raise BadRequestError(f"halo must be an integer >= 0, got {halo!r}")
        normalized["halo"] = halo
    threshold = data.get("threshold")
    if threshold is not None:
        if isinstance(threshold, bool) or not isinstance(threshold, (int, float)) \
                or not 0 < threshold <= 1:
            raise BadRequestError(
                f"threshold must be a fraction in (0, 1], got {threshold!r}"
            )
        normalized["threshold"] = float(threshold)
    eps = data.get("quality_eps")
    if eps is not None:
        if isinstance(eps, bool) or not isinstance(eps, (int, float)) or eps < 0:
            raise BadRequestError(
                f"quality_eps must be a number >= 0, got {eps!r}"
            )
        normalized["quality_eps"] = float(eps)
    return normalized


def eco_request_key(base_key, diff_digest, params):
    """Content address of one ECO edit: ``(base, diff, knobs, versions)``.

    Hashing the *base key* (not the base request) chains edits — an edit
    of an edit keys off the warm result it patched — while the knob
    overrides and schema versions keep results from different halo or
    guard settings apart.
    """
    knobs = {
        name: params[name]
        for name in ("halo", "threshold", "quality_eps")
        if name in params
    }
    blob = json.dumps(
        canonical_jsonable({
            "eco": {"base": base_key, "diff": diff_digest, "knobs": knobs},
            "versions": schema_versions(),
        }),
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()
