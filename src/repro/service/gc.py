"""Garbage collection of the service result store (``cache gc``).

ECO re-partitioning (PR ``PATCH /v1/jobs/<key>``) grows *chains* in the
result store: an edited netlist's result records the ``base_key`` of
the stored result it warm-started from, and further edits chain on.  A
long-lived store therefore accumulates superseded intermediate results
that nothing will ask for again — but an entry must never be dropped
while a *live* result still links to it, because the ECO route reads
the base entry (payload + request meta) to build the next edit.

The liveness rule:

* an entry is **live** when its file mtime is within ``--max-age``
  seconds, and/or when it is one of the ``--keep-latest`` newest
  entries of its chain (chains are rooted at the entry a ``base_key``
  walk terminates on; a plain result is its own one-entry chain);
* every transitive ``base_key`` ancestor of a live entry is preserved
  with it — reachability, not age, protects warm-start sources;
* everything else (including entries whose JSON no longer parses) is
  dropped.

At least one criterion is required: with neither flag every entry would
be garbage, and an empty store is never what an operator meant.
"""

import time

from repro.utils.errors import ReproError


def _base_key(record):
    """The ``base_key`` an entry's stored request links to, or ``None``."""
    request = (record.get("meta") or {}).get("request")
    if isinstance(request, dict):
        base = request.get("base_key")
        if isinstance(base, str) and base:
            return base
    return None


def plan_gc(store, max_age=None, keep_latest=None, now=None):
    """Decide what :func:`run_gc` would keep and drop (no deletion).

    Returns a dict with ``records`` (everything scanned), ``keep`` (the
    preserved key set) and ``drop`` (records to delete, stable order).
    """
    if max_age is None and keep_latest is None:
        raise ReproError(
            "cache gc needs at least one liveness criterion: "
            "--max-age seconds and/or --keep-latest N"
        )
    if max_age is not None and not float(max_age) >= 0:
        raise ReproError(f"--max-age must be >= 0 seconds, got {max_age}")
    if keep_latest is not None and not int(keep_latest) >= 1:
        raise ReproError(f"--keep-latest must be >= 1, got {keep_latest}")
    now = time.time() if now is None else now

    records = sorted(store.entries(), key=lambda r: r["key"])
    by_key = {record["key"]: record for record in records}
    parent = {}
    for record in records:
        base = _base_key(record)
        if base is not None:
            parent[record["key"]] = base

    def root_of(key):
        seen = set()
        while key in parent and key not in seen:
            seen.add(key)
            key = parent[key]
        return key

    live = set()
    if max_age is not None:
        cutoff = now - float(max_age)
        live.update(r["key"] for r in records if r["mtime"] >= cutoff)
    if keep_latest is not None:
        chains = {}
        for record in records:
            chains.setdefault(root_of(record["key"]), []).append(record)
        for members in chains.values():
            members.sort(key=lambda r: (r["mtime"], r["key"]), reverse=True)
            live.update(r["key"] for r in members[: int(keep_latest)])

    keep = set()
    for key in live:
        while key is not None and key not in keep:
            keep.add(key)
            key = parent.get(key)
            if key is not None and key not in by_key:
                break  # dangling link: the ancestor is already gone
    drop = [record for record in records if record["key"] not in keep]
    return {"records": records, "keep": keep, "drop": drop}


def run_gc(store, max_age=None, keep_latest=None, now=None, dry_run=False):
    """Apply :func:`plan_gc`; returns a summary dict.

    The summary carries ``scanned``/``kept``/``removed`` entry counts,
    ``freed_bytes`` and the ``dry_run`` flag (with ``dry_run`` nothing
    is deleted — ``removed`` counts what *would* go).
    """
    plan = plan_gc(store, max_age=max_age, keep_latest=keep_latest, now=now)
    removed = 0
    freed = 0
    for record in plan["drop"]:
        if not dry_run and not store.remove(record["key"]):
            continue  # raced with a concurrent delete
        removed += 1
        freed += record.get("bytes", 0)
    return {
        "scanned": len(plan["records"]),
        "kept": len(plan["keep"]),
        "removed": removed,
        "freed_bytes": freed,
        "dry_run": bool(dry_run),
    }
