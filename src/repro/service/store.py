"""Content-keyed result store of the partitioning service.

A thin layer over :class:`repro.cache.ArtifactCache` (namespace
``service``): entries are keyed by :func:`repro.service.api.request_key`
— which covers the full canonical request plus every schema version —
and hold the JSON-able job payload
(:func:`repro.harness.checkpoint.payload_to_jsonable` form).  Because
requests pin their seed, a stored payload is *the* answer for its key,
so serving it is indistinguishable from re-solving.

Disabled along with the whole artifact cache (``REPRO_CACHE=0``) or on
its own (``REPRO_SERVICE_STORE=0``); disabled means every request
re-solves.
"""

import threading

from repro import envcfg
from repro.cache import ArtifactCache
from repro.harness.checkpoint import payload_to_jsonable

#: Artifact kind of stored service results.
RESULT_KIND = "service-result"


def store_enabled(environ=None):
    """Whether the result store is on (``REPRO_SERVICE_STORE`` + cache)."""
    from repro.cache.store import cache_enabled

    return cache_enabled(environ) and not envcfg.flag_disabled(
        "REPRO_SERVICE_STORE", environ
    )


class ResultStore:
    """Get/put JSON-able job payloads under request content keys.

    Thread-safe: the underlying cache does atomic per-entry writes, and
    the stats counters are guarded by a lock (many server threads write
    concurrently).
    """

    def __init__(self, root=None, enabled=None):
        self._cache = ArtifactCache(root=root, namespace="service")
        self._forced_enabled = enabled
        self._lock = threading.Lock()
        self.stats = {"hits": 0, "misses": 0, "writes": 0}

    @property
    def enabled(self):
        if self._forced_enabled is not None:
            return self._forced_enabled
        return store_enabled()

    @property
    def path(self):
        return self._cache.path

    def _count(self, event):
        with self._lock:
            self.stats[event] += 1

    def get(self, key):
        """The stored JSON-able payload for ``key``, or ``None``."""
        if not self.enabled:
            return None
        entry = self._cache.get(key, RESULT_KIND)
        if entry is None:
            self._count("misses")
            return None
        payload, _arrays = entry
        self._count("hits")
        return payload

    def get_with_meta(self, key):
        """``(payload, meta)`` for ``key``, or ``None``.

        Same hit/miss accounting as :meth:`get`; ``meta`` is the dict
        stored at :meth:`put` time (the job server stores the canonical
        request there, which is how a ``PATCH`` edit recovers the base
        request a stored result answered).
        """
        if not self.enabled:
            return None
        entry = self._cache.get_entry(key, RESULT_KIND)
        if entry is None:
            self._count("misses")
            return None
        payload, _arrays, meta = entry
        self._count("hits")
        return payload, meta

    def put(self, key, payload, meta=None):
        """Store an ``execute_job`` payload (converted to plain JSON)."""
        if not self.enabled:
            return None
        jsonable = payload_to_jsonable(payload)
        path = self._cache.put(key, RESULT_KIND, jsonable, meta=meta or {})
        if path is not None:
            self._count("writes")
        return path

    def entries(self):
        """Entry records of the store's namespace (see
        :meth:`repro.cache.ArtifactCache.entries`); enabled or not —
        garbage collection of a disabled store is still meaningful."""
        return self._cache.entries()

    def remove(self, key):
        """Delete one stored result; ``True`` when something existed."""
        return self._cache.remove(key)

    def snapshot_stats(self):
        with self._lock:
            return dict(self.stats)
