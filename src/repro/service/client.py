"""Stdlib HTTP client for the partitioning service.

:class:`ServiceClient` speaks the JSON API of
:mod:`repro.service.server` using only ``urllib`` — scripts, tests and
the benchmark load generator all share it.  The high-level
:meth:`ServiceClient.partition` submits, waits (honoring 429
``Retry-After`` backpressure with capped retries *and* a capped total
wait) and returns the decoded payload dict with numpy labels restored —
the same shape :func:`repro.harness.runner.execute_job` returns
locally.

Tracing: every request carries an ``X-Repro-Trace`` header when a
:class:`~repro.obs.context.TraceContext` is available — either passed
explicitly to :meth:`submit` / :meth:`partition` or inherited from the
process tracer (``OBS.trace.context``, set by the CLI under
``--trace``) — so server-side spans parent under the caller's trace.
"""

import json
import time
import urllib.error
import urllib.request

from repro.harness.checkpoint import payload_from_jsonable
from repro.obs import OBS, TRACE_HEADER
from repro.service.errors import QueueFullError, ServiceError
from repro.utils.errors import ReproError

#: Upper bound on one backpressure sleep, whatever Retry-After says.
MAX_RETRY_AFTER_S = 5.0


def _retry_after_seconds(value, default=1.0):
    """Parse a Retry-After value defensively.

    Servers outside this repo send integers, floats, HTTP dates or
    garbage; a client must never crash on any of them.  Non-numeric or
    non-positive values fall back to ``default``.
    """
    if value is None:
        return float(default)
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        return float(default)
    if not parsed > 0:
        return float(default)
    return parsed


class ServiceHTTPError(ServiceError):
    """A non-2xx response, carrying the decoded error body."""

    def __init__(self, status, body):
        self.status = status
        self.body = body if isinstance(body, dict) else {}
        message = self.body.get("message") or str(body)
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to one server at ``base_url`` (e.g. ``http://127.0.0.1:8731``)."""

    def __init__(self, base_url, timeout=30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: 429 responses this client has slept out (mirrored into the
        #: ``service.client.backpressure_waits`` counter when OBS
        #: capture is on).
        self.backpressure_waits = 0

    # -- transport -----------------------------------------------------
    def _trace_header(self, ctx=None):
        """The ``X-Repro-Trace`` value to send, or ``None``."""
        if ctx is None:
            ctx = OBS.trace.context
        if ctx is None:
            return None
        return ctx.to_header()

    def _request(self, method, path, body=None, ctx=None):
        data = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        trace = self._trace_header(ctx)
        if trace is not None:
            headers[TRACE_HEADER] = trace
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method, headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as error:
            try:
                decoded = json.loads(error.read() or b"{}")
            except ValueError:
                decoded = {}
            if error.code == 429:
                retry_after = _retry_after_seconds(
                    decoded.get("retry_after"),
                    default=_retry_after_seconds(
                        error.headers.get("Retry-After"), default=1.0
                    ),
                )
                raise QueueFullError(
                    decoded.get("message", "queue full"),
                    retry_after=retry_after,
                ) from None
            raise ServiceHTTPError(error.code, decoded) from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    def _request_text(self, path, accept):
        """GET a non-JSON route; returns the raw text body."""
        request = urllib.request.Request(
            f"{self.base_url}{path}", headers={"Accept": accept}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode()
        except urllib.error.HTTPError as error:
            raise ServiceHTTPError(error.code, {}) from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    # -- raw API -------------------------------------------------------
    def submit(self, request_body, ctx=None):
        """POST the request; returns the job status dict (raises on 4xx/5xx)."""
        _status, payload = self._request("POST", "/v1/jobs", request_body, ctx=ctx)
        return payload

    def eco_submit(self, request_key, body, ctx=None):
        """PATCH an edit (netlist diff) against a stored result.

        ``body`` is ``{"diff": <netlist diff>, "halo"?, "threshold"?,
        "quality_eps"?}``; returns the job status dict (raises on
        4xx/5xx — notably 404 when no result is stored under
        ``request_key``).
        """
        _status, payload = self._request(
            "PATCH", f"/v1/jobs/{request_key}", body, ctx=ctx
        )
        return payload

    def eco(self, request_key, body, timeout=300.0, ctx=None):
        """PATCH + wait + fetch; returns the decoded payload dict.

        The eco payload carries ``labels`` (numpy) plus an ``eco`` info
        dict (``mode`` warm|cold, region size, costs) from
        :func:`repro.core.incremental.incremental_partition`.
        """
        job = self.eco_submit(request_key, body, ctx=ctx)
        if job["state"] != "done":
            self.wait(job["id"], timeout=timeout)
        result = self.result(job["id"])
        return payload_from_jsonable(result["result"])

    def sweep_submit(self, request_body, ctx=None):
        """POST a Pareto sweep request to ``/v1/sweeps``.

        ``kind`` defaults to ``"sweep"`` server-side; returns the job
        status dict (raises on 4xx/5xx).
        """
        _status, payload = self._request("POST", "/v1/sweeps", request_body, ctx=ctx)
        return payload

    def sweep(self, request_body, timeout=600.0, ctx=None):
        """Submit a sweep + wait + fetch; returns the sweep payload dict.

        The payload is plain JSON (``points`` with metrics/energy and
        the ``frontier`` index list — see docs/planning.md); unlike
        :meth:`partition` there are no numpy labels to restore.
        """
        job = self.sweep_submit(request_body, ctx=ctx)
        if job["state"] != "done":
            self.wait(job["id"], timeout=timeout)
        return self.result(job["id"])["result"]

    def status(self, job_id):
        return self._request("GET", f"/v1/jobs/{job_id}")[1]

    def result(self, job_id):
        return self._request("GET", f"/v1/jobs/{job_id}/result")[1]

    def cancel(self, job_id):
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")[1]

    def jobs(self):
        return self._request("GET", "/v1/jobs")[1]["jobs"]

    def job_events(self, job_id):
        """The job's lifecycle event records (see ``repro.obs.events``)."""
        return self._request("GET", f"/v1/jobs/{job_id}/events")[1]

    def health(self):
        return self._request("GET", "/healthz")[1]

    def metrics(self):
        return self._request("GET", "/metrics")[1]

    def metrics_text(self):
        """``GET /metrics`` in Prometheus text exposition format."""
        return self._request_text("/metrics?format=prometheus", "text/plain")

    def trace_text(self):
        """``GET /v1/trace`` — the server's JSONL trace document."""
        return self._request_text("/v1/trace", "application/x-ndjson")

    # -- high level ----------------------------------------------------
    def submit_with_backpressure(self, request_body, max_attempts=20,
                                 max_wait=60.0, ctx=None):
        """Submit, sleeping out 429 responses.

        Gives up (re-raising the last :class:`QueueFullError`) after
        ``max_attempts`` rejections *or* once the cumulative sleep would
        exceed ``max_wait`` seconds — an abusive or misconfigured
        Retry-After can therefore never park a caller indefinitely.
        """
        waited = 0.0
        for attempt in range(max_attempts):
            try:
                return self.submit(request_body, ctx=ctx)
            except QueueFullError as error:
                delay = min(
                    _retry_after_seconds(error.retry_after), MAX_RETRY_AFTER_S
                )
                if attempt == max_attempts - 1 or waited + delay > max_wait:
                    raise
                self.backpressure_waits += 1
                if OBS.enabled:
                    OBS.metrics.counter("service.client.backpressure_waits").inc()
                time.sleep(delay)
                waited += delay
        raise AssertionError("unreachable")

    def wait(self, job_id, timeout=300.0, poll_interval=0.05):
        """Poll until the job finishes; returns its final status dict."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"job {job_id} still {status['state']} after {timeout} s"
                )
            time.sleep(poll_interval)

    def partition(self, request_body, timeout=300.0, max_attempts=20, ctx=None):
        """Submit + wait + fetch; returns the decoded payload dict.

        The returned dict has live numpy ``labels`` — the same shape a
        local :func:`repro.harness.runner.execute_job` call returns, so
        callers can diff the two bitwise.
        """
        job = self.submit_with_backpressure(
            request_body, max_attempts=max_attempts, ctx=ctx
        )
        if job["state"] != "done":
            self.wait(job["id"], timeout=timeout)
        result = self.result(job["id"])
        return payload_from_jsonable(result["result"])
