"""Stdlib HTTP client for the partitioning service.

:class:`ServiceClient` speaks the JSON API of
:mod:`repro.service.server` using only ``urllib`` — scripts, tests and
the benchmark load generator all share it.  The high-level
:meth:`ServiceClient.partition` submits, waits (honoring 429
``Retry-After`` backpressure with capped retries) and returns the
decoded payload dict with numpy labels restored — the same shape
:func:`repro.harness.runner.execute_job` returns locally.
"""

import json
import time
import urllib.error
import urllib.request

from repro.harness.checkpoint import payload_from_jsonable
from repro.service.errors import QueueFullError, ServiceError
from repro.utils.errors import ReproError


class ServiceHTTPError(ServiceError):
    """A non-2xx response, carrying the decoded error body."""

    def __init__(self, status, body):
        self.status = status
        self.body = body if isinstance(body, dict) else {}
        message = self.body.get("message") or str(body)
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to one server at ``base_url`` (e.g. ``http://127.0.0.1:8731``)."""

    def __init__(self, base_url, timeout=30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as error:
            try:
                decoded = json.loads(error.read() or b"{}")
            except ValueError:
                decoded = {}
            if error.code == 429:
                retry_after = decoded.get("retry_after") \
                    or error.headers.get("Retry-After") or 1
                raise QueueFullError(
                    decoded.get("message", "queue full"),
                    retry_after=float(retry_after),
                ) from None
            raise ServiceHTTPError(error.code, decoded) from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    # -- raw API -------------------------------------------------------
    def submit(self, request_body):
        """POST the request; returns the job status dict (raises on 4xx/5xx)."""
        _status, payload = self._request("POST", "/v1/jobs", request_body)
        return payload

    def status(self, job_id):
        return self._request("GET", f"/v1/jobs/{job_id}")[1]

    def result(self, job_id):
        return self._request("GET", f"/v1/jobs/{job_id}/result")[1]

    def cancel(self, job_id):
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")[1]

    def jobs(self):
        return self._request("GET", "/v1/jobs")[1]["jobs"]

    def health(self):
        return self._request("GET", "/healthz")[1]

    def metrics(self):
        return self._request("GET", "/metrics")[1]

    # -- high level ----------------------------------------------------
    def submit_with_backpressure(self, request_body, max_attempts=20):
        """Submit, sleeping out 429 responses up to ``max_attempts`` times."""
        for attempt in range(max_attempts):
            try:
                return self.submit(request_body)
            except QueueFullError as error:
                if attempt == max_attempts - 1:
                    raise
                time.sleep(min(float(error.retry_after), 5.0))
        raise AssertionError("unreachable")

    def wait(self, job_id, timeout=300.0, poll_interval=0.05):
        """Poll until the job finishes; returns its final status dict."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"job {job_id} still {status['state']} after {timeout} s"
                )
            time.sleep(poll_interval)

    def partition(self, request_body, timeout=300.0, max_attempts=20):
        """Submit + wait + fetch; returns the decoded payload dict.

        The returned dict has live numpy ``labels`` — the same shape a
        local :func:`repro.harness.runner.execute_job` call returns, so
        callers can diff the two bitwise.
        """
        job = self.submit_with_backpressure(request_body, max_attempts=max_attempts)
        if job["state"] != "done":
            self.wait(job["id"], timeout=timeout)
        result = self.result(job["id"])
        return payload_from_jsonable(result["result"])
