"""repro.service — partitioning-as-a-service.

A long-running, dependency-free HTTP server that accepts partition and
plan requests (suite circuits by name or whole serialized netlists),
executes them through the fault-tolerant suite runner on a bounded
worker pool, and serves results from a content-keyed store so repeated
requests never re-solve.  See ``docs/service.md`` for the API and
deployment knobs, and :mod:`repro.service.server` for the route table.

Quick start::

    repro-gpp serve --port 8731

    from repro.service.client import ServiceClient
    client = ServiceClient("http://127.0.0.1:8731")
    payload = client.partition(
        {"circuit": "KSA16", "num_planes": 4, "seed": 2020}
    )
    payload["labels"]          # numpy plane assignment, bitwise equal
                               # to the same repro-gpp partition run
"""

from repro.service.api import (
    SERVICE_API_VERSION,
    request_key,
    request_to_job,
    schema_versions,
    validate_request,
)
from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.errors import (
    BadRequestError,
    ConflictError,
    JobFailedError,
    NotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.service.jobs import JobManager
from repro.service.server import PartitionService, build_server, serve
from repro.service.store import ResultStore

__all__ = [
    "SERVICE_API_VERSION",
    "schema_versions",
    "validate_request",
    "request_key",
    "request_to_job",
    "ServiceClient",
    "ServiceHTTPError",
    "ServiceError",
    "BadRequestError",
    "NotFoundError",
    "ConflictError",
    "QueueFullError",
    "JobFailedError",
    "JobManager",
    "ResultStore",
    "PartitionService",
    "build_server",
    "serve",
]
