"""The partitioning HTTP server (stdlib ``ThreadingHTTPServer``).

Routes (all JSON in, JSON out)::

    POST /v1/jobs              submit a partition/plan request
                               202 queued / deduped, 200 result-store hit,
                               400 invalid, 429 + Retry-After when full
    GET  /v1/jobs              list known jobs (status dicts)
    GET  /v1/jobs/<id>         one job's status
    GET  /v1/jobs/<id>/result  the payload: 200 done, 409 not finished,
                               500 failed (body carries the error)
    POST /v1/jobs/<id>/cancel  best-effort cancel
    GET  /v1/jobs/<id>/events  the job's lifecycle event records
    GET  /healthz              liveness + schema versions + queue state
    GET  /metrics              service counters, result-store stats and
                               per-route span timings (JSON by default;
                               ``?format=prometheus`` or an Accept
                               header preferring text/plain switches to
                               Prometheus text exposition)
    GET  /v1/trace             the server's span/metric state as a
                               JSONL trace file (replayable with
                               repro.obs.export.read_trace_jsonl)

With ``--isolation fleet`` the server doubles as the fleet
coordinator (see :mod:`repro.fleet`)::

    POST /fleet/v1/lease       worker pulls leased jobs (long-poll)
    POST /fleet/v1/heartbeat   worker extends its lease deadlines
    POST /fleet/v1/complete    worker reports a payload or a failure
    GET  /fleet/v1/workers     roster + queue state (also in /healthz)

Observability: the server owns a private
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.tracer.Tracer` — the process singleton ``OBS`` stays
untouched (it is single-threaded by design; see
:mod:`repro.service.jobs` for how solver-side capture is handled).
Request handler threads record each request into a short-lived private
tracer and merge it into the server tracer under a lock.

Trace context: unless ``REPRO_TRACE_CONTEXT`` is off, every request
gets a :class:`~repro.obs.context.TraceContext` — continued from an
``X-Repro-Trace`` header when the client sent one, fresh otherwise —
that is echoed on the response, pinned to the request span and carried
into the job (:meth:`JobManager.submit`), so one POST yields one
connected span tree whose root carries the request id.  Per-route
latency lands in bounded ``service.http.seconds.<route>`` histograms
(ids collapse into the route label, so label cardinality stays fixed).

Determinism: the server never mutates a request — the job built from it
is field-for-field the one the CLI builds (see
:func:`repro.service.api.request_to_job`), so a served assignment is
bitwise-identical to a local run with the same inputs.
"""

import io
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro import __version__, envcfg
from repro.obs import (
    EVENT_SCHEMA_VERSION,
    TRACE_HEADER,
    EventLog,
    MetricsRegistry,
    TraceContext,
    Tracer,
    context_enabled,
    render_exposition,
    write_trace_jsonl,
)
from repro.service.api import (
    eco_request_key,
    request_key,
    schema_versions,
    validate_eco_body,
    validate_request,
)
from repro.service.errors import (
    BadRequestError,
    ConflictError,
    JobFailedError,
    NotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.service.jobs import JobManager
from repro.service.store import ResultStore
from repro.utils.errors import NetlistError

#: Hard cap on accepted request bodies (a serialized netlist of the
#: largest suite circuit is ~1.5 MB; 32 MB leaves ample headroom).
MAX_BODY_BYTES = 32 * 1024 * 1024

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8731
DEFAULT_QUEUE_SIZE = 64
DEFAULT_RETRY_AFTER = 1
DEFAULT_MAX_WORKERS = 4


def resolve_host(host=None, environ=None):
    if host:
        return host
    return envcfg.raw("REPRO_SERVICE_HOST", environ) or DEFAULT_HOST


def resolve_port(port=None, environ=None):
    if port is not None:
        return int(port)
    value = envcfg.number(
        "REPRO_SERVICE_PORT", int, lambda v: v >= 0, "an integer >= 0", environ
    )
    return DEFAULT_PORT if value is None else value


def resolve_workers(workers=None, environ=None):
    import os

    if workers is not None:
        return max(1, int(workers))
    value = envcfg.number(
        "REPRO_SERVICE_WORKERS", int, lambda v: v >= 1, "an integer >= 1", environ
    )
    if value is not None:
        return value
    return min(os.cpu_count() or 1, DEFAULT_MAX_WORKERS)


def resolve_queue_size(queue_size=None, environ=None):
    if queue_size is not None:
        return max(1, int(queue_size))
    value = envcfg.number(
        "REPRO_SERVICE_QUEUE", int, lambda v: v >= 1, "an integer >= 1", environ
    )
    return DEFAULT_QUEUE_SIZE if value is None else value


def resolve_retry_after(retry_after=None, environ=None):
    if retry_after is not None:
        return max(1, int(retry_after))
    value = envcfg.number(
        "REPRO_SERVICE_RETRY_AFTER", float, lambda v: v > 0,
        "a number of seconds > 0", environ,
    )
    return DEFAULT_RETRY_AFTER if value is None else max(1, int(value))


def resolve_isolation(isolation=None, environ=None):
    if isolation is not None:
        return isolation
    return envcfg.choice(
        "REPRO_SERVICE_ISOLATION", ("inline", "process", "fleet"), "inline",
        environ,
    )


def route_label(method, path):
    """Bounded route label of a request (job ids collapse away).

    Histogram/counter labels must come from a fixed set — one label per
    distinct URL would grow the registry without bound — so unknown
    paths all fold into ``"other"``.
    """
    parts = [part for part in path.split("/") if part]
    if method == "GET":
        if path == "/healthz":
            return "healthz"
        if path == "/metrics":
            return "metrics"
        if parts == ["fleet", "v1", "workers"]:
            return "fleet.workers"
        if parts == ["v1", "trace"]:
            return "trace"
        if parts == ["v1", "jobs"]:
            return "jobs.list"
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            return "jobs.status"
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
            if parts[3] == "result":
                return "jobs.result"
            if parts[3] == "events":
                return "jobs.events"
    elif method == "POST":
        if parts == ["v1", "jobs"]:
            return "jobs.submit"
        if parts == ["v1", "sweeps"]:
            return "sweeps.submit"
        if len(parts) == 3 and parts[:2] == ["fleet", "v1"]:
            if parts[2] in ("lease", "heartbeat", "complete"):
                return f"fleet.{parts[2]}"
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "cancel":
            return "jobs.cancel"
    elif method == "PATCH":
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            return "jobs.eco"
    return "other"


class PartitionService:
    """Everything one server instance owns: manager, store, telemetry."""

    def __init__(self, workers=None, queue_size=None, timeout=None,
                 retries=None, backoff=None, isolation=None, store=None,
                 retry_after=None, fault_plan=None, megabatch=None,
                 megabatch_limit=None, events=None, tracing=False,
                 lease_ttl=None, heartbeat=None):
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.tracer.enabled = True
        self._telemetry_lock = threading.Lock()
        self.store = store if store is not None else ResultStore()
        self.events = events if events is not None else EventLog.service_default()
        isolation = resolve_isolation(isolation)
        self.fleet = None
        if isolation == "fleet":
            from repro.fleet.coordinator import FleetCoordinator

            self.fleet = FleetCoordinator(
                lease_ttl=lease_ttl,
                heartbeat=heartbeat,
                retries=retries,
                backoff=backoff,
                metrics=self.metrics,
                events=self.events if self.events.enabled else None,
            )
        self.manager = JobManager(
            workers=resolve_workers(workers),
            queue_size=resolve_queue_size(queue_size),
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            isolation=isolation,
            fleet=self.fleet,
            store=self.store,
            retry_after=resolve_retry_after(retry_after),
            fault_plan=fault_plan,
            metrics=self.metrics,
            megabatch=megabatch,
            megabatch_limit=megabatch_limit,
            events=self.events if self.events.enabled else None,
            tracing=tracing,
            trace_sink=self.absorb,
        )
        self.started_at = time.time()

    def start(self):
        self.manager.start()
        return self

    def stop(self):
        self.manager.stop()
        if self.fleet is not None:
            self.fleet.stop()
        return self

    def record_request(self, tracer, status, route=None, duration_s=None):
        """Merge a request-scoped tracer + count the response status."""
        with self._telemetry_lock:
            self.tracer.merge(tracer)
            self.metrics.counter("service.http.requests").inc()
            self.metrics.counter(f"service.http.status.{status}").inc()
            if route is not None and duration_s is not None:
                self.metrics.histogram(
                    f"service.http.seconds.{route}"
                ).observe(duration_s)

    def absorb(self, tracer=None, snapshot=None):
        """The job manager's trace sink (deep tracing only).

        Folds a job's phase tracer and the solver-side snapshot into
        the server tracer/metrics; solver telemetry records are dropped
        — per-iteration dumps belong to CLI trace files, not a
        long-running server's memory.
        """
        with self._telemetry_lock:
            if tracer is not None:
                self.tracer.merge(tracer)
            if snapshot is not None:
                self.metrics.merge_dict(snapshot.get("metrics", {}))
                self.tracer.merge_dict(
                    snapshot.get("spans", {}),
                    events=snapshot.get("events", ()),
                    events_dropped=snapshot.get("events_dropped", 0),
                )

    # -- route logic (transport-free; the handler is a thin shell) -----
    def submit(self, body, ctx=None):
        normalized = validate_request(body)
        key = request_key(normalized)
        job, outcome = self.manager.submit(key, normalized, ctx=ctx)
        status = 200 if outcome == "cached" else 202
        payload = job.to_dict()
        payload["outcome"] = outcome
        return status, payload

    def sweep_submit(self, body, ctx=None):
        """``POST /v1/sweeps``: a K x weight-ratio Pareto sweep job.

        Thin shell over :meth:`submit` that forces ``kind="sweep"``: the
        sweep flows through the normal :class:`JobManager` machinery
        under its own content key (so a repeated sweep is answered from
        the result store), and its grid points store individually under
        their solo partition keys (see
        :func:`repro.harness.pareto.execute_sweep`).  ``kind="sweep"``
        on plain ``POST /v1/jobs`` works identically; this route exists
        so sweep traffic gets its own counters and latency label.
        """
        with self._telemetry_lock:
            self.metrics.counter("service.sweep.requests").inc()
        if not isinstance(body, dict):
            raise BadRequestError(
                f"request body must be a JSON object, got {type(body).__name__}"
            )
        body = dict(body)
        if body.setdefault("kind", "sweep") != "sweep":
            raise BadRequestError(
                f"POST /v1/sweeps requires kind='sweep', got {body['kind']!r}"
            )
        return self.submit(body, ctx=ctx)

    def eco_submit(self, base_key, body, ctx=None):
        """``PATCH /v1/jobs/<request_key>``: re-partition an edited netlist.

        ``base_key`` addresses a stored result; the body carries a
        netlist diff (:mod:`repro.netlist.diff`) plus optional
        halo/threshold/quality_eps overrides.  The edit flows through
        the normal :class:`JobManager` machinery as a ``kind="eco"``
        job content-keyed on ``(base_key, diff_key, knobs)`` — so a
        repeated identical edit is answered from the result store, and
        an *empty* diff short-circuits to the stored base payload,
        bitwise, counted as a cache hit.
        """
        from repro.netlist.diff import (
            apply_diff,
            diff_key,
            is_empty_diff,
            touched_gate_names,
        )
        from repro.netlist.library import default_library
        from repro.netlist.serialize import library_fingerprint, netlist_to_dict

        with self._telemetry_lock:
            self.metrics.counter("service.eco.requests").inc()
        params = validate_eco_body(body)
        diff = params["diff"]

        if self.store is None or not self.store.enabled:
            raise NotFoundError(
                "the result store is disabled; ECO edits need the stored "
                "base result to warm-start from"
            )
        entry = self.store.get_with_meta(base_key)
        if entry is None:
            raise NotFoundError(
                f"no stored result for request key {base_key!r}; "
                "submit the base job first"
            )
        _stored_payload, meta = entry
        base_request = (meta or {}).get("request")
        if not isinstance(base_request, dict):
            raise ConflictError(
                "stored result carries no request metadata; re-submit the "
                "base job to refresh it"
            )
        if (
            base_request.get("kind") != "partition"
            or base_request.get("method") != "gradient"
            or base_request.get("refine")
        ):
            raise BadRequestError(
                "ECO edits only apply to unrefined gradient partition "
                f"results; the stored base is kind={base_request.get('kind')!r} "
                f"method={base_request.get('method')!r} "
                f"refine={base_request.get('refine')!r}"
            )

        if "netlist" in base_request:
            base_netlist = base_request["netlist"]
        else:
            from repro.circuits.suite import build_circuit

            base_netlist = netlist_to_dict(build_circuit(base_request["circuit"]))

        fingerprint = library_fingerprint(default_library())
        if diff["library_fingerprint"] != fingerprint:
            raise BadRequestError(
                f"diff library fingerprint {diff['library_fingerprint'][:12]} "
                f"does not match this server's library ({fingerprint[:12]}); "
                "re-diff against the current library revision"
            )
        if diff["base_name"] != base_netlist["name"]:
            raise BadRequestError(
                f"diff targets base netlist {diff['base_name']!r} but the "
                f"stored result partitioned {base_netlist['name']!r}"
            )

        if is_empty_diff(diff):
            # Identity edit: the stored base payload IS the answer.
            # Re-submitting the base request hits the store fast path,
            # which returns the stored bytes untouched.
            with self._telemetry_lock:
                self.metrics.counter("service.eco.empty_diffs").inc()
                self.metrics.counter("service.eco.cache_hits").inc()
            job, outcome = self.manager.submit(base_key, base_request, ctx=ctx)
            status = 200 if outcome == "cached" else 202
            payload = job.to_dict()
            payload["outcome"] = outcome
            payload["eco"] = {"base_key": base_key, "empty_diff": True}
            return status, payload

        try:
            edited = apply_diff(base_netlist, diff)
        except NetlistError as error:
            raise BadRequestError(str(error)) from None

        num_planes = base_request["num_planes"]
        if num_planes > len(edited["gates"]):
            raise BadRequestError(
                f"the edit leaves {len(edited['gates'])} gates, fewer than "
                f"the base partition's {num_planes} planes"
            )

        # Previous plane per *edited* gate, by gate name (-1 for added).
        base_names = [gate["name"] for gate in base_netlist["gates"]]
        stored_labels = _stored_payload.get("labels") or []
        if len(stored_labels) != len(base_names):
            raise ConflictError(
                "stored base payload does not match the base netlist "
                f"({len(stored_labels)} labels for {len(base_names)} gates)"
            )
        by_name = dict(zip(base_names, (int(l) for l in stored_labels)))
        prev_labels = [by_name.get(gate["name"], -1) for gate in edited["gates"]]

        # Base pins survive only for gates the edit kept.
        pinned = None
        if base_request.get("pinned"):
            surviving = {gate["name"] for gate in edited["gates"]}
            pinned = {
                name: plane
                for name, plane in base_request["pinned"].items()
                if name in surviving
            } or None

        digest = diff_key(diff)
        eco_params = {"touched": touched_gate_names(diff)}
        for name in ("halo", "threshold", "quality_eps"):
            if name in params:
                eco_params[name] = params[name]
        normalized = {
            "kind": "eco",
            "netlist": edited,
            "num_planes": num_planes,
            "method": "gradient",
            "engine": base_request.get("engine", "batched"),
            "seed": base_request.get("seed", 0),
            "refine": False,
            "prev_labels": prev_labels,
            "eco": eco_params,
            "base_key": base_key,
            "diff_key": digest,
        }
        if pinned:
            normalized["pinned"] = pinned

        key = eco_request_key(base_key, digest, params)
        job, outcome = self.manager.submit(key, normalized, ctx=ctx)
        if outcome == "cached":
            with self._telemetry_lock:
                self.metrics.counter("service.eco.cache_hits").inc()
        status = 200 if outcome == "cached" else 202
        payload = job.to_dict()
        payload["outcome"] = outcome
        payload["eco"] = {"base_key": base_key, "diff_key": digest,
                          "empty_diff": False}
        return status, payload

    def job_status(self, job_id):
        return 200, self.manager.get(job_id).to_dict()

    def job_list(self):
        return 200, {"jobs": [job.to_dict() for job in self.manager.list_jobs()]}

    def job_result(self, job_id):
        job = self.manager.get(job_id)
        if job.state in ("queued", "running"):
            raise ConflictError(
                f"job {job_id} is {job.state}; poll status until it finishes"
            )
        if job.state == "cancelled":
            raise ConflictError(f"job {job_id} was cancelled")
        if job.state == "failed":
            raise JobFailedError(f"job {job_id} failed: {job.error}")
        return 200, {
            "id": job.id,
            "key": job.key,
            "state": job.state,
            "cached": job.cached,
            "result": job.payload,
        }

    def job_cancel(self, job_id):
        return 200, self.manager.cancel(job_id).to_dict()

    def job_events(self, job_id):
        """The lifecycle event records of one job (404 when unknown)."""
        job = self.manager.get(job_id)
        events = self.events.for_job(job.id) if self.events.enabled else []
        return 200, {
            "id": job.id,
            "schema_version": EVENT_SCHEMA_VERSION,
            "count": len(events),
            "events": events,
        }

    def health(self):
        payload = {
            "status": "draining" if self.manager.draining else "ok",
            "version": __version__,
            "versions": schema_versions(),
            "uptime_s": time.time() - self.started_at,
            "workers": self.manager.workers,
            "isolation": self.manager.isolation,
            "queue_depth": self.manager.queue_depth(),
            "queue_size": self.manager.queue_size,
            "running": self.manager.running_count(),
            "draining": self.manager.draining,
            "megabatch": self.manager.megabatch,
            "store_enabled": self.store.enabled,
            "tracing": self.manager.tracing,
            "events_enabled": self.events.enabled,
        }
        if self.fleet is not None:
            # Live fleet state: roster with last-heartbeat ages plus the
            # coordinator-side queue — the operator's one-stop view.
            payload["fleet"] = self.fleet.workers_snapshot()
        return 200, payload

    # -- fleet routes (coordinator side of the lease protocol) ---------
    def _require_fleet(self):
        if self.fleet is None:
            raise ConflictError(
                "this server is not a fleet coordinator; start it with "
                "--isolation fleet (or REPRO_SERVICE_ISOLATION=fleet)"
            )
        return self.fleet

    def fleet_lease(self, body):
        fleet = self._require_fleet()
        if not isinstance(body, dict) or not body.get("worker"):
            raise BadRequestError(
                "lease body must be a JSON object with a 'worker' id"
            )
        max_jobs = body.get("max_jobs", 1)
        wait = body.get("wait", 0.0)
        try:
            max_jobs = max(1, int(max_jobs))
            wait = max(0.0, float(wait))
        except (TypeError, ValueError):
            raise BadRequestError(
                f"max_jobs/wait must be numbers, got {max_jobs!r}/{wait!r}"
            ) from None
        leases = fleet.lease(str(body["worker"]), max_jobs=max_jobs, wait=wait)
        return 200, {"leases": leases, "draining": self.manager.draining}

    def fleet_heartbeat(self, body):
        fleet = self._require_fleet()
        if not isinstance(body, dict) or not body.get("worker"):
            raise BadRequestError(
                "heartbeat body must be a JSON object with a 'worker' id"
            )
        lease_ids = body.get("leases") or []
        if not isinstance(lease_ids, list):
            raise BadRequestError("'leases' must be a list of lease ids")
        return 200, fleet.heartbeat(str(body["worker"]),
                                    [str(l) for l in lease_ids])

    def fleet_complete(self, body):
        fleet = self._require_fleet()
        if not isinstance(body, dict) or not body.get("worker"):
            raise BadRequestError(
                "complete body must be a JSON object with a 'worker' id"
            )
        if not body.get("lease"):
            raise BadRequestError("complete body must carry the 'lease' id")
        status = fleet.complete(
            str(body["worker"]),
            str(body["lease"]),
            ok=bool(body.get("ok")),
            payload=body.get("payload"),
            kind=body.get("kind"),
            message=body.get("message"),
            snapshot=body.get("snapshot"),
        )
        return 200, {"status": status}

    def fleet_workers(self):
        return 200, self._require_fleet().workers_snapshot()

    def metrics_payload(self):
        with self._telemetry_lock:
            # Live gauges, sampled at scrape time so the route reports
            # the instantaneous queue/worker state, not a stale value.
            self.metrics.gauge("service.queue.depth").set(
                self.manager.queue_depth()
            )
            self.metrics.gauge("service.jobs.inflight").set(
                self.manager.running_count()
            )
            metrics = self.metrics.as_dict()
            spans = self.tracer.as_dict()
        return 200, {
            "metrics": metrics,
            "spans": spans,
            "store": self.store.snapshot_stats(),
            "queue_depth": self.manager.queue_depth(),
        }

    def metrics_exposition(self):
        """The same state as :meth:`metrics_payload`, rendered in
        Prometheus text exposition format."""
        with self._telemetry_lock:
            self.metrics.gauge("service.queue.depth").set(
                self.manager.queue_depth()
            )
            self.metrics.gauge("service.jobs.inflight").set(
                self.manager.running_count()
            )
            text = render_exposition(
                self.metrics,
                tracer=self.tracer,
                store_stats=self.store.snapshot_stats(),
            )
        return 200, text

    def trace_export(self):
        """The server's spans + metrics as a JSONL trace document."""
        buffer = io.StringIO()
        with self._telemetry_lock:
            write_trace_jsonl(
                buffer,
                tracer=self.tracer,
                metrics=self.metrics,
                meta={
                    "source": "repro-gpp service",
                    "uptime_s": time.time() - self.started_at,
                },
            )
        return 200, buffer.getvalue()


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shell around :class:`PartitionService` route logic."""

    server_version = "repro-gpp-service"
    protocol_version = "HTTP/1.1"
    _trace_ctx = None  # set per request by _dispatch

    @property
    def service(self):
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # -- JSON plumbing -------------------------------------------------
    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise BadRequestError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as error:
            raise BadRequestError(f"request body is not valid JSON: {error}") from None

    def _send_json(self, status, payload, headers=()):
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._trace_ctx is not None:
            self.send_header(TRACE_HEADER, self._trace_ctx.to_header())
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return status

    def _send_text(self, status, text, content_type="text/plain; charset=utf-8"):
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._trace_ctx is not None:
            self.send_header(TRACE_HEADER, self._trace_ctx.to_header())
        self.end_headers()
        self.wfile.write(body)
        return status

    def _request_context(self):
        """This request's trace context (``None`` with contexts off).

        Continues the caller's context when an ``X-Repro-Trace`` header
        parses, otherwise roots a fresh trace — so every request has a
        request id even when the client sent nothing.
        """
        if not context_enabled():
            return None
        incoming = TraceContext.from_header(self.headers.get(TRACE_HEADER))
        if incoming is not None:
            return incoming.child("request")
        return TraceContext.new()

    def _dispatch(self, method):
        tracer = Tracer()
        tracer.enabled = True
        path = self.path.split("?")[0].rstrip("/") or "/"
        route = route_label(method, path)
        self._trace_ctx = self._request_context()
        status = 500
        started = time.perf_counter()
        try:
            with tracer.span("service.request", ctx=self._trace_ctx,
                             route=route, path=f"{method} {path}"):
                status = self._route(method, path)
        except QueueFullError as error:
            status = self._send_json(
                error.status,
                {"error": error.code, "message": str(error),
                 "retry_after": error.retry_after},
                headers=(("Retry-After", str(error.retry_after)),),
            )
        except ServiceError as error:
            status = self._send_json(
                error.status, {"error": error.code, "message": str(error)}
            )
        except BrokenPipeError:
            status = 499  # client went away mid-response; nothing to send
        except Exception as error:  # noqa: BLE001 - last-resort shield
            # The server must keep serving no matter what a request did.
            try:
                status = self._send_json(
                    500, {"error": "internal", "message": str(error)}
                )
            except Exception:
                status = 500
        finally:
            self.service.record_request(
                tracer, status, route=route,
                duration_s=time.perf_counter() - started,
            )

    def _wants_exposition(self):
        """Content negotiation of ``GET /metrics``.

        ``?format=prometheus`` (or ``text``) forces the text exposition,
        ``?format=json`` forces JSON; otherwise an Accept header that
        asks for ``text/plain`` without also accepting JSON wins.  The
        default stays JSON — existing clients see no change.
        """
        query = self.path.split("?", 1)[1] if "?" in self.path else ""
        fmt = (parse_qs(query).get("format") or [""])[0].lower()
        if fmt in ("prometheus", "text", "exposition"):
            return True
        if fmt == "json":
            return False
        accept = self.headers.get("Accept") or ""
        return "text/plain" in accept and "application/json" not in accept

    def _route(self, method, path):
        parts = [part for part in path.split("/") if part]

        if method == "GET":
            if path == "/healthz":
                return self._send_json(*self.service.health())
            if path == "/metrics":
                if self._wants_exposition():
                    return self._send_text(*self.service.metrics_exposition())
                return self._send_json(*self.service.metrics_payload())
            if parts == ["v1", "trace"]:
                return self._send_text(
                    *self.service.trace_export(),
                    content_type="application/x-ndjson",
                )
            if parts == ["v1", "jobs"]:
                return self._send_json(*self.service.job_list())
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return self._send_json(*self.service.job_status(parts[2]))
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
                return self._send_json(*self.service.job_result(parts[2]))
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "events":
                return self._send_json(*self.service.job_events(parts[2]))
            if parts == ["fleet", "v1", "workers"]:
                return self._send_json(*self.service.fleet_workers())
        elif method == "POST":
            if parts == ["fleet", "v1", "lease"]:
                return self._send_json(*self.service.fleet_lease(self._read_body()))
            if parts == ["fleet", "v1", "heartbeat"]:
                return self._send_json(
                    *self.service.fleet_heartbeat(self._read_body())
                )
            if parts == ["fleet", "v1", "complete"]:
                return self._send_json(
                    *self.service.fleet_complete(self._read_body())
                )
            if parts == ["v1", "jobs"]:
                return self._send_json(
                    *self.service.submit(self._read_body(), ctx=self._trace_ctx)
                )
            if parts == ["v1", "sweeps"]:
                return self._send_json(
                    *self.service.sweep_submit(self._read_body(), ctx=self._trace_ctx)
                )
            if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "cancel":
                return self._send_json(*self.service.job_cancel(parts[2]))
        elif method == "PATCH":
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return self._send_json(
                    *self.service.eco_submit(
                        parts[2], self._read_body(), ctx=self._trace_ctx
                    )
                )
        raise NotFoundError(f"no route {method} {path}")

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def do_PATCH(self):
        self._dispatch("PATCH")


class PartitionHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`PartitionService`."""

    daemon_threads = True
    # The stdlib default listen backlog of 5 drops connections under a
    # modest burst (the 16-client benchmark hits it); job-level load is
    # bounded separately by the job queue, so accept generously here.
    request_queue_size = 128

    def __init__(self, address, service, verbose=False):
        self.service = service
        self.verbose = verbose
        super().__init__(address, _Handler)

    @property
    def url(self):
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self):
        super().shutdown()
        self.service.stop()


def build_server(host=None, port=None, verbose=False, **service_opts):
    """A ready (not yet serving) server; ``port=0`` picks a free port."""
    service = PartitionService(**service_opts).start()
    return PartitionHTTPServer(
        (resolve_host(host), resolve_port(port)), service, verbose=verbose
    )


#: Drain bound when neither ``drain_timeout`` nor REPRO_JOB_TIMEOUT is
#: set: long enough for any admitted suite job, short enough that an
#: orchestrator's kill grace period is not exhausted by a hung solve.
DEFAULT_DRAIN_TIMEOUT = 30.0


def serve(host=None, port=None, verbose=False, ready_line=True,
          drain_timeout=None, **service_opts):
    """Run the server in this thread until interrupted (the CLI path).

    SIGTERM/SIGINT trigger a *graceful* shutdown: new submits are
    rejected with HTTP 503 (``draining``), admitted jobs finish —
    bounded by ``drain_timeout``, else ``REPRO_JOB_TIMEOUT``, else
    :data:`DEFAULT_DRAIN_TIMEOUT` seconds — the event log is flushed,
    and only then does the listener stop.  A second signal skips the
    drain and shuts down immediately.  Signal handlers only install in
    the main thread; elsewhere (tests embedding serve()) the behavior
    is unchanged.
    """
    import signal

    server = build_server(host=host, port=port, verbose=verbose, **service_opts)
    service = server.service
    draining = threading.Event()

    def _drain_and_stop():
        service.manager.begin_drain()
        bound = drain_timeout
        if bound is None:
            from repro.harness.runner import resolve_timeout

            bound = resolve_timeout(None)
        if bound is None:
            bound = DEFAULT_DRAIN_TIMEOUT
        drained = service.manager.drain(timeout=bound)
        if service.events is not None and service.events.enabled:
            service.events.emit(
                "server.shutdown", drained=drained,
                drain_timeout_s=float(bound),
            )
            service.events.flush()
        print(
            "repro-gpp service drained cleanly" if drained
            else f"repro-gpp service drain timed out after {bound}s",
            flush=True,
        )
        server.shutdown()

    def _handle_signal(signum, _frame):
        if draining.is_set():
            # Second signal: the operator means it — stop now.
            threading.Thread(target=server.shutdown, daemon=True).start()
            return
        draining.set()
        print(
            f"repro-gpp service draining (signal {signum}); "
            "new submits answer 503",
            flush=True,
        )
        # Drain on a helper thread: signal handlers run on the main
        # thread, which is busy inside serve_forever().
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _handle_signal)
        signal.signal(signal.SIGINT, _handle_signal)
    except ValueError:
        pass  # not the main thread; no signal-driven shutdown

    if ready_line:
        print(f"repro-gpp service listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return server
