"""Graph algorithms over netlists.

The partitioner itself only needs the raw edge array, but the synthesis
flow, the baselines and the metrics need structural queries: adjacency,
connected components, BFS levels, logic levelization and fanout counts.
All functions accept either a :class:`~repro.netlist.netlist.Netlist` or a
``(num_gates, edge_array)`` pair, so they are reusable on raw arrays.
"""

from collections import deque

import numpy as np

from repro.utils.errors import NetlistError


def _as_graph(netlist_or_pair):
    """Normalize input to ``(num_gates, (|E|,2) int array)``."""
    if hasattr(netlist_or_pair, "edge_array"):
        return netlist_or_pair.num_gates, netlist_or_pair.edge_array()
    num_gates, edges = netlist_or_pair
    edges = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= num_gates):
        raise NetlistError("edge endpoints out of range")
    return int(num_gates), edges


def edge_array(netlist_or_pair):
    """Return the ``(|E|, 2)`` edge array of the graph."""
    return _as_graph(netlist_or_pair)[1]


def adjacency_lists(netlist_or_pair, directed=True):
    """Adjacency lists.

    With ``directed=True`` returns ``(successors, predecessors)``; with
    ``directed=False`` returns a single undirected neighbor-list.
    """
    num_gates, edges = _as_graph(netlist_or_pair)
    if directed:
        successors = [[] for _ in range(num_gates)]
        predecessors = [[] for _ in range(num_gates)]
        for u, v in edges:
            successors[u].append(int(v))
            predecessors[v].append(int(u))
        return successors, predecessors
    neighbors = [[] for _ in range(num_gates)]
    for u, v in edges:
        neighbors[u].append(int(v))
        neighbors[v].append(int(u))
    return neighbors


def undirected_degrees(netlist_or_pair):
    """Undirected degree of every gate, shape ``(G,)``."""
    num_gates, edges = _as_graph(netlist_or_pair)
    degrees = np.zeros(num_gates, dtype=np.intp)
    if edges.size:
        np.add.at(degrees, edges[:, 0], 1)
        np.add.at(degrees, edges[:, 1], 1)
    return degrees


def fanout_counts(netlist_or_pair):
    """Number of outgoing connections per gate, shape ``(G,)``."""
    num_gates, edges = _as_graph(netlist_or_pair)
    fanout = np.zeros(num_gates, dtype=np.intp)
    if edges.size:
        np.add.at(fanout, edges[:, 0], 1)
    return fanout


def fanin_counts(netlist_or_pair):
    """Number of incoming connections per gate, shape ``(G,)``."""
    num_gates, edges = _as_graph(netlist_or_pair)
    fanin = np.zeros(num_gates, dtype=np.intp)
    if edges.size:
        np.add.at(fanin, edges[:, 1], 1)
    return fanin


def connected_components(netlist_or_pair):
    """Undirected connected components.

    Returns an array ``component[i]`` with component ids numbered from 0
    in order of discovery (ascending lowest-gate-index).
    """
    num_gates, _ = _as_graph(netlist_or_pair)
    neighbors = adjacency_lists(netlist_or_pair, directed=False)
    component = np.full(num_gates, -1, dtype=np.intp)
    current = 0
    for start in range(num_gates):
        if component[start] != -1:
            continue
        queue = deque([start])
        component[start] = current
        while queue:
            node = queue.popleft()
            for nxt in neighbors[node]:
                if component[nxt] == -1:
                    component[nxt] = current
                    queue.append(nxt)
        current += 1
    return component


def bfs_levels(netlist_or_pair, sources):
    """Undirected BFS distance from the given source set.

    Unreachable gates get level ``-1``.
    """
    num_gates, _ = _as_graph(netlist_or_pair)
    neighbors = adjacency_lists(netlist_or_pair, directed=False)
    level = np.full(num_gates, -1, dtype=np.intp)
    queue = deque()
    for s in sources:
        s = int(s)
        if not 0 <= s < num_gates:
            raise NetlistError(f"BFS source {s} out of range")
        if level[s] == -1:
            level[s] = 0
            queue.append(s)
    while queue:
        node = queue.popleft()
        for nxt in neighbors[node]:
            if level[nxt] == -1:
                level[nxt] = level[node] + 1
                queue.append(nxt)
    return level


def bounded_bfs_levels(netlist_or_pair, sources, max_level):
    """Undirected BFS distance, cut off beyond ``max_level`` hops.

    Same contract as :func:`bfs_levels` except gates farther than
    ``max_level`` report ``-1`` like unreachable ones.  Runs whole-array
    frontier expansions over the edge array instead of building Python
    adjacency lists, so a small-halo query on a large netlist costs
    ``O(max_level * |E|)`` numpy work rather than ``O(G + E)`` Python
    work — the hot path of incremental (ECO) region expansion.
    """
    num_gates, edges = _as_graph(netlist_or_pair)
    if max_level < 0:
        raise NetlistError(f"max_level must be >= 0, got {max_level}")
    level = np.full(num_gates, -1, dtype=np.intp)
    sources = np.asarray(sorted(int(s) for s in sources), dtype=np.intp)
    if sources.size and (sources.min() < 0 or sources.max() >= num_gates):
        bad = sources[0] if sources[0] < 0 else sources[-1]
        raise NetlistError(f"BFS source {int(bad)} out of range")
    level[sources] = 0
    if not edges.size:
        return level
    frontier = np.zeros(num_gates, dtype=bool)
    frontier[sources] = True
    u, v = edges[:, 0], edges[:, 1]
    for depth in range(1, max_level + 1):
        if not frontier.any():
            break
        reached = np.zeros(num_gates, dtype=bool)
        reached[v[frontier[u]]] = True
        reached[u[frontier[v]]] = True
        frontier = reached & (level < 0)
        level[frontier] = depth
    return level


def logic_levels(netlist_or_pair):
    """Longest-path logic level of every gate (sources at level 0).

    Computed by Kahn topological ordering.  Gates on directed cycles
    (possible in hand-written netlists, never after SFQ path balancing)
    are assigned the level of the deepest acyclic predecessor plus one,
    by breaking cycles at the lowest-index remaining gate.
    """
    num_gates, edges = _as_graph(netlist_or_pair)
    successors, _ = adjacency_lists((num_gates, edges), directed=True)
    indegree = fanin_counts((num_gates, edges)).copy()
    level = np.zeros(num_gates, dtype=np.intp)
    queue = deque(i for i in range(num_gates) if indegree[i] == 0)
    seen = 0
    processed = np.zeros(num_gates, dtype=bool)
    remaining = set(range(num_gates)) - set(queue)
    while seen < num_gates:
        if not queue:
            # break one cycle: pick the lowest-index unprocessed gate
            breaker = min(remaining)
            remaining.discard(breaker)
            queue.append(breaker)
            indegree[breaker] = 0
        node = queue.popleft()
        if processed[node]:
            continue
        processed[node] = True
        seen += 1
        for nxt in successors[node]:
            if processed[nxt]:
                continue
            level[nxt] = max(level[nxt], level[node] + 1)
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                remaining.discard(nxt)
                queue.append(nxt)
    return level


def is_acyclic(netlist_or_pair):
    """True when the directed graph has no cycles."""
    num_gates, edges = _as_graph(netlist_or_pair)
    successors, _ = adjacency_lists((num_gates, edges), directed=True)
    indegree = fanin_counts((num_gates, edges)).copy()
    queue = deque(i for i in range(num_gates) if indegree[i] == 0)
    seen = 0
    while queue:
        node = queue.popleft()
        seen += 1
        for nxt in successors[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    return seen == num_gates
