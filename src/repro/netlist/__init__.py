"""Netlist substrate: SFQ cell models, cell library, netlist graph.

This subpackage provides the circuit representation consumed by the
partitioner (:mod:`repro.core`), produced by the synthesis flow
(:mod:`repro.synth`) and exchanged through the parsers
(:mod:`repro.parsers`).
"""

from repro.netlist.cell import CellKind, CellType
from repro.netlist.library import CellLibrary, default_library
from repro.netlist.netlist import Gate, Netlist, Port, PortDirection
from repro.netlist.graph import (
    edge_array,
    adjacency_lists,
    undirected_degrees,
    connected_components,
    bfs_levels,
    logic_levels,
    fanout_counts,
)
from repro.netlist.validate import ValidationIssue, validate_netlist, check_sfq_rules
from repro.netlist.stats import NetlistStats, netlist_stats, locality_index
from repro.netlist.serialize import (
    NETLIST_FORMAT_VERSION,
    library_fingerprint,
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)

__all__ = [
    "CellKind",
    "CellType",
    "CellLibrary",
    "default_library",
    "Gate",
    "Netlist",
    "Port",
    "PortDirection",
    "edge_array",
    "adjacency_lists",
    "undirected_degrees",
    "connected_components",
    "bfs_levels",
    "logic_levels",
    "fanout_counts",
    "ValidationIssue",
    "validate_netlist",
    "check_sfq_rules",
    "NetlistStats",
    "netlist_stats",
    "locality_index",
    "NETLIST_FORMAT_VERSION",
    "library_fingerprint",
    "netlist_to_dict",
    "netlist_from_dict",
    "save_netlist",
    "load_netlist",
]
