"""SFQ standard-cell model.

Each gate instance in a netlist references a :class:`CellType` that carries
the two quantities the partitioning cost function needs per gate — the bias
current requirement ``b_i`` (mA) and the layout area ``a_i`` (um^2) — plus
structural metadata used by the synthesis flow (pins, clocking, fanout
capability) and the recycling planner (JJ count for dummy sizing).
"""

from dataclasses import dataclass, field
from enum import Enum

from repro.utils.units import um2_to_mm2


class CellKind(Enum):
    """Functional category of an SFQ cell.

    The categories matter to the synthesis flow (splitters are the only
    cells allowed a fanout of two; interconnect cells are transparent for
    logic levelization) and to the recycling planner (dummy cells pass
    bias current but carry no signal).
    """

    LOGIC = "logic"
    STORAGE = "storage"
    SPLITTER = "splitter"
    MERGER = "merger"
    INTERCONNECT = "interconnect"
    IO = "io"
    COUPLING = "coupling"
    DUMMY = "dummy"


@dataclass(frozen=True)
class CellType:
    """Immutable description of one SFQ standard cell.

    Attributes
    ----------
    name:
        Library cell name (e.g. ``"AND2"``).
    kind:
        Functional category, see :class:`CellKind`.
    bias_ma:
        Bias current requirement of one instance, in milliamperes.
    width_um / height_um:
        Placement footprint in micrometres.  All cells of the default
        library share a 60 um row height, as in row-based SFQ layouts.
    jj_count:
        Number of Josephson junctions in the cell.
    inputs / outputs:
        Ordered logical pin names (clock excluded).
    clocked:
        True for gates that consume the SFQ clock (most logic gates and
        storage elements are clocked; splitters/JTLs/mergers are not).
    """

    name: str
    kind: CellKind
    bias_ma: float
    width_um: float
    height_um: float
    jj_count: int
    inputs: tuple = field(default=("a",))
    outputs: tuple = field(default=("q",))
    clocked: bool = False

    def __post_init__(self):
        if self.bias_ma < 0:
            raise ValueError(f"cell {self.name}: negative bias {self.bias_ma}")
        if self.width_um <= 0 or self.height_um <= 0:
            raise ValueError(f"cell {self.name}: non-positive footprint")
        if self.jj_count < 0:
            raise ValueError(f"cell {self.name}: negative JJ count")
        if not self.outputs:
            raise ValueError(f"cell {self.name}: cell must have an output")

    @property
    def area_um2(self):
        """Cell area in square micrometres."""
        return self.width_um * self.height_um

    @property
    def area_mm2(self):
        """Cell area in square millimetres (the paper's table unit)."""
        return um2_to_mm2(self.area_um2)

    @property
    def max_fanout(self):
        """Maximum number of sinks one output may drive.

        SFQ pulses cannot be passively forked: every cell output drives
        exactly one sink, and fanout is built from splitter trees.  A
        splitter therefore has two outputs, each driving one sink.
        """
        return len(self.outputs)

    @property
    def num_inputs(self):
        return len(self.inputs)

    def __str__(self):
        return (
            f"{self.name}({self.kind.value}, {self.bias_ma:.2f} mA, "
            f"{self.width_um:.0f}x{self.height_um:.0f} um, {self.jj_count} JJ)"
        )
