"""Netlist structure statistics.

The calibration story of this reproduction (DESIGN.md, substitution 1)
rests on aggregate statistics — connections per gate, splitter
fraction, bias/area per gate — matching the published Table I values.
This module computes those statistics plus the structural profile that
determines partition difficulty (degree distribution, pipeline-depth
histogram, a Rent-style locality exponent estimate), for calibration
tests and for users profiling their own netlists.
"""

from dataclasses import dataclass

import numpy as np

from repro.netlist.cell import CellKind
from repro.netlist.graph import logic_levels, undirected_degrees


@dataclass(frozen=True)
class NetlistStats:
    """Aggregate structural statistics of one netlist."""

    circuit: str
    num_gates: int
    num_connections: int
    connections_per_gate: float
    avg_bias_ma: float
    avg_area_um2: float
    splitter_fraction: float
    dff_fraction: float
    logic_fraction: float
    max_degree: int
    mean_degree: float
    pipeline_depth: int
    locality: float
    cell_mix: dict

    def as_dict(self):
        return {
            "circuit": self.circuit,
            "gates": self.num_gates,
            "connections": self.num_connections,
            "connections_per_gate": self.connections_per_gate,
            "avg_bias_ma": self.avg_bias_ma,
            "avg_area_um2": self.avg_area_um2,
            "splitter_fraction": self.splitter_fraction,
            "dff_fraction": self.dff_fraction,
            "logic_fraction": self.logic_fraction,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "pipeline_depth": self.pipeline_depth,
            "locality": self.locality,
        }


def _kind_fraction(netlist, kind):
    if netlist.num_gates == 0:
        return 0.0
    count = sum(1 for gate in netlist.gates if gate.cell.kind is kind)
    return count / netlist.num_gates


def locality_index(netlist):
    """Fraction of connections linking gates within one pipeline stage
    of each other — 1.0 for a pure chain, ~0 for a random graph.

    This single number predicts which partitioners win: contiguous
    orderings dominate when locality is high (the reproduction's main
    baseline finding).
    """
    edges = netlist.edge_array()
    if edges.shape[0] == 0:
        return 1.0
    levels = logic_levels(netlist)
    gaps = np.abs(levels[edges[:, 0]] - levels[edges[:, 1]])
    return float(np.count_nonzero(gaps <= 1)) / edges.shape[0]


def netlist_stats(netlist):
    """Compute :class:`NetlistStats` for a netlist."""
    num_gates = netlist.num_gates
    num_connections = netlist.num_connections
    degrees = undirected_degrees(netlist)
    levels = logic_levels(netlist) if num_gates else np.zeros(0, dtype=int)
    return NetlistStats(
        circuit=netlist.name,
        num_gates=num_gates,
        num_connections=num_connections,
        connections_per_gate=(num_connections / num_gates) if num_gates else 0.0,
        avg_bias_ma=(netlist.total_bias_ma / num_gates) if num_gates else 0.0,
        avg_area_um2=(
            float(netlist.area_vector_um2().mean()) if num_gates else 0.0
        ),
        splitter_fraction=_kind_fraction(netlist, CellKind.SPLITTER),
        dff_fraction=_kind_fraction(netlist, CellKind.STORAGE),
        logic_fraction=_kind_fraction(netlist, CellKind.LOGIC),
        max_degree=int(degrees.max()) if num_gates else 0,
        mean_degree=float(degrees.mean()) if num_gates else 0.0,
        pipeline_depth=int(levels.max()) if num_gates else 0,
        locality=locality_index(netlist),
        cell_mix=netlist.cell_histogram(),
    )


def degree_histogram(netlist):
    """``{degree: gate count}`` over undirected degrees."""
    degrees = undirected_degrees(netlist)
    histogram = {}
    for degree in degrees.tolist():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def stage_population(netlist):
    """Gate count per pipeline stage, shape ``(depth + 1,)``."""
    if netlist.num_gates == 0:
        return np.zeros(0, dtype=np.intp)
    levels = logic_levels(netlist)
    return np.bincount(levels)
