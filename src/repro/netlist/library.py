"""SFQ standard-cell library.

The paper's benchmark suite (SPORT-lab SFQ benchmarks, reference [20]) is
not publicly distributed, so the library below is *calibrated* to the
aggregate statistics recoverable from Table I of the paper:

* average bias current per gate ``B_cir / #gates`` ~= 0.85 mA for every
  circuit in the table;
* average area per gate ``A_cir / #gates`` ~= 4.85e-3 mm^2 (4850 um^2);
* connections per gate ~= 1.2-1.3, implying a splitter fraction of about
  one quarter of all gates.

With the per-cell numbers below, a typical synthesized mix (roughly 25 %
splitters, 35 % path-balancing DFFs, 40 % clocked logic) lands on those
averages.  Individual values are representative of published RSFQ/ERSFQ
cell libraries (bias currents of a few hundred uA to ~1.5 mA per gate,
row height 60 um).
"""

from repro.netlist.cell import CellKind, CellType

#: Shared row height (um) of all cells in the default library.
ROW_HEIGHT_UM = 60.0


class CellLibrary:
    """A named collection of :class:`CellType` objects.

    Provides dictionary-style lookup by cell name plus convenience
    accessors used by the synthesis flow (splitter cell, balancing DFF).
    """

    def __init__(self, name, cells):
        self.name = name
        self._cells = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell name {cell.name!r} in library {name!r}")
            self._cells[cell.name] = cell

    def __contains__(self, cell_name):
        return cell_name in self._cells

    def __getitem__(self, cell_name):
        try:
            return self._cells[cell_name]
        except KeyError:
            raise KeyError(
                f"cell {cell_name!r} not in library {self.name!r} "
                f"(available: {sorted(self._cells)})"
            ) from None

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self):
        return len(self._cells)

    def get(self, cell_name, default=None):
        return self._cells.get(cell_name, default)

    def names(self):
        """Sorted list of cell names."""
        return sorted(self._cells)

    def cells_of_kind(self, kind):
        """All cells of the given :class:`CellKind`, sorted by name."""
        return sorted(
            (c for c in self._cells.values() if c.kind is kind),
            key=lambda c: c.name,
        )

    @property
    def splitter(self):
        """The (unique) splitter cell used for fanout trees."""
        splitters = self.cells_of_kind(CellKind.SPLITTER)
        if not splitters:
            raise KeyError(f"library {self.name!r} has no splitter cell")
        return splitters[0]

    @property
    def balance_dff(self):
        """The storage cell used for path-balancing insertion."""
        if "DFF" in self._cells:
            return self._cells["DFF"]
        storage = self.cells_of_kind(CellKind.STORAGE)
        if not storage:
            raise KeyError(f"library {self.name!r} has no storage cell")
        return storage[0]


def _cell(name, kind, bias_ma, width_um, jj, inputs, outputs, clocked):
    return CellType(
        name=name,
        kind=kind,
        bias_ma=bias_ma,
        width_um=width_um,
        height_um=ROW_HEIGHT_UM,
        jj_count=jj,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        clocked=clocked,
    )


def default_library():
    """Build the calibrated default SFQ cell library.

    Returns a fresh :class:`CellLibrary`; all cells are immutable so
    sharing the returned library across netlists is safe.
    """
    cells = [
        # interconnect
        _cell("JTL", CellKind.INTERCONNECT, 0.35, 30.0, 2, ("a",), ("q",), False),
        # fanout
        _cell("SPLIT", CellKind.SPLITTER, 0.52, 40.0, 3, ("a",), ("q0", "q1"), False),
        # merging (confluence buffer)
        _cell("MERGE", CellKind.MERGER, 0.78, 70.0, 5, ("a", "b"), ("q",), False),
        # storage
        _cell("DFF", CellKind.STORAGE, 0.72, 70.0, 6, ("d",), ("q",), True),
        _cell("NDRO", CellKind.STORAGE, 1.35, 140.0, 12, ("set", "reset"), ("q",), True),
        # clocked logic
        _cell("AND2", CellKind.LOGIC, 1.42, 130.0, 11, ("a", "b"), ("q",), True),
        _cell("OR2", CellKind.LOGIC, 1.08, 110.0, 9, ("a", "b"), ("q",), True),
        _cell("XOR2", CellKind.LOGIC, 1.25, 120.0, 8, ("a", "b"), ("q",), True),
        _cell("NOT", CellKind.LOGIC, 0.98, 100.0, 10, ("a",), ("q",), True),
        _cell("XNOR2", CellKind.LOGIC, 1.31, 125.0, 10, ("a", "b"), ("q",), True),
        _cell("NAND2", CellKind.LOGIC, 1.47, 135.0, 12, ("a", "b"), ("q",), True),
        _cell("NOR2", CellKind.LOGIC, 1.18, 115.0, 11, ("a", "b"), ("q",), True),
        # I/O converters (perimeter cells sharing the common ground)
        _cell("DCSFQ", CellKind.IO, 0.85, 100.0, 6, ("dc_in",), ("q",), False),
        _cell("SFQDC", CellKind.IO, 1.10, 130.0, 12, ("a",), ("dc_out",), False),
        # inter-plane inductive coupling pair (Section III-A of the paper)
        _cell("TXDRV", CellKind.COUPLING, 0.64, 80.0, 4, ("a",), ("q",), False),
        _cell("RXRCV", CellKind.COUPLING, 0.58, 80.0, 5, ("a",), ("q",), False),
        # dummy bias-passing structure (Section III-B.1)
        _cell("DUMMY", CellKind.DUMMY, 0.50, 50.0, 2, (), ("q",), False),
    ]
    return CellLibrary("sfq-default", cells)
