"""Canonical netlist diffs for incremental (ECO) re-partitioning.

A real design loop edits a handful of gates between solves; shipping the
whole edited netlist to the partitioning service for every tweak wastes
bandwidth and — more importantly — destroys the content-keyed identity
an incremental solver needs.  This module defines the diff between two
serialized netlists (:func:`repro.netlist.serialize.netlist_to_dict`
form): added / removed / modified gates (a re-typed or moved gate is
"modified"; a renamed gate is a remove + add, names are gate identity),
added / removed connections (name pairs, multiset semantics — the
netlist allows parallel connections), and the edited port list when it
changed.

Identity: :func:`diff_key` hashes the canonical diff JSON, so an edit is
content-addressed by the pair ``(base request key, diff key)`` — the
service's ``PATCH /v1/jobs/<request_key>`` route dedupes warm re-solves
on exactly that pair (see docs/eco.md).

Library safety: both netlists must be serialized against libraries with
the same :func:`~repro.netlist.serialize.library_fingerprint` — a diff
across library revisions would silently change every gate's bias and
area, so :func:`diff_netlists` refuses, and the fingerprint is embedded
in the diff for the consumer to re-check.

Ordering: :func:`apply_diff` preserves the base netlist's gate and edge
order, replaces modified gates in place and appends added gates and
connections at the end.  When the edit itself appended (the natural ECO
shape, and what :func:`netlist_diff` of such an edit round-trips), the
applied dict equals the edited dict byte for byte; an edit that
*inserted* in the middle applies to an equivalent netlist in this
canonical append order.
"""

import hashlib
import json
from collections import Counter

from repro.netlist.serialize import (
    NETLIST_FORMAT_VERSION,
    library_fingerprint,
    netlist_to_dict,
)
from repro.utils.errors import NetlistError

#: Diff layout version; part of every diff key, so a layout change
#: silently invalidates stored warm results (they re-solve).
DIFF_FORMAT_VERSION = 1

DIFF_KIND = "netlist-diff"

#: The gate-entry fields compared (and carried) by a diff.
_GATE_FIELDS = ("name", "cell", "x_um", "y_um", "attributes")


def _gate_entry(entry):
    """Normalized copy of one serialized gate entry."""
    out = {
        "name": entry["name"],
        "cell": entry["cell"],
        "x_um": entry.get("x_um"),
        "y_um": entry.get("y_um"),
    }
    if entry.get("attributes"):
        out["attributes"] = entry["attributes"]
    return out


def _require_netlist_dict(data, role):
    if not isinstance(data, dict) or data.get("kind") != "netlist":
        raise NetlistError(f"{role} is not a serialized netlist")
    if data.get("format") != NETLIST_FORMAT_VERSION:
        raise NetlistError(
            f"{role} has unsupported netlist format {data.get('format')!r} "
            f"(this build reads {NETLIST_FORMAT_VERSION})"
        )


def _edge_name_pairs(data):
    """Edges of a serialized netlist as ``(driver name, sink name)``."""
    names = [gate["name"] for gate in data["gates"]]
    return [(names[int(u)], names[int(v)]) for u, v in data["edges"]]


def _port_triples(data):
    """Ports as order-independent ``(name, direction, gate name)``."""
    names = [gate["name"] for gate in data["gates"]]
    triples = []
    for port in data.get("ports", ()):
        gate = port.get("gate")
        triples.append({
            "name": port["name"],
            "direction": port["direction"],
            "gate": None if gate is None else names[int(gate)],
        })
    return triples


def netlist_diff(base, edited, fingerprint):
    """The canonical diff turning serialized ``base`` into ``edited``.

    ``fingerprint`` is the shared library fingerprint of both netlists
    (the caller's responsibility to verify — :func:`diff_netlists` does).
    """
    _require_netlist_dict(base, "diff base")
    _require_netlist_dict(edited, "diff target")

    base_gates = {gate["name"]: _gate_entry(gate) for gate in base["gates"]}
    edited_gates = {gate["name"]: _gate_entry(gate) for gate in edited["gates"]}
    if len(base_gates) != len(base["gates"]):
        raise NetlistError(f"diff base {base['name']!r} has duplicate gate names")
    if len(edited_gates) != len(edited["gates"]):
        raise NetlistError(f"diff target {edited['name']!r} has duplicate gate names")

    added = [g for g in edited["gates"] if g["name"] not in base_gates]
    removed = sorted(name for name in base_gates if name not in edited_gates)
    modified = [
        g for g in edited["gates"]
        if g["name"] in base_gates and _gate_entry(g) != base_gates[g["name"]]
    ]

    base_pairs = _edge_name_pairs(base)
    edited_pairs = _edge_name_pairs(edited)
    surplus = Counter(edited_pairs)
    surplus.subtract(Counter(base_pairs))
    removed_conns, added_conns = [], []
    deficit = Counter()
    for pair, count in surplus.items():
        if count < 0:
            deficit[pair] = -count
    for pair in base_pairs:  # base order, first occurrences removed
        if deficit.get(pair, 0) > 0:
            deficit[pair] -= 1
            removed_conns.append(list(pair))
    extra = Counter({pair: count for pair, count in surplus.items() if count > 0})
    # Added connections keep edited order; take the trailing occurrences
    # of each surplus pair so an append round-trips exactly.
    remaining = Counter(extra)
    added_rev = []
    for pair in reversed(edited_pairs):
        if remaining.get(pair, 0) > 0:
            remaining[pair] -= 1
            added_rev.append(list(pair))
    added_conns = list(reversed(added_rev))

    diff = {
        "kind": DIFF_KIND,
        "format": DIFF_FORMAT_VERSION,
        "base_name": base["name"],
        "name": edited["name"],
        "library_fingerprint": fingerprint,
        "added_gates": [_gate_entry(g) for g in added],
        "removed_gates": removed,
        "modified_gates": [_gate_entry(g) for g in modified],
        "added_connections": added_conns,
        "removed_connections": removed_conns,
    }
    base_ports = _port_triples(base)
    edited_ports = _port_triples(edited)
    # Ports bound to removed gates drop implicitly on apply; only carry
    # the edited list when it differs from that implicit remap.
    implied = [p for p in base_ports if p["gate"] not in set(removed)]
    if edited_ports != implied:
        diff["ports"] = edited_ports
    return diff


def diff_netlists(base, edited):
    """Diff two live :class:`~repro.netlist.netlist.Netlist` objects.

    Refuses (:class:`NetlistError`) when the two netlists are bound to
    libraries with different fingerprints — their bias/area vectors
    would not be comparable gate for gate.
    """
    if base.library is None or edited.library is None:
        raise NetlistError("cannot diff netlists without a bound cell library")
    base_fp = library_fingerprint(base.library)
    edited_fp = library_fingerprint(edited.library)
    if base_fp != edited_fp:
        raise NetlistError(
            f"refusing to diff {base.name!r} against {edited.name!r}: "
            f"library fingerprints differ ({base_fp[:12]} != {edited_fp[:12]}); "
            "re-serialize both netlists against one library revision"
        )
    return netlist_diff(netlist_to_dict(base), netlist_to_dict(edited), base_fp)


def validate_diff(data):
    """Raise :class:`NetlistError` unless ``data`` is a well-formed diff."""
    if not isinstance(data, dict) or data.get("kind") != DIFF_KIND:
        raise NetlistError("not a serialized netlist diff")
    if data.get("format") != DIFF_FORMAT_VERSION:
        raise NetlistError(
            f"unsupported netlist diff format {data.get('format')!r} "
            f"(this build reads {DIFF_FORMAT_VERSION})"
        )
    for field in ("base_name", "name", "library_fingerprint"):
        if not isinstance(data.get(field), str) or not data[field]:
            raise NetlistError(f"netlist diff is missing {field!r}")
    for field in ("added_gates", "modified_gates"):
        entries = data.get(field)
        if not isinstance(entries, list):
            raise NetlistError(f"netlist diff field {field!r} must be a list")
        for entry in entries:
            if not isinstance(entry, dict) or not isinstance(entry.get("name"), str) \
                    or not isinstance(entry.get("cell"), str):
                raise NetlistError(
                    f"netlist diff field {field!r} carries a malformed gate entry"
                )
    if not isinstance(data.get("removed_gates"), list) or any(
        not isinstance(name, str) for name in data["removed_gates"]
    ):
        raise NetlistError("netlist diff field 'removed_gates' must be a list of names")
    for field in ("added_connections", "removed_connections"):
        pairs = data.get(field)
        if not isinstance(pairs, list):
            raise NetlistError(f"netlist diff field {field!r} must be a list")
        for pair in pairs:
            if (
                not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not all(isinstance(name, str) for name in pair)
            ):
                raise NetlistError(
                    f"netlist diff field {field!r} must hold [driver, sink] name pairs"
                )
    if "ports" in data:
        if not isinstance(data["ports"], list):
            raise NetlistError("netlist diff field 'ports' must be a list")
        for port in data["ports"]:
            if not isinstance(port, dict) or not isinstance(port.get("name"), str):
                raise NetlistError("netlist diff carries a malformed port entry")
    return data


def is_empty_diff(diff):
    """True when applying ``diff`` is the identity edit."""
    return (
        not diff["added_gates"]
        and not diff["removed_gates"]
        and not diff["modified_gates"]
        and not diff["added_connections"]
        and not diff["removed_connections"]
        and "ports" not in diff
    )


def diff_key(diff):
    """Content address of a diff (sha256 over its canonical JSON)."""
    blob = json.dumps(diff, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def touched_gate_names(diff):
    """Gate names the edit perturbs, in deterministic sorted order.

    Added and modified gates, plus every endpoint of an added or
    removed connection.  Removed gates are *not* touched — they no
    longer exist — but their former neighbors are (through the removed
    connections that referenced them).
    """
    names = set()
    for entry in diff["added_gates"]:
        names.add(entry["name"])
    for entry in diff["modified_gates"]:
        names.add(entry["name"])
    for pair in diff["added_connections"]:
        names.update(pair)
    for pair in diff["removed_connections"]:
        names.update(pair)
    names -= set(diff["removed_gates"])
    return sorted(names)


def apply_diff(base, diff):
    """Apply ``diff`` to serialized ``base``; returns the edited dict.

    Gate and edge order follow the canonical append order described in
    the module docstring, so the result is deterministic — the same
    ``(base, diff)`` pair always produces the identical serialized
    netlist, which is what makes warm results content-addressable.

    The returned dict *shares* unmodified gate/edge/port entries with
    ``base`` and ``diff`` rather than deep-copying them (copying
    dominated apply time on large netlists).  Treat the result as
    read-only, or copy before mutating.
    """
    _require_netlist_dict(base, "diff base")
    validate_diff(diff)
    if diff["base_name"] != base["name"]:
        raise NetlistError(
            f"diff targets base netlist {diff['base_name']!r}, got {base['name']!r}"
        )

    base_names = [gate["name"] for gate in base["gates"]]
    base_set = set(base_names)
    if len(base_set) != len(base_names):
        raise NetlistError(f"diff base {base['name']!r} has duplicate gate names")
    removed = set(diff["removed_gates"])
    modified = {entry["name"]: entry for entry in diff["modified_gates"]}
    for name in sorted(removed | set(modified)):
        if name not in base_set:
            raise NetlistError(
                f"diff edits gate {name!r} which does not exist in base "
                f"{base['name']!r}"
            )

    gates = []
    for gate in base["gates"]:
        if gate["name"] in removed:
            continue
        # Entries are shared, not copied: a validated base entry is
        # already in serialized shape, and per-gate copying was the
        # hottest line of ECO edit application.  Nothing downstream
        # mutates gate entries (see docstring).
        gates.append(modified.get(gate["name"], gate))
    for entry in diff["added_gates"]:
        if entry["name"] in base_set and entry["name"] not in removed:
            raise NetlistError(
                f"diff adds gate {entry['name']!r} which already exists in base"
            )
        gates.append(entry)
    index = {}
    for position, gate in enumerate(gates):
        if gate["name"] in index:
            raise NetlistError(f"diff produces duplicate gate name {gate['name']!r}")
        index[gate["name"]] = position

    if not removed and not diff["removed_connections"]:
        # Fast path for the dominant ECO shape (retype/move/add only):
        # no gate leaves, so every base gate keeps its index and the
        # base edge list passes through untouched — skipping the
        # name-pair round trip that dominates apply time on large
        # netlists.  Only the added connections need name resolution.
        edges = list(base["edges"])
        for u_name, v_name in diff["added_connections"]:
            if u_name not in index or v_name not in index:
                missing = u_name if u_name not in index else v_name
                raise NetlistError(
                    f"diff connection references unknown gate {missing!r}"
                )
            edges.append([index[u_name], index[v_name]])
    else:
        to_remove = Counter(tuple(pair) for pair in diff["removed_connections"])
        pairs = []
        for pair in _edge_name_pairs(base):
            if to_remove.get(pair, 0) > 0:
                to_remove[pair] -= 1
                continue
            if pair[0] in removed or pair[1] in removed:
                raise NetlistError(
                    f"diff removes gate(s) of connection {pair[0]!r} -> {pair[1]!r} "
                    "without removing the connection"
                )
            pairs.append(pair)
        leftover = +to_remove
        if leftover:
            pair = next(iter(leftover))
            raise NetlistError(
                f"diff removes connection {pair[0]!r} -> {pair[1]!r} "
                "which does not exist in base"
            )
        for pair in diff["added_connections"]:
            pairs.append(tuple(pair))

        edges = []
        for u_name, v_name in pairs:
            if u_name not in index or v_name not in index:
                missing = u_name if u_name not in index else v_name
                raise NetlistError(
                    f"diff connection references unknown gate {missing!r}"
                )
            edges.append([index[u_name], index[v_name]])

    if "ports" not in diff and not removed:
        # Same fast path: indices unchanged, base ports pass through.
        # Entry lists/dicts are shared with base, never mutated here.
        ports = list(base.get("ports", ()))
        return {
            "format": NETLIST_FORMAT_VERSION,
            "kind": "netlist",
            "name": diff["name"],
            "library": base.get("library"),
            "gates": gates,
            "edges": edges,
            "ports": ports,
        }
    if "ports" in diff:
        port_triples = diff["ports"]
    else:
        port_triples = [
            triple for triple in _port_triples(base)
            if triple["gate"] is None or triple["gate"] not in removed
        ]
    ports = []
    for triple in port_triples:
        gate = triple.get("gate")
        if gate is not None and gate not in index:
            raise NetlistError(
                f"diff port {triple['name']!r} references unknown gate {gate!r}"
            )
        ports.append({
            "name": triple["name"],
            "direction": triple["direction"],
            "gate": None if gate is None else index[gate],
        })

    return {
        "format": NETLIST_FORMAT_VERSION,
        "kind": "netlist",
        "name": diff["name"],
        "library": base.get("library"),
        "gates": gates,
        "edges": edges,
        "ports": ports,
    }
