"""NetworkX interoperability.

Exports a netlist (optionally with a partition) as a
:class:`networkx.DiGraph` so users can lean on the networkx ecosystem
for analyses this package does not ship (centrality, drawing, custom
community detection), and imports a compatible DiGraph back.

Node attributes: ``cell`` (cell name), ``bias_ma``, ``area_um2``,
``x_um``/``y_um`` when placed, and ``plane`` when a partition is given.
Graph attributes: ``name`` and ``library`` (library name).
"""

import math

from repro.netlist.netlist import Netlist
from repro.utils.errors import NetlistError


def to_networkx(netlist, result=None):
    """Convert a netlist (and optional partition result) to a DiGraph."""
    import networkx as nx

    graph = nx.DiGraph(name=netlist.name, library=getattr(netlist.library, "name", None))
    labels = None
    if result is not None:
        if result.netlist is not netlist and result.labels.shape[0] != netlist.num_gates:
            raise NetlistError("partition result does not match the netlist")
        labels = result.labels
    for gate in netlist.gates:
        attributes = {
            "cell": gate.cell.name,
            "bias_ma": gate.bias_ma,
            "area_um2": gate.area_um2,
        }
        if gate.placed:
            attributes["x_um"] = gate.x_um
            attributes["y_um"] = gate.y_um
        if labels is not None:
            attributes["plane"] = int(labels[gate.index])
        graph.add_node(gate.name, **attributes)
    for u, v in netlist.edges:
        graph.add_edge(netlist.gates[u].name, netlist.gates[v].name)
    for port in netlist.ports.values():
        graph.graph.setdefault("ports", {})[port.name] = {
            "direction": port.direction.value,
            "gate": netlist.gates[port.gate].name if port.gate is not None else None,
        }
    return graph


def from_networkx(graph, library, name=None):
    """Rebuild a :class:`Netlist` from a DiGraph produced by
    :func:`to_networkx` (or any DiGraph whose nodes carry a ``cell``
    attribute naming a library cell)."""
    netlist = Netlist(name or graph.graph.get("name", "networkx"), library=library)
    for node, attributes in graph.nodes(data=True):
        cell_name = attributes.get("cell")
        if cell_name is None:
            raise NetlistError(f"node {node!r} has no 'cell' attribute")
        if cell_name not in library:
            raise NetlistError(f"node {node!r}: unknown cell {cell_name!r}")
        netlist.add_gate(
            str(node),
            library[cell_name],
            x_um=attributes.get("x_um", math.nan),
            y_um=attributes.get("y_um", math.nan),
        )
    for u, v in graph.edges():
        netlist.connect(str(u), str(v))
    for port_name, port_info in graph.graph.get("ports", {}).items():
        netlist.add_port(port_name, port_info["direction"], port_info.get("gate"))
    return netlist
