"""Whole-netlist JSON serialization.

:mod:`repro.harness.io` persists *partitions* (label vectors referencing
a netlist by name); this module persists the netlist body itself —
gates, connections, ports and placement — so the artifact cache
(:mod:`repro.cache`) can skip re-synthesizing a benchmark entirely.

Cells are referenced by name and re-bound against a
:class:`~repro.netlist.library.CellLibrary` on load;
:func:`library_fingerprint` hashes every electrical/geometric cell
parameter so a cache key built from it changes whenever the library
does (a netlist deserialized against a different library would silently
change ``b_i``/``a_i``).
"""

import hashlib
import json
import math

from repro.netlist.netlist import Netlist
from repro.utils.errors import NetlistError

#: Serialization format version; bump on breaking layout changes.
NETLIST_FORMAT_VERSION = 1


def library_fingerprint(library):
    """Stable hex digest of every cell parameter in a library.

    Two libraries with the same fingerprint produce identical netlists
    from :func:`netlist_from_dict` (cell lookup is by name; bias, area
    and port lists all enter the digest).
    """
    payload = [
        (
            cell.name,
            cell.kind.value,
            cell.bias_ma,
            cell.width_um,
            cell.height_um,
            cell.jj_count,
            list(cell.inputs),
            list(cell.outputs),
            cell.clocked,
        )
        for cell in sorted(library, key=lambda c: c.name)
    ]
    blob = json.dumps([library.name, payload], sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _coord(value):
    """NaN-safe placement coordinate for strict-JSON round trips."""
    return None if value is None or math.isnan(value) else float(value)


def netlist_to_dict(netlist):
    """Serialize a :class:`~repro.netlist.netlist.Netlist` to plain data."""
    return {
        "format": NETLIST_FORMAT_VERSION,
        "kind": "netlist",
        "name": netlist.name,
        "library": netlist.library.name if netlist.library is not None else None,
        "gates": [
            {
                "name": gate.name,
                "cell": gate.cell.name,
                "x_um": _coord(gate.x_um),
                "y_um": _coord(gate.y_um),
                **({"attributes": gate.attributes} if gate.attributes else {}),
            }
            for gate in netlist.gates
        ],
        "edges": [[int(u), int(v)] for u, v in netlist.edges],
        "ports": [
            {"name": port.name, "direction": port.direction.value, "gate": port.gate}
            for port in netlist.ports.values()
        ],
    }


def validate_netlist_dict(data):
    """Structural validation of a serialized netlist dict.

    Catches the malformed payloads a client can actually send — duplicate
    gate names, connections referencing gates that do not exist, ports
    bound to unknown gates — and reports them as a single clear
    :class:`NetlistError` instead of the KeyError/IndexError that used
    to escape from deep inside graph construction.  Returns ``data`` so
    callers can validate-and-pass-through in one expression.
    """
    if not isinstance(data, dict) or data.get("kind") != "netlist":
        raise NetlistError("not a serialized netlist")
    if data.get("format") != NETLIST_FORMAT_VERSION:
        raise NetlistError(
            f"unsupported netlist format {data.get('format')} "
            f"(this build reads {NETLIST_FORMAT_VERSION})"
        )
    if not isinstance(data.get("name"), str) or not data["name"]:
        raise NetlistError("serialized netlist is missing its name")
    gates = data.get("gates")
    if not isinstance(gates, list):
        raise NetlistError(f"serialized netlist {data['name']!r}: 'gates' must be a list")
    seen = set()
    for position, entry in enumerate(gates):
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise NetlistError(
                f"serialized netlist {data['name']!r}: gate #{position} is malformed"
            )
        if not isinstance(entry.get("cell"), str):
            raise NetlistError(
                f"serialized netlist {data['name']!r}: gate {entry['name']!r} "
                "has no cell reference"
            )
        if entry["name"] in seen:
            raise NetlistError(
                f"serialized netlist {data['name']!r} has duplicate gate "
                f"name {entry['name']!r}"
            )
        seen.add(entry["name"])
    num_gates = len(gates)
    edges = data.get("edges")
    if not isinstance(edges, list):
        raise NetlistError(f"serialized netlist {data['name']!r}: 'edges' must be a list")
    for position, pair in enumerate(edges):
        if (
            not isinstance(pair, (list, tuple)) or len(pair) != 2
            or any(isinstance(end, bool) or not isinstance(end, int) for end in pair)
        ):
            raise NetlistError(
                f"serialized netlist {data['name']!r}: connection #{position} "
                "must be a [driver, sink] pair of gate indices"
            )
        for end in pair:
            if not 0 <= end < num_gates:
                raise NetlistError(
                    f"serialized netlist {data['name']!r}: connection #{position} "
                    f"references unknown gate index {end} "
                    f"(netlist has {num_gates} gates)"
                )
    ports = data.get("ports", [])
    if not isinstance(ports, list):
        raise NetlistError(f"serialized netlist {data['name']!r}: 'ports' must be a list")
    for entry in ports:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            raise NetlistError(
                f"serialized netlist {data['name']!r} carries a malformed port entry"
            )
        gate = entry.get("gate")
        if gate is not None and (
            isinstance(gate, bool) or not isinstance(gate, int)
            or not 0 <= gate < num_gates
        ):
            raise NetlistError(
                f"serialized netlist {data['name']!r}: port {entry['name']!r} "
                f"references unknown gate {gate!r}"
            )
    return data


def netlist_from_dict(data, library, validate=True):
    """Rebuild a netlist from :func:`netlist_to_dict` output.

    Gate order, edge order and port order are preserved exactly, so the
    rebuilt netlist's optimizer vectors (edge array, bias, area) are
    bitwise identical to the original's — positional labels, saved
    partitions and fixed-seed solver runs all transfer unchanged.

    The dict is passed through :func:`validate_netlist_dict` first, so
    malformed payloads fail with one clear :class:`NetlistError`.
    ``validate=False`` skips that pass for dicts a machine produced and
    already guarantees well-formed (the service validates request
    netlists at the API boundary; :func:`repro.netlist.diff.apply_diff`
    output is structurally sound by construction) — the hot path of
    incremental (ECO) re-partitioning, where validation would otherwise
    rival the solve itself.
    """
    if validate:
        validate_netlist_dict(data)
    netlist = Netlist(data["name"], library=library)
    cells = {}
    nan = float("nan")

    def resolve_cell(cell_name):
        cell = cells.get(cell_name)
        if cell is None:
            if cell_name not in library:
                raise NetlistError(
                    f"serialized netlist {data['name']!r} uses cell {cell_name!r} "
                    f"missing from library {library.name!r}"
                )
            cell = cells[cell_name] = library[cell_name]
        return cell

    # Bulk gate/edge load: the per-item checks of add_gate()/connect()
    # are either redundant with the validator or repeated here once,
    # and the per-mutation vector-cache invalidation collapses to one —
    # deserialization of multi-thousand-gate payloads was dominated by
    # exactly that overhead.
    netlist.extend_gates(
        (
            entry["name"],
            resolve_cell(entry["cell"]),
            nan if entry.get("x_um") is None else float(entry["x_um"]),
            nan if entry.get("y_um") is None else float(entry["y_um"]),
            dict(entry.get("attributes", ())),
        )
        for entry in data["gates"]
    )
    netlist.extend_connections(data["edges"], allow_duplicate=True)
    for entry in data.get("ports", ()):
        netlist.add_port(entry["name"], entry["direction"], entry.get("gate"))
    return netlist


def save_netlist(netlist, path):
    """Write a netlist to a JSON file; returns the path."""
    with open(path, "w") as handle:
        json.dump(netlist_to_dict(netlist), handle)
    return path


def load_netlist(path, library):
    """Read a netlist JSON file back against ``library``."""
    with open(path) as handle:
        return netlist_from_dict(json.load(handle), library)
