"""Whole-netlist JSON serialization.

:mod:`repro.harness.io` persists *partitions* (label vectors referencing
a netlist by name); this module persists the netlist body itself —
gates, connections, ports and placement — so the artifact cache
(:mod:`repro.cache`) can skip re-synthesizing a benchmark entirely.

Cells are referenced by name and re-bound against a
:class:`~repro.netlist.library.CellLibrary` on load;
:func:`library_fingerprint` hashes every electrical/geometric cell
parameter so a cache key built from it changes whenever the library
does (a netlist deserialized against a different library would silently
change ``b_i``/``a_i``).
"""

import hashlib
import json
import math

from repro.netlist.netlist import Netlist
from repro.utils.errors import NetlistError

#: Serialization format version; bump on breaking layout changes.
NETLIST_FORMAT_VERSION = 1


def library_fingerprint(library):
    """Stable hex digest of every cell parameter in a library.

    Two libraries with the same fingerprint produce identical netlists
    from :func:`netlist_from_dict` (cell lookup is by name; bias, area
    and port lists all enter the digest).
    """
    payload = [
        (
            cell.name,
            cell.kind.value,
            cell.bias_ma,
            cell.width_um,
            cell.height_um,
            cell.jj_count,
            list(cell.inputs),
            list(cell.outputs),
            cell.clocked,
        )
        for cell in sorted(library, key=lambda c: c.name)
    ]
    blob = json.dumps([library.name, payload], sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _coord(value):
    """NaN-safe placement coordinate for strict-JSON round trips."""
    return None if value is None or math.isnan(value) else float(value)


def netlist_to_dict(netlist):
    """Serialize a :class:`~repro.netlist.netlist.Netlist` to plain data."""
    return {
        "format": NETLIST_FORMAT_VERSION,
        "kind": "netlist",
        "name": netlist.name,
        "library": netlist.library.name if netlist.library is not None else None,
        "gates": [
            {
                "name": gate.name,
                "cell": gate.cell.name,
                "x_um": _coord(gate.x_um),
                "y_um": _coord(gate.y_um),
                **({"attributes": gate.attributes} if gate.attributes else {}),
            }
            for gate in netlist.gates
        ],
        "edges": [[int(u), int(v)] for u, v in netlist.edges],
        "ports": [
            {"name": port.name, "direction": port.direction.value, "gate": port.gate}
            for port in netlist.ports.values()
        ],
    }


def netlist_from_dict(data, library):
    """Rebuild a netlist from :func:`netlist_to_dict` output.

    Gate order, edge order and port order are preserved exactly, so the
    rebuilt netlist's optimizer vectors (edge array, bias, area) are
    bitwise identical to the original's — positional labels, saved
    partitions and fixed-seed solver runs all transfer unchanged.
    """
    if data.get("kind") != "netlist":
        raise NetlistError("not a serialized netlist")
    if data.get("format") != NETLIST_FORMAT_VERSION:
        raise NetlistError(
            f"unsupported netlist format {data.get('format')} "
            f"(this build reads {NETLIST_FORMAT_VERSION})"
        )
    netlist = Netlist(data["name"], library=library)
    for entry in data["gates"]:
        cell_name = entry["cell"]
        if cell_name not in library:
            raise NetlistError(
                f"serialized netlist {data['name']!r} uses cell {cell_name!r} "
                f"missing from library {library.name!r}"
            )
        x = entry.get("x_um")
        y = entry.get("y_um")
        netlist.add_gate(
            entry["name"],
            library[cell_name],
            float("nan") if x is None else float(x),
            float("nan") if y is None else float(y),
            **entry.get("attributes", {}),
        )
    for u, v in data["edges"]:
        netlist.connect(int(u), int(v), allow_duplicate=True)
    for entry in data.get("ports", ()):
        netlist.add_port(entry["name"], entry["direction"], entry.get("gate"))
    return netlist


def save_netlist(netlist, path):
    """Write a netlist to a JSON file; returns the path."""
    with open(path, "w") as handle:
        json.dump(netlist_to_dict(netlist), handle)
    return path


def load_netlist(path, library):
    """Read a netlist JSON file back against ``library``."""
    with open(path) as handle:
        return netlist_from_dict(json.load(handle), library)
