"""Netlist validation.

Two layers of checks:

* :func:`validate_netlist` — structural invariants every netlist must
  satisfy (consistent indices, no dangling ports).  Violations raise
  :class:`~repro.utils.errors.NetlistError`.
* :func:`check_sfq_rules` — SFQ-specific design rules (fanout only via
  splitters, clocked gates, merger fan-in).  Violations are returned as
  :class:`ValidationIssue` records so callers can treat them as warnings
  for hand-written netlists and as hard errors after synthesis.
"""

from dataclasses import dataclass

from repro.netlist.cell import CellKind
from repro.netlist.graph import fanout_counts, fanin_counts, is_acyclic
from repro.utils.errors import NetlistError


@dataclass(frozen=True)
class ValidationIssue:
    """One SFQ design-rule violation."""

    rule: str
    gate: str
    message: str

    def __str__(self):
        return f"[{self.rule}] {self.gate}: {self.message}"


def validate_netlist(netlist):
    """Check structural invariants; raise :class:`NetlistError` on failure.

    Returns the netlist so it can be used in fluent style.
    """
    num_gates = netlist.num_gates
    names = set()
    for gate in netlist.gates:
        if gate.name in names:
            raise NetlistError(f"duplicate gate name {gate.name!r}")
        names.add(gate.name)
    for u, v in netlist.edges:
        if not (0 <= u < num_gates and 0 <= v < num_gates):
            raise NetlistError(f"edge ({u}, {v}) out of range")
        if u == v:
            raise NetlistError(f"self-loop on gate index {u}")
    for port in netlist.ports.values():
        if port.gate is not None and not 0 <= port.gate < num_gates:
            raise NetlistError(f"port {port.name!r} bound to invalid gate {port.gate}")
    return netlist


def check_sfq_rules(netlist, require_acyclic=True):
    """Check SFQ design rules; return a list of :class:`ValidationIssue`.

    Rules checked:

    * ``fanout``: a gate may drive at most ``cell.max_fanout`` sinks
      (1 for ordinary cells, 2 for splitters) — SFQ pulses cannot be
      passively forked;
    * ``fanin``: a gate may receive at most ``cell.num_inputs``
      connections (clock lines are modeled separately);
    * ``dummy-signal``: dummy bias structures must carry no signal
      connections;
    * ``acyclic``: synthesized SFQ netlists are gate-level pipelines and
      must be combinationally acyclic (optional).
    """
    issues = []
    fanout = fanout_counts(netlist)
    fanin = fanin_counts(netlist)
    for gate in netlist.gates:
        max_out = gate.cell.max_fanout
        if fanout[gate.index] > max_out:
            issues.append(
                ValidationIssue(
                    rule="fanout",
                    gate=gate.name,
                    message=f"drives {int(fanout[gate.index])} sinks, cell {gate.cell.name} allows {max_out}",
                )
            )
        max_in = gate.cell.num_inputs
        if fanin[gate.index] > max_in:
            issues.append(
                ValidationIssue(
                    rule="fanin",
                    gate=gate.name,
                    message=f"receives {int(fanin[gate.index])} connections, cell {gate.cell.name} has {max_in} inputs",
                )
            )
        if gate.cell.kind is CellKind.DUMMY and (fanout[gate.index] or fanin[gate.index]):
            issues.append(
                ValidationIssue(
                    rule="dummy-signal",
                    gate=gate.name,
                    message="dummy bias structure must not carry signal connections",
                )
            )
    if require_acyclic and not is_acyclic(netlist):
        issues.append(
            ValidationIssue(
                rule="acyclic",
                gate="<netlist>",
                message="directed connection graph contains a cycle",
            )
        )
    return issues
