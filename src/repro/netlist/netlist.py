"""Gate-level netlist representation.

A :class:`Netlist` is the unit of work for the whole package: the circuit
generators and the DEF parser produce one, the synthesis flow transforms
one, and the partitioner consumes one.

Modeling choices (matching Section IV-A of the paper):

* A netlist is a set of *gates* plus a set of directed 2-pin
  *connections* ``(driver gate, sink gate)``.  SFQ nets are point-to-point
  after splitter insertion, so the 2-pin model is exact for synthesized
  circuits and a standard conservative approximation otherwise.
* Primary inputs/outputs are *ports*, not gates.  The paper places I/O
  circuits on the chip perimeter sharing the common ground, so port
  connections do not contribute to the inter-plane connection set ``E``.
* Per-gate bias current ``b_i`` and area ``a_i`` come from the gate's
  :class:`~repro.netlist.cell.CellType`.
"""

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.netlist.cell import CellType
from repro.utils.errors import NetlistError
from repro.utils.units import um2_to_mm2


class PortDirection(Enum):
    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Port:
    """A primary input or output of the circuit.

    ``gate`` is the index of the gate this port connects to (the sink gate
    fed by an input port, or the driver gate observed by an output port);
    ``None`` for unbound ports.
    """

    name: str
    direction: PortDirection
    gate: int = None


@dataclass(slots=True)
class Gate:
    """One placed gate instance.

    ``x_um``/``y_um`` hold the lower-left placement coordinate when known
    (filled by the placement step or the DEF parser, ``nan`` otherwise).
    """

    name: str
    cell: CellType
    index: int
    x_um: float = float("nan")
    y_um: float = float("nan")
    attributes: dict = field(default_factory=dict)

    @property
    def bias_ma(self):
        return self.cell.bias_ma

    @property
    def area_um2(self):
        return self.cell.area_um2

    @property
    def placed(self):
        return not (np.isnan(self.x_um) or np.isnan(self.y_um))

    def __str__(self):
        return f"{self.name}:{self.cell.name}"


class Netlist:
    """A mutable gate-level netlist with 2-pin directed connections."""

    def __init__(self, name, library=None):
        self.name = name
        self.library = library
        self._gates = []
        self._gate_index = {}
        # Per-gate b_i / a_i accumulated at insertion (gates are
        # append-only and cells immutable), so the optimizer vectors
        # build as one ``np.array(list)`` with no per-gate property
        # chain — that chain dominated netlist construction time on the
        # incremental (ECO) path.
        self._bias_ma = []
        self._area_um2 = []
        self._edges = []
        self._edge_set = set()
        self._ports = {}
        # Lazily-built optimizer vectors (edge array, bias, area); every
        # structural mutation drops them.  Cached arrays are handed out
        # read-only so no caller can corrupt a shared copy.
        self._vector_cache = {}

    def _invalidate_vectors(self):
        self._vector_cache.clear()

    def _cached_vector(self, key, build):
        array = self._vector_cache.get(key)
        if array is None:
            array = build()
            array.flags.writeable = False
            self._vector_cache[key] = array
        return array

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_gate(self, name, cell, x_um=float("nan"), y_um=float("nan"), **attributes):
        """Add a gate and return it.

        Raises :class:`NetlistError` on duplicate names or if ``cell`` is
        not a :class:`CellType`.
        """
        if name in self._gate_index:
            raise NetlistError(f"duplicate gate name {name!r} in netlist {self.name!r}")
        if not isinstance(cell, CellType):
            raise NetlistError(f"gate {name!r}: cell must be a CellType, got {type(cell).__name__}")
        gate = Gate(name=name, cell=cell, index=len(self._gates), x_um=x_um, y_um=y_um, attributes=dict(attributes))
        self._gates.append(gate)
        self._gate_index[name] = gate.index
        self._bias_ma.append(cell.bias_ma)
        self._area_um2.append(cell.area_um2)
        self._invalidate_vectors()
        return gate

    def connect(self, driver, sink, allow_duplicate=False):
        """Add a directed connection from ``driver`` to ``sink``.

        Both endpoints may be a gate name, a gate index, or a
        :class:`Gate`.  Self-loops are rejected (an SFQ gate never feeds
        itself combinationally).  Duplicate edges are rejected unless
        ``allow_duplicate`` is set; the paper's connection set ``E`` is a
        multiset in principle, but synthesized SFQ netlists never produce
        parallel 2-pin edges.
        """
        u = self._resolve(driver)
        v = self._resolve(sink)
        if u == v:
            raise NetlistError(f"self-loop on gate {self._gates[u].name!r}")
        if not allow_duplicate and (u, v) in self._edge_set:
            raise NetlistError(
                f"duplicate connection {self._gates[u].name!r} -> {self._gates[v].name!r}"
            )
        self._edges.append((u, v))
        self._edge_set.add((u, v))
        self._invalidate_vectors()
        return (u, v)

    def extend_gates(self, entries):
        """Bulk :meth:`add_gate` over ``(name, cell, x_um, y_um, attrs)``.

        The deserialization fast path: one duplicate/type check pass,
        one vector-cache invalidation.  Raises on the first offending
        entry; earlier entries are already appended (callers construct
        fresh netlists, discarded on error).
        """
        gates = self._gates
        gate_index = self._gate_index
        bias_ma = self._bias_ma
        area_um2 = self._area_um2
        for name, cell, x_um, y_um, attributes in entries:
            if name in gate_index:
                raise NetlistError(
                    f"duplicate gate name {name!r} in netlist {self.name!r}"
                )
            if not isinstance(cell, CellType):
                raise NetlistError(
                    f"gate {name!r}: cell must be a CellType, got {type(cell).__name__}"
                )
            gate = Gate(name, cell, len(gates), x_um, y_um, attributes)
            gates.append(gate)
            gate_index[name] = gate.index
            bias_ma.append(cell.bias_ma)
            area_um2.append(cell.area_um2)
        self._invalidate_vectors()
        return gates

    def extend_connections(self, pairs, allow_duplicate=False):
        """Bulk :meth:`connect` over gate-index pairs.

        The fast path for deserialization: endpoints must already be
        integer gate indices (names are not resolved here), the
        self-loop/duplicate policies match :meth:`connect`, and the
        vector cache is invalidated once instead of per edge.  Raises on
        the first offending pair with the same message ``connect`` would
        have produced; pairs before it are already appended (callers are
        constructing a fresh netlist, which is discarded on error).
        """
        pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
        if pairs.size:
            if pairs.min() < 0 or pairs.max() >= len(self._gates):
                bad = pairs[(pairs < 0).any(axis=1) | (pairs >= len(self._gates)).any(axis=1)][0]
                raise NetlistError(
                    f"gate index {int(bad.max())} out of range (0..{len(self._gates) - 1})"
                )
            loops = pairs[:, 0] == pairs[:, 1]
            if loops.any():
                u = int(pairs[np.flatnonzero(loops)[0], 0])
                raise NetlistError(f"self-loop on gate {self._gates[u].name!r}")
        new_edges = list(map(tuple, pairs.tolist()))
        if not allow_duplicate:
            for u, v in new_edges:
                if (u, v) in self._edge_set:
                    self._invalidate_vectors()
                    raise NetlistError(
                        f"duplicate connection {self._gates[u].name!r} -> "
                        f"{self._gates[v].name!r}"
                    )
                self._edge_set.add((u, v))
                self._edges.append((u, v))
        else:
            self._edges.extend(new_edges)
            self._edge_set.update(new_edges)
        self._invalidate_vectors()
        return new_edges

    def add_port(self, name, direction, gate=None):
        """Declare a primary input/output, optionally bound to a gate."""
        if name in self._ports:
            raise NetlistError(f"duplicate port name {name!r}")
        gate_idx = None if gate is None else self._resolve(gate)
        port = Port(name=name, direction=PortDirection(direction), gate=gate_idx)
        self._ports[name] = port
        return port

    def _resolve(self, gate_ref):
        """Map a gate name / index / Gate object to a gate index."""
        if isinstance(gate_ref, Gate):
            if gate_ref.index >= len(self._gates) or self._gates[gate_ref.index] is not gate_ref:
                raise NetlistError(f"gate {gate_ref.name!r} does not belong to netlist {self.name!r}")
            return gate_ref.index
        if isinstance(gate_ref, (int, np.integer)):
            idx = int(gate_ref)
            if not 0 <= idx < len(self._gates):
                raise NetlistError(f"gate index {idx} out of range (0..{len(self._gates) - 1})")
            return idx
        if isinstance(gate_ref, str):
            try:
                return self._gate_index[gate_ref]
            except KeyError:
                raise NetlistError(f"unknown gate {gate_ref!r} in netlist {self.name!r}") from None
        raise NetlistError(f"cannot resolve gate reference {gate_ref!r}")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def gates(self):
        """The gate list (index order)."""
        return list(self._gates)

    @property
    def edges(self):
        """Directed connections as a list of ``(driver_idx, sink_idx)``."""
        return list(self._edges)

    @property
    def ports(self):
        return dict(self._ports)

    @property
    def num_gates(self):
        return len(self._gates)

    @property
    def num_connections(self):
        return len(self._edges)

    def gate(self, gate_ref):
        """Look up a gate by name, index or identity."""
        return self._gates[self._resolve(gate_ref)]

    def has_gate(self, name):
        return name in self._gate_index

    def has_edge(self, driver, sink):
        return (self._resolve(driver), self._resolve(sink)) in self._edge_set

    def input_ports(self):
        return [p for p in self._ports.values() if p.direction is PortDirection.INPUT]

    def output_ports(self):
        return [p for p in self._ports.values() if p.direction is PortDirection.OUTPUT]

    # ------------------------------------------------------------------
    # vectors for the optimizer (paper's b_i, a_i per gate)
    # ------------------------------------------------------------------
    def bias_vector_ma(self):
        """Per-gate bias currents ``b_i`` in mA, shape ``(G,)``.

        Cached (read-only) until the netlist gains a gate or an edge;
        the partitioner and metrics layers call this on every restart.
        """
        return self._cached_vector(
            "bias", lambda: np.array(self._bias_ma, dtype=float)
        )

    def area_vector_um2(self):
        """Per-gate areas ``a_i`` in um^2, shape ``(G,)`` (cached, read-only)."""
        return self._cached_vector(
            "area", lambda: np.array(self._area_um2, dtype=float)
        )

    def area_vector_mm2(self):
        """Per-gate areas ``a_i`` in mm^2, shape ``(G,)`` (cached, read-only)."""
        return self._cached_vector("area_mm2", lambda: um2_to_mm2(self.area_vector_um2()))

    def edge_array(self):
        """Connections as an ``(|E|, 2)`` int array (empty-safe).

        Cached (read-only) until the netlist mutates.
        """
        return self._cached_vector(
            "edges",
            lambda: np.asarray(self._edges, dtype=np.intp)
            if self._edges
            else np.zeros((0, 2), dtype=np.intp),
        )

    # ------------------------------------------------------------------
    # aggregate circuit properties (Table I columns B_cir, A_cir)
    # ------------------------------------------------------------------
    @property
    def total_bias_ma(self):
        """Total bias current requirement ``B_cir`` in mA."""
        return float(self.bias_vector_ma().sum())

    @property
    def total_area_mm2(self):
        """Total gate area ``A_cir`` in mm^2."""
        return float(self.area_vector_mm2().sum())

    def cell_histogram(self):
        """Mapping ``cell name -> instance count``."""
        histogram = {}
        for gate in self._gates:
            histogram[gate.cell.name] = histogram.get(gate.cell.name, 0) + 1
        return histogram

    def copy(self, name=None):
        """Deep-ish copy (cells are immutable and shared)."""
        clone = Netlist(name or self.name, library=self.library)
        for gate in self._gates:
            clone.add_gate(gate.name, gate.cell, gate.x_um, gate.y_um, **gate.attributes)
        for u, v in self._edges:
            clone.connect(u, v)
        for port in self._ports.values():
            clone.add_port(port.name, port.direction, port.gate)
        return clone

    def __repr__(self):
        return (
            f"Netlist({self.name!r}, gates={self.num_gates}, "
            f"connections={self.num_connections}, "
            f"B_cir={self.total_bias_ma:.2f} mA, A_cir={self.total_area_mm2:.4f} mm^2)"
        )
