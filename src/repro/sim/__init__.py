"""Pulse-level SFQ netlist simulation.

Functional verification *below* the logic IR: the simulator executes a
synthesized :class:`~repro.netlist.netlist.Netlist` with SFQ pulse
semantics (presence/absence of a pulse per clock cycle), proving that
technology mapping, path balancing and splitter insertion preserved the
circuit's function — the check an SFQ design flow would run before
tape-out, and the strongest validation of the reconstructed benchmark
suite this package has.
"""

from repro.sim.pulse import PulseSimulator, SimulationResult, simulate_netlist

__all__ = ["PulseSimulator", "SimulationResult", "simulate_netlist"]
