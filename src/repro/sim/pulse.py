"""Cycle-accurate pulse simulation of SFQ netlists.

Model (standard gate-level SFQ semantics for a fully path-balanced,
flow-clocked circuit, cf. Section II of the paper):

* data is the **presence or absence of an SFQ pulse** per clock cycle;
* a *clocked* cell (logic gates, DFF) samples the pulses that arrived
  since the previous clock and emits its function's pulse one cycle
  later — the circuit is gate-level pipelined;
* *transparent* cells forward pulses within the cycle: a splitter
  duplicates its input pulse to both outputs, a merger (confluence
  buffer) forwards a pulse from either input, a JTL repeats its input;
* the NOT gate is the classic SFQ inverter: it fires on the clock when
  **no** data pulse arrived in the preceding cycle.

Because the synthesis flow fully path-balances the netlist, all fanins
of a clocked gate carry pulses of the same wave, so a single wave of
input pulses produces a single wave of output pulses after
``pipeline depth`` cycles.  :func:`simulate_netlist` injects one wave
and returns the output wave plus per-gate firing records.

The simulator intentionally rejects netlists containing an explicit
clock network (``clk`` port): clock pulses are modeled implicitly, and
mixing clock edges into the data graph would corrupt gate fan-ins.
"""

from dataclasses import dataclass, field

from repro.netlist.cell import CellKind
from repro.synth.clocking import CLOCK_PORT
from repro.utils.errors import ReproError


class SimulationError(ReproError):
    """Raised for netlists the pulse simulator cannot execute."""


#: cell name -> function over the tuple of input pulse booleans
_CLOCKED_FUNCTIONS = {
    "DFF": lambda inputs: inputs[0],
    "AND2": lambda inputs: inputs[0] and inputs[1],
    "OR2": lambda inputs: inputs[0] or inputs[1],
    "XOR2": lambda inputs: inputs[0] != inputs[1],
    "XNOR2": lambda inputs: inputs[0] == inputs[1],
    "NAND2": lambda inputs: not (inputs[0] and inputs[1]),
    "NOR2": lambda inputs: not (inputs[0] or inputs[1]),
    "NOT": lambda inputs: not inputs[0],
}


@dataclass
class SimulationResult:
    """Outcome of one injected pulse wave.

    Attributes
    ----------
    outputs:
        ``{output port name: bool}`` — the output wave.
    fire_cycle:
        ``{gate name: cycle}`` for every gate that emitted a pulse
        (clocked gates record their emission cycle; transparent gates
        the cycle of the pulse they forwarded).
    cycles:
        Number of clock cycles simulated (the pipeline depth).
    """

    outputs: dict
    fire_cycle: dict = field(default_factory=dict)
    cycles: int = 0

    def output_bus(self, prefix):
        """Assemble ``prefix[i]`` outputs into an integer."""
        value = 0
        found = False
        for name, bit in self.outputs.items():
            if name.startswith(f"{prefix}["):
                index = int(name[len(prefix) + 1 : -1])
                value |= int(bool(bit)) << index
                found = True
        if not found:
            raise SimulationError(f"no output bus named {prefix!r}")
        return value


class PulseSimulator:
    """Reusable simulator for one netlist (builds tables once)."""

    def __init__(self, netlist):
        self.netlist = netlist
        if any(p.name == CLOCK_PORT for p in netlist.input_ports()):
            raise SimulationError(
                "netlist contains an explicit clock network; synthesize with "
                "include_clock_tree=False for functional simulation"
            )
        self._gates = netlist.gates
        for gate in self._gates:
            kind = gate.cell.kind
            if kind in (CellKind.LOGIC, CellKind.STORAGE):
                if gate.cell.name not in _CLOCKED_FUNCTIONS:
                    raise SimulationError(
                        f"no pulse semantics for clocked cell {gate.cell.name!r}"
                    )
        # incoming edges per gate, in pin order (the order they were added)
        self._fanins = [[] for _ in self._gates]
        self._fanouts = [[] for _ in self._gates]
        for u, v in netlist.edges:
            self._fanins[v].append(u)
            self._fanouts[u].append(v)
        self._stage = self._compute_stages()
        self._depth = max(
            (self._stage[g.index] for g in self._gates if g.cell.clocked), default=0
        )

    def _compute_stages(self):
        """Clock stage per gate (same convention as the synthesis flow)."""
        from collections import deque

        num_gates = len(self._gates)
        indegree = [len(f) for f in self._fanins]
        stage = [0] * num_gates
        queue = deque(i for i in range(num_gates) if indegree[i] == 0)
        seen = 0
        while queue:
            gate_index = queue.popleft()
            seen += 1
            fanin_stages = [stage[f] for f in self._fanins[gate_index]]
            base = max(fanin_stages, default=0)
            stage[gate_index] = base + (1 if self._gates[gate_index].cell.clocked else 0)
            for successor in self._fanouts[gate_index]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    queue.append(successor)
        if seen != num_gates:
            raise SimulationError("netlist contains a combinational cycle")
        return stage

    @property
    def pipeline_depth(self):
        """Clock cycles from input wave to output wave."""
        return self._depth

    def run(self, input_values):
        """Inject one wave of input pulses and return the output wave.

        Parameters
        ----------
        input_values:
            ``{input port name: bool}``; missing ports default to
            False (no pulse), extra names raise.
        """
        port_names = {p.name for p in self.netlist.input_ports()}
        unknown = set(input_values) - port_names
        if unknown:
            raise SimulationError(f"unknown input ports: {sorted(unknown)}")

        num_gates = len(self._gates)
        # wire value seen by each gate's fanin pins for the current wave
        pin_values = [[False] * max(len(f), 1) for f in self._fanins]
        output_value = [False] * num_gates
        fire_cycle = {}

        # port-driven pins: the input wave enters at cycle 0.  A gate can
        # be fed by several ports directly (e.g. a 2-input gate on two
        # primary inputs), so collect a list per gate.
        port_pin = {}
        for port in self.netlist.input_ports():
            if port.gate is not None:
                port_pin.setdefault(port.gate, []).append(
                    bool(input_values.get(port.name, False))
                )

        def propagate(gate_index, value, cycle):
            """Deliver a produced value through transparent fan-out."""
            output_value[gate_index] = value
            if value:
                fire_cycle[self._gates[gate_index].name] = cycle
            for successor in self._fanouts[gate_index]:
                cell = self._gates[successor].cell
                if cell.clocked:
                    continue  # sampled on the next clock via pin_values
                # transparent: recompute and forward within the cycle
                _deliver_transparent(successor, cycle)

        def _inputs_of(gate_index):
            values = [output_value[fanin] for fanin in self._fanins[gate_index]]
            values.extend(port_pin.get(gate_index, ()))
            return values

        def _deliver_transparent(gate_index, cycle):
            cell = self._gates[gate_index].cell
            values = _inputs_of(gate_index)
            if cell.kind is CellKind.SPLITTER or cell.kind is CellKind.INTERCONNECT:
                value = values[0] if values else False
            elif cell.kind is CellKind.MERGER:
                value = any(values)
            elif cell.kind is CellKind.IO or cell.kind is CellKind.COUPLING:
                value = any(values)
            elif cell.kind is CellKind.DUMMY:
                value = False
            else:  # pragma: no cover - clocked cells filtered by caller
                raise SimulationError(f"unexpected transparent cell {cell.name}")
            propagate(gate_index, value, cycle)

        # order gates by stage so each wave is processed front to back;
        # within a stage, transparent cells are re-derived on demand
        by_stage = {}
        for gate in self._gates:
            by_stage.setdefault(self._stage[gate.index], []).append(gate.index)

        # cycle 0: source pulses reach stage-0 transparent cells
        for gate_index in sorted(
            (g.index for g in self._gates if not g.cell.clocked),
            key=lambda i: self._stage[i],
        ):
            if self._stage[gate_index] == 0:
                _deliver_transparent(gate_index, 0)

        for cycle in range(1, self._depth + 1):
            # clocked gates at this stage sample last cycle's values
            for gate_index in by_stage.get(cycle, []):
                gate = self._gates[gate_index]
                if not gate.cell.clocked:
                    continue
                values = _inputs_of(gate_index)
                expected = gate.cell.num_inputs
                while len(values) < expected:
                    values.append(False)
                result = _CLOCKED_FUNCTIONS[gate.cell.name](values)
                propagate(gate_index, bool(result), cycle)
            # transparent gates at this stage forward within the cycle
            for gate_index in by_stage.get(cycle, []):
                gate = self._gates[gate_index]
                if not gate.cell.clocked:
                    _deliver_transparent(gate_index, cycle)

        outputs = {}
        for port in self.netlist.output_ports():
            outputs[port.name] = (
                output_value[port.gate] if port.gate is not None else False
            )
        return SimulationResult(outputs=outputs, fire_cycle=fire_cycle, cycles=self._depth)

    def run_bus(self, input_buses, output_prefixes):
        """Bus-level convenience mirroring
        :meth:`repro.synth.logic.LogicCircuit.evaluate_bus`."""
        assignment = {}
        port_names = {p.name for p in self.netlist.input_ports()}
        for prefix, value in input_buses.items():
            pins = [n for n in port_names if n.startswith(f"{prefix}[")]
            if pins:
                for pin in pins:
                    bit = int(pin[len(prefix) + 1 : -1])
                    assignment[pin] = bool((int(value) >> bit) & 1)
            elif prefix in port_names:
                assignment[prefix] = bool(value)
            else:
                raise SimulationError(f"no input bus or pin named {prefix!r}")
        result = self.run(assignment)
        out = {}
        for prefix in output_prefixes:
            if prefix in result.outputs:
                out[prefix] = int(result.outputs[prefix])
            else:
                out[prefix] = result.output_bus(prefix)
        return out


def simulate_netlist(netlist, input_values):
    """One-shot helper: build a simulator and inject one wave."""
    return PulseSimulator(netlist).run(input_values)
