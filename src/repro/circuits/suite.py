"""The benchmark suite of Table I.

Maps the paper's circuit names to reconstruction generators and records
the published Table I numbers for side-by-side comparison in
EXPERIMENTS.md and the benches.  Reconstructed netlists will not match
the published gate counts exactly (different cell library and synthesis
flow, see DESIGN.md substitution 1), but they are the same circuit
classes at the same scale.
"""

from dataclasses import asdict, dataclass

from repro.circuits.divider import restoring_divider
from repro.circuits.iscas import alu, ecc_codec, ecc_secded, interrupt_controller
from repro.circuits.ksa import kogge_stone_adder
from repro.circuits.multiplier import array_multiplier
from repro.netlist.library import default_library
from repro.synth.flow import SynthesisOptions, synthesize
from repro.utils.errors import ReproError


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table I (K = 5)."""

    circuit: str
    gates: int
    connections: int
    d_le_1: float
    d_le_2: float
    b_cir_ma: float
    b_max_ma: float
    i_comp_pct: float
    a_cir_mm2: float
    a_max_mm2: float
    a_fs_pct: float


#: Table I of the paper, transcribed verbatim.
PAPER_TABLE1 = {
    "KSA4": PaperRow("KSA4", 93, 118, 0.746, 0.975, 80.089, 17.50, 9.24, 0.4512, 0.0972, 7.71),
    "KSA8": PaperRow("KSA8", 252, 320, 0.703, 0.944, 216.72, 45.27, 4.43, 1.2192, 0.2520, 3.35),
    "KSA16": PaperRow("KSA16", 650, 826, 0.665, 0.887, 557.66, 118.09, 5.88, 3.1392, 0.6600, 5.12),
    "KSA32": PaperRow("KSA32", 1592, 2029, 0.644, 0.859, 1362.55, 304.07, 11.58, 7.6800, 1.7028, 10.86),
    "MULT4": PaperRow("MULT4", 254, 310, 0.732, 0.932, 222.03, 47.70, 7.42, 1.2192, 0.2616, 7.28),
    "MULT8": PaperRow("MULT8", 1374, 1678, 0.636, 0.856, 1201.32, 256.85, 6.90, 6.5952, 1.4004, 6.17),
    "ID4": PaperRow("ID4", 553, 678, 0.711, 0.914, 467.00, 100.29, 6.69, 2.6796, 0.5700, 6.36),
    "ID8": PaperRow("ID8", 3209, 3705, 0.582, 0.816, 2783.89, 622.39, 11.78, 15.5400, 3.4860, 12.16),
    "C432": PaperRow("C432", 1216, 1434, 0.650, 0.875, 1045.17, 222.31, 6.35, 5.9448, 1.2792, 7.59),
    "C499": PaperRow("C499", 991, 1318, 0.635, 0.863, 834.92, 178.17, 6.70, 4.8060, 1.0212, 6.24),
    "C1355": PaperRow("C1355", 1046, 1367, 0.618, 0.854, 883.35, 192.41, 8.97, 5.0808, 1.1076, 9.00),
    "C1908": PaperRow("C1908", 1695, 2095, 0.600, 0.850, 1447.03, 328.53, 13.52, 8.2536, 1.8804, 13.91),
    "C3540": PaperRow("C3540", 3792, 4927, 0.540, 0.777, 3193.23, 670.01, 4.91, 18.5556, 3.8784, 4.51),
}

#: Paper circuit names in Table I order.
SUITE_NAMES = tuple(PAPER_TABLE1)

#: circuit name -> zero-argument logic-circuit builder
_GENERATORS = {
    "KSA4": lambda: kogge_stone_adder(4, name="KSA4"),
    "KSA8": lambda: kogge_stone_adder(8, name="KSA8"),
    "KSA16": lambda: kogge_stone_adder(16, name="KSA16"),
    "KSA32": lambda: kogge_stone_adder(32, name="KSA32"),
    "MULT4": lambda: array_multiplier(4, name="MULT4"),
    "MULT8": lambda: array_multiplier(8, name="MULT8"),
    "ID4": lambda: restoring_divider(4, name="ID4"),
    "ID8": lambda: restoring_divider(8, name="ID8"),
    "C432": lambda: interrupt_controller(name="C432"),
    "C499": lambda: ecc_secded(32, expand_xor=False, name="C499"),
    "C1355": lambda: ecc_secded(32, expand_xor=True, name="C1355"),
    "C1908": lambda: ecc_codec(32, name="C1908"),
    "C3540": lambda: alu(8, name="C3540"),
}

#: circuit name -> (generator function name, parameters); the
#: content-key description of each reconstruction, fed into the on-disk
#: artifact cache so a parameter change invalidates cached netlists.
_GENERATOR_SPECS = {
    "KSA4": ("kogge_stone_adder", {"width": 4}),
    "KSA8": ("kogge_stone_adder", {"width": 8}),
    "KSA16": ("kogge_stone_adder", {"width": 16}),
    "KSA32": ("kogge_stone_adder", {"width": 32}),
    "MULT4": ("array_multiplier", {"width": 4}),
    "MULT8": ("array_multiplier", {"width": 8}),
    "ID4": ("restoring_divider", {"width": 4}),
    "ID8": ("restoring_divider", {"width": 8}),
    "C432": ("interrupt_controller", {}),
    "C499": ("ecc_secded", {"width": 32, "expand_xor": False}),
    "C1355": ("ecc_secded", {"width": 32, "expand_xor": True}),
    "C1908": ("ecc_codec", {"width": 32}),
    "C3540": ("alu", {"width": 8}),
}

_NETLIST_CACHE = {}


def netlist_cache_key(name, library=None, options=None):
    """On-disk cache key of one benchmark netlist.

    Covers the generator and its parameters, the synthesis options, the
    cell-library fingerprint and the cache schema version — changing any
    of them changes the key (see ``tests/test_cache.py``).
    """
    from repro.cache import netlist_key

    try:
        generator_name, params = _GENERATOR_SPECS[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark circuit {name!r}; available: {', '.join(SUITE_NAMES)}"
        ) from None
    return netlist_key(
        [generator_name, params, {"name": name}],
        {"synthesis": asdict(options or SynthesisOptions())},
        library if library is not None else default_library(),
    )


def paper_row(name):
    """The paper's Table I row for ``name`` (KeyError on unknown name)."""
    return PAPER_TABLE1[name]


def build_logic(name):
    """Build the logic-level (pre-synthesis) reconstruction of a circuit."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark circuit {name!r}; available: {', '.join(SUITE_NAMES)}"
        ) from None
    return generator()


def build_circuit(name, library=None, options=None, use_cache=True):
    """Build one benchmark as a synthesized, placed SFQ netlist.

    Two cache layers, both keyed on content and both skipped with
    ``use_cache=False``:

    * a per-process memory cache (default library/options only; the
      generators are deterministic).  Returned netlists are shared when
      cached — treat them as read-only or ``copy()`` first;
    * the persistent on-disk artifact cache (:mod:`repro.cache`), which
      skips synthesis entirely across processes and sessions.  A cached
      netlist rebuilds bit-identically (same gate/edge/port order), so
      fixed-seed partitions are unaffected.  Disable with
      ``REPRO_CACHE=0``.
    """
    memory_key = name if (library is None and options is None and use_cache) else None
    if memory_key is not None and memory_key in _NETLIST_CACHE:
        return _NETLIST_CACHE[memory_key]

    from repro.cache import default_cache, load_cached_netlist, store_netlist

    disk_cache = default_cache() if use_cache and name in _GENERATOR_SPECS else None
    if disk_cache is not None and disk_cache.enabled:
        key = netlist_cache_key(name, library=library, options=options)
        resolved_library = library if library is not None else default_library()
        netlist = load_cached_netlist(disk_cache, key, resolved_library)
        if netlist is not None:
            if memory_key is not None:
                _NETLIST_CACHE[memory_key] = netlist
            return netlist

    circuit = build_logic(name)
    netlist, _stats = synthesize(circuit, library=library, options=options or SynthesisOptions())
    if disk_cache is not None and disk_cache.enabled:
        store_netlist(disk_cache, key, netlist)
    if memory_key is not None:
        _NETLIST_CACHE[memory_key] = netlist
    return netlist


def build_suite(names=None, library=None, options=None):
    """Build several benchmarks; returns ``{name: netlist}``."""
    return {
        name: build_circuit(name, library=library, options=options)
        for name in (names or SUITE_NAMES)
    }
