"""Array multiplier generator (the paper's MULT4/8).

A classic unsigned array multiplier: the ``n x n`` partial-product
matrix (``AND`` gates) is accumulated row by row with ripple-carry
adders.  The row-accumulation structure is deep and strongly local —
the opposite workload profile from the Kogge-Stone prefix network —
giving the partitioner the "long pipeline" topology the multiplier rows
of Table I represent.
"""

from repro.synth.logic import LogicCircuit
from repro.utils.errors import SynthesisError


def _ripple_add(circuit, x_bits, y_bits):
    """Ripple-carry add two equal-width bit vectors.

    Returns ``width + 1`` result bits (the last is the carry-out).
    """
    if len(x_bits) != len(y_bits):
        raise SynthesisError("ripple add requires equal widths")
    result = []
    carry = None
    for x, y in zip(x_bits, y_bits):
        if carry is None:
            bit, carry = circuit.half_adder(x, y)
        else:
            bit, carry = circuit.full_adder(x, y, carry)
        result.append(bit)
    result.append(carry)
    return result


def array_multiplier(width, name=None):
    """Build an unsigned ``width x width`` array multiplier.

    Inputs ``a[width]``, ``b[width]``; outputs ``p[2*width]``.
    """
    if width < 2:
        raise SynthesisError(f"multiplier width must be >= 2, got {width}")
    circuit = LogicCircuit(name or f"MULT{width}")
    a = circuit.add_inputs("a", width)
    b = circuit.add_inputs("b", width)

    partial = [[circuit.and_(a[i], b[j]) for i in range(width)] for j in range(width)]

    # Row 0 of the product is pp[0][0]; accumulate the remaining rows.
    outputs = [partial[0][0]]
    acc = partial[0][1:]  # bits 1..width-1 of row 0, aligned at position 1
    for j in range(1, width):
        row = partial[j]
        # acc currently holds product bits j .. j+len(acc)-1.
        # Add row j (bits j .. j+width-1); pad the shorter vector.
        length = max(len(acc), width)
        x = acc + [None] * (length - len(acc))
        y = list(row) + [None] * (length - width)
        summed = []
        carry = None
        for x_bit, y_bit in zip(x, y):
            if y_bit is None:
                operand_pair = (x_bit,)
            elif x_bit is None:
                operand_pair = (y_bit,)
            else:
                operand_pair = (x_bit, y_bit)
            if len(operand_pair) == 1:
                if carry is None:
                    summed.append(operand_pair[0])
                else:
                    bit, carry = circuit.half_adder(operand_pair[0], carry)
                    summed.append(bit)
            else:
                if carry is None:
                    bit, carry = circuit.half_adder(*operand_pair)
                else:
                    bit, carry = circuit.full_adder(*operand_pair, carry)
                summed.append(bit)
        if carry is not None:
            summed.append(carry)
        outputs.append(summed[0])  # product bit j is finalized
        acc = summed[1:]
    outputs.extend(acc)

    if len(outputs) != 2 * width:
        raise SynthesisError(
            f"multiplier construction error: {len(outputs)} product bits, expected {2 * width}"
        )
    for position, node in enumerate(outputs):
        circuit.set_output(f"p[{position}]", node)
    return circuit
