"""ISCAS85-class circuit reconstructions.

The paper's suite includes five ISCAS85 benchmarks (C432, C499, C1355,
C1908, C3540) synthesized to SFQ.  The original gate-level sources are
not shipped in this offline environment, so this module provides
*functional reconstructions* of the same documented circuits at matching
scale (see DESIGN.md, substitution 2):

* :func:`interrupt_controller` — C432 is a 27-channel interrupt
  controller (3 groups of 9 request lines with masking and two levels
  of priority arbitration);
* :func:`ecc_secded` — C499 (and its XOR-expanded twin C1355) is a
  32-bit single-error-correcting / double-error-detecting decoder;
* :func:`ecc_codec` — C1908 is a 16-bit SECDED encoder/decoder chain;
* :func:`alu` — C3540 is an 8-bit ALU with arithmetic, logic, shift and
  multiply-step functions.

All reconstructions are functionally testable through
:meth:`LogicCircuit.evaluate`.
"""

from repro.synth.logic import LogicCircuit
from repro.utils.errors import SynthesisError


# ----------------------------------------------------------------------
# C432-class: priority interrupt controller
# ----------------------------------------------------------------------
def interrupt_controller(channels_per_group=9, groups=3, name="C432"):
    """27-channel two-level priority interrupt controller.

    Inputs: ``req[G*C]`` request lines, ``isr[G*C]`` in-service register
    state (a request already being serviced is blocked), ``en[G]`` group
    enables, ``mask[C]`` per-channel mask (shared by all groups).
    Outputs: ``grp[ceil(log2 G)]`` winning group id, ``chan[ceil(log2
    C)]`` winning channel id, ``valid``, per-line acknowledge
    ``ack[G*C]`` and per-line pending status ``pend[G*C]`` (requests
    still waiting after this arbitration round).  The wide ack/pend
    output cone is what gives C432 its relatively large size.

    Priority: lower group index wins; within the winning group, lower
    channel index wins.
    """
    if groups < 2 or channels_per_group < 2:
        raise SynthesisError("interrupt controller needs >= 2 groups and >= 2 channels")
    circuit = LogicCircuit(name)
    total = groups * channels_per_group
    req = circuit.add_inputs("req", total)
    isr = circuit.add_inputs("isr", total)
    en = circuit.add_inputs("en", groups)
    mask = circuit.add_inputs("mask", channels_per_group)

    masked = [
        [
            circuit.and_(
                req[g * channels_per_group + c],
                circuit.not_(isr[g * channels_per_group + c]),
                mask[c],
                en[g],
            )
            for c in range(channels_per_group)
        ]
        for g in range(groups)
    ]
    group_any = [circuit.or_(*masked[g]) for g in range(groups)]

    # Group-level priority (lowest index wins).
    grant_group = [group_any[0]]
    blocked = group_any[0]
    for g in range(1, groups):
        grant_group.append(circuit.and_(group_any[g], circuit.not_(blocked)))
        if g < groups - 1:
            blocked = circuit.or_(blocked, group_any[g])

    # Channel lines of the winning group.
    selected = [
        circuit.or_(*[circuit.and_(grant_group[g], masked[g][c]) for g in range(groups)])
        for c in range(channels_per_group)
    ]

    # Channel-level priority.
    grant_chan = [selected[0]]
    blocked = selected[0]
    for c in range(1, channels_per_group):
        grant_chan.append(circuit.and_(selected[c], circuit.not_(blocked)))
        if c < channels_per_group - 1:
            blocked = circuit.or_(blocked, selected[c])

    # Binary encoders.
    def encode(grants, prefix):
        bits = max(1, (len(grants) - 1).bit_length())
        for bit in range(bits):
            terms = [grants[i] for i in range(len(grants)) if (i >> bit) & 1]
            if terms:
                node = terms[0] if len(terms) == 1 else circuit.or_(*terms)
            else:
                # no index with this bit set: constant 0, realized as
                # grant0 AND NOT grant0 would be folded; use and of two
                # disjoint grants which is structurally 0 -- instead just
                # expose the always-false conjunction of grant 0 and 1.
                node = circuit.and_(grants[0], grants[1])
            circuit.set_output(f"{prefix}[{bit}]", node)

    encode(grant_group, "grp")
    encode(grant_chan, "chan")
    circuit.set_output("valid", circuit.or_(*group_any))
    for g in range(groups):
        for c in range(channels_per_group):
            line = g * channels_per_group + c
            acknowledge = circuit.and_(grant_group[g], grant_chan[c])
            circuit.set_output(f"ack[{line}]", acknowledge)
            circuit.set_output(
                f"pend[{line}]", circuit.and_(masked[g][c], circuit.not_(acknowledge))
            )
    return circuit


# ----------------------------------------------------------------------
# C499/C1355-class: 32-bit SECDED decoder
# ----------------------------------------------------------------------
def _position_code(index):
    """Hamming position of data bit ``index`` (skipping powers of two)."""
    position = index + 1
    code = 1
    while True:
        # walk positions, skipping powers of two (they host check bits)
        if code & (code - 1):
            position -= 1
            if position == 0:
                return code
        code += 1


def _xor_tree(circuit, nodes, expand=False):
    """XOR-reduce ``nodes``; with ``expand`` each 2-input XOR is built
    from AND/OR/NOT (the C1355 flavor of the same function)."""
    nodes = list(nodes)
    if not nodes:
        raise SynthesisError("empty xor tree")
    while len(nodes) > 1:
        next_level = []
        for i in range(0, len(nodes) - 1, 2):
            a, b = nodes[i], nodes[i + 1]
            if expand:
                next_level.append(
                    circuit.and_(circuit.or_(a, b), circuit.not_(circuit.and_(a, b)))
                )
            else:
                next_level.append(circuit.xor(a, b))
        if len(nodes) % 2:
            next_level.append(nodes[-1])
        nodes = next_level
    return nodes[0]


def ecc_secded(data_bits=32, expand_xor=False, name=None):
    """SECDED (Hamming + overall parity) decoder.

    Inputs: ``d[data_bits]`` received data, ``c[n_check]`` received
    Hamming check bits, ``p`` received overall parity.
    Outputs: ``cor[data_bits]`` corrected data, ``serr`` (single error
    corrected), ``derr`` (uncorrectable double error).

    ``expand_xor=True`` builds the *correction* layer's XORs out of
    AND/OR/NOT — the C1355 flavor (same function as C499, slightly
    larger structure, exactly the relationship between the two
    originals).
    """
    if data_bits < 4:
        raise SynthesisError(f"SECDED needs >= 4 data bits, got {data_bits}")
    circuit = LogicCircuit(name or f"SECDED{data_bits}")
    data = circuit.add_inputs("d", data_bits)
    n_check = max(code.bit_length() for code in (_position_code(i) for i in range(data_bits)))
    check = circuit.add_inputs("c", n_check)
    parity_in = circuit.add_input("p")

    codes = [_position_code(i) for i in range(data_bits)]
    syndrome = []
    for k in range(n_check):
        members = [data[i] for i in range(data_bits) if (codes[i] >> k) & 1]
        syndrome.append(_xor_tree(circuit, members + [check[k]]))

    parity = _xor_tree(circuit, list(data) + list(check) + [parity_in])
    syndrome_nonzero = circuit.or_(*syndrome)

    inverted = [circuit.not_(s) for s in syndrome]
    corrected = []
    for i in range(data_bits):
        literals = [
            syndrome[k] if (codes[i] >> k) & 1 else inverted[k] for k in range(n_check)
        ]
        hit = circuit.and_(*literals)
        if expand_xor:
            flipped = circuit.and_(
                circuit.or_(data[i], hit), circuit.not_(circuit.and_(data[i], hit))
            )
        else:
            flipped = circuit.xor(data[i], hit)
        corrected.append(flipped)

    for i in range(data_bits):
        circuit.set_output(f"cor[{i}]", corrected[i])
    # SECDED decision: odd overall parity => a single (correctable)
    # error somewhere in the codeword, even when the syndrome is zero
    # (then the parity wire itself flipped); even parity with a nonzero
    # syndrome => uncorrectable double error.
    circuit.set_output("serr", circuit.buf(parity))
    circuit.set_output("derr", circuit.and_(circuit.not_(parity), syndrome_nonzero))
    return circuit


# ----------------------------------------------------------------------
# C1908-class: 16-bit SECDED encoder/decoder chain
# ----------------------------------------------------------------------
def ecc_codec(data_bits=16, name="C1908"):
    """SECDED encoder + error-injection channel + decoder, chained.

    Inputs: ``d[data_bits]`` source word and ``e[codeword]`` per-wire
    error-injection lines (the codeword is data + checks + parity).
    Outputs: the decoder's corrected word and error flags.  Feeding the
    decoder from an on-chip encoder doubles the XOR-tree population
    relative to :func:`ecc_secded` — C1908's documented relationship to
    C499's class.
    """
    if data_bits < 4:
        raise SynthesisError(f"codec needs >= 4 data bits, got {data_bits}")
    circuit = LogicCircuit(name)
    data = circuit.add_inputs("d", data_bits)
    codes = [_position_code(i) for i in range(data_bits)]
    n_check = max(code.bit_length() for code in codes)
    error = circuit.add_inputs("e", data_bits + n_check + 1)

    # Encoder: check bits over the clean data, then overall parity.
    enc_check = []
    for k in range(n_check):
        members = [data[i] for i in range(data_bits) if (codes[i] >> k) & 1]
        enc_check.append(_xor_tree(circuit, members))
    enc_parity = _xor_tree(circuit, list(data) + enc_check)

    # Channel: every codeword wire can be flipped by an error line.
    rx_data = [circuit.xor(data[i], error[i]) for i in range(data_bits)]
    rx_check = [circuit.xor(enc_check[k], error[data_bits + k]) for k in range(n_check)]
    rx_parity = circuit.xor(enc_parity, error[data_bits + n_check])

    # Decoder: same structure as ecc_secded over the received word.
    syndrome = []
    for k in range(n_check):
        members = [rx_data[i] for i in range(data_bits) if (codes[i] >> k) & 1]
        syndrome.append(_xor_tree(circuit, members + [rx_check[k]]))
    parity = _xor_tree(circuit, rx_data + rx_check + [rx_parity])
    syndrome_nonzero = circuit.or_(*syndrome)
    inverted = [circuit.not_(s) for s in syndrome]
    for i in range(data_bits):
        literals = [
            syndrome[k] if (codes[i] >> k) & 1 else inverted[k] for k in range(n_check)
        ]
        hit = circuit.and_(*literals)
        circuit.set_output(f"cor[{i}]", circuit.xor(rx_data[i], hit))
    # same SECDED decision rule as ecc_secded (odd parity => single error)
    circuit.set_output("serr", circuit.buf(parity))
    circuit.set_output("derr", circuit.and_(circuit.not_(parity), syndrome_nonzero))
    return circuit


# ----------------------------------------------------------------------
# C3540-class: 8-bit ALU
# ----------------------------------------------------------------------
def alu(width=8, name="C3540"):
    """8-bit ALU with arithmetic, logic, shift and multiply-step units.

    Inputs: ``a[w]``, ``b[w]``, ``op[4]``, ``cin``.
    Operations (op): 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 shift-left
    (by b[1:0]), 6 shift-right (by b[1:0]), 7 multiply-low
    (``(a*b) & (2^w - 1)``), 8 nand, 9 nor, 10 xnor, 11 a-and-not-b,
    12 rotate-left by b[1:0], 13 rotate-right by b[1:0], 14 pass-a,
    15 not-a.
    Outputs: ``y[w]``, ``cout``, ``zero``, ``neg``, ``parity``.
    """
    if width < 4:
        raise SynthesisError(f"ALU width must be >= 4, got {width}")
    circuit = LogicCircuit(name)
    a = circuit.add_inputs("a", width)
    b = circuit.add_inputs("b", width)
    op = circuit.add_inputs("op", 4)
    cin = circuit.add_input("cin")

    # --- adder / subtractor (shared ripple chain, sub via ~b + 1) ----
    is_sub = circuit.and_(
        op[0], circuit.not_(op[1]), circuit.not_(op[2]), circuit.not_(op[3])
    )  # op == 1
    b_eff = [circuit.xor(b[i], is_sub) for i in range(width)]
    carry = circuit.or_(circuit.and_(circuit.not_(is_sub), cin), is_sub)
    add_bits = []
    for i in range(width):
        bit, carry = circuit.full_adder(a[i], b_eff[i], carry)
        add_bits.append(bit)
    adder_cout = carry

    # --- logic unit ---------------------------------------------------
    and_bits = [circuit.and_(a[i], b[i]) for i in range(width)]
    or_bits = [circuit.or_(a[i], b[i]) for i in range(width)]
    xor_bits = [circuit.xor(a[i], b[i]) for i in range(width)]

    # --- barrel shifter (2-stage, shift amount b[1:0]) ----------------
    def shift_stage(bits, amount_bit, distance, left, rotate=False):
        shifted = []
        for i in range(width):
            source = i - distance if left else i + distance
            if rotate:
                source %= width
            if 0 <= source < width:
                shifted.append(circuit.mux(amount_bit, bits[i], bits[source]))
            else:
                # shifting in zeros: select kills the bit
                shifted.append(circuit.and_(bits[i], circuit.not_(amount_bit)))
        return shifted

    shl = shift_stage(shift_stage(list(a), b[0], 1, True), b[1], 2, True)
    shr = shift_stage(shift_stage(list(a), b[0], 1, False), b[1], 2, False)
    rol = shift_stage(shift_stage(list(a), b[0], 1, True, True), b[1], 2, True, True)
    ror = shift_stage(shift_stage(list(a), b[0], 1, False, True), b[1], 2, False, True)

    # --- extended logic lanes -----------------------------------------
    nand_bits = [circuit.not_(bit) for bit in and_bits]
    nor_bits = [circuit.not_(bit) for bit in or_bits]
    xnor_bits = [circuit.not_(bit) for bit in xor_bits]
    andn_bits = [circuit.and_(a[i], circuit.not_(b[i])) for i in range(width)]
    pass_a = [circuit.buf(a[i]) for i in range(width)]
    not_a = [circuit.not_(a[i]) for i in range(width)]

    # --- multiply-low (row-ripple accumulation, truncated to w bits) --
    mul_bits = [circuit.and_(a[0], b[j]) for j in range(width)]
    for i in range(1, width):
        carry = None
        row = [circuit.and_(a[i], b[j]) for j in range(width - i)]
        for j, pp in enumerate(row):
            position = i + j
            if carry is None:
                mul_bits[position], carry = circuit.half_adder(mul_bits[position], pp)
            else:
                mul_bits[position], carry = circuit.full_adder(mul_bits[position], pp, carry)
        # carry out of the truncated product is dropped

    # --- 16:1 result mux per bit --------------------------------------
    units = [
        add_bits, add_bits, and_bits, or_bits, xor_bits, shl, shr, mul_bits,
        nand_bits, nor_bits, xnor_bits, andn_bits, rol, ror, pass_a, not_a,
    ]
    result = []
    for i in range(width):
        lanes = [unit[i] for unit in units]
        # four-level mux tree on op[3..0]
        level0 = [circuit.mux(op[0], lanes[j], lanes[j + 1]) for j in range(0, 16, 2)]
        level1 = [circuit.mux(op[1], level0[j], level0[j + 1]) for j in range(0, 8, 2)]
        level2 = [circuit.mux(op[2], level1[j], level1[j + 1]) for j in range(0, 4, 2)]
        result.append(circuit.mux(op[3], level2[0], level2[1]))

    for i in range(width):
        circuit.set_output(f"y[{i}]", result[i])
    circuit.set_output("cout", adder_cout)
    circuit.set_output("zero", circuit.not_(circuit.or_(*result)))
    circuit.set_output("neg", circuit.buf(result[width - 1]))
    circuit.set_output("parity", _xor_tree(circuit, result))
    return circuit
