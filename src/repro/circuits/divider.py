"""Restoring array divider generator (the paper's ID4/ID8).

An unsigned restoring divider: the dividend's high half seeds the
partial remainder, then one conditional-subtract row per quotient bit
(subtract the divisor; keep the difference when it is non-negative,
restore otherwise).  Array dividers are the largest arithmetic blocks in
the paper's suite (ID8 is its biggest circuit after C3540) because each
row carries a full-width subtractor *and* a full-width restore mux.

Interface (width ``w``): dividend ``a[2w]``, divisor ``v[w]``,
outputs quotient ``q[w]`` and remainder ``r[w]``.  Results are the true
``a // v`` and ``a % v`` whenever the quotient fits in ``w`` bits
(i.e. ``a >> w < v``) — the standard array-divider operating condition.
"""

from repro.synth.logic import LogicCircuit
from repro.utils.errors import SynthesisError


def _conditional_subtract(circuit, remainder_bits, divisor_bits):
    """One restoring-division row.

    ``remainder_bits`` is the shifted partial remainder (``w + 1`` bits,
    LSB first), ``divisor_bits`` the divisor (``w`` bits).  Computes
    ``diff = remainder - divisor`` as ``remainder + ~divisor + 1`` with a
    *parallel-prefix* (Kogge-Stone) carry network — a ripple borrow
    chain would give each row O(w) pipeline depth and the SFQ
    path-balancing stage would then pay O(w^2) DFFs per row, far beyond
    the circuit sizes the paper's suite reports.  The final carry is the
    no-borrow flag (1 when ``remainder >= divisor``).

    Returns ``(q_bit, new_remainder_bits)`` with ``new_remainder`` =
    ``diff`` on success, the unmodified remainder otherwise (``w`` bits —
    the top bit of a restored row is always 0 under the operating
    condition).
    """
    width = len(divisor_bits)
    if len(remainder_bits) != width + 1:
        raise SynthesisError("conditional subtract expects a w+1-bit remainder")
    total = width + 1
    # Bitwise propagate/generate of remainder + ~divisor, with the
    # two's-complement +1 folded in as a carry into bit 0:
    # c_{-1} = 1  =>  g_0' = g_0 | p_0.
    inverted = [circuit.not_(divisor_bits[i]) for i in range(width)]
    inverted.append(None)  # divisor bit w is 0, so ~bit is constant 1
    propagate = []
    generate = []
    for i in range(total):
        if inverted[i] is None:  # x ^ 1 = ~x ; x & 1 = x
            propagate.append(circuit.not_(remainder_bits[i]))
            generate.append(remainder_bits[i])
        else:
            propagate.append(circuit.xor(remainder_bits[i], inverted[i]))
            generate.append(circuit.and_(remainder_bits[i], inverted[i]))
    generate[0] = circuit.or_(generate[0], propagate[0])

    # Kogge-Stone prefix: carries[i] = carry out of bit i.
    group_p = list(propagate)
    group_g = list(generate)
    span = 1
    while span < total:
        next_p = list(group_p)
        next_g = list(group_g)
        for i in range(span, total):
            next_g[i] = circuit.or_(group_g[i], circuit.and_(group_p[i], group_g[i - span]))
            next_p[i] = circuit.and_(group_p[i], group_p[i - span])
        group_p, group_g = next_p, next_g
        span *= 2
    carries = group_g

    diff = [circuit.not_(propagate[0])]  # p_0 ^ c_{-1} with c_{-1} = 1
    for i in range(1, total):
        diff.append(circuit.xor(propagate[i], carries[i - 1]))
    q_bit = carries[total - 1]  # no borrow -> subtraction succeeded
    new_remainder = [
        circuit.mux(q_bit, remainder_bits[position], diff[position]) for position in range(width)
    ]
    return q_bit, new_remainder


def restoring_divider(width, name=None):
    """Build an unsigned restoring array divider of the given width."""
    if width < 2:
        raise SynthesisError(f"divider width must be >= 2, got {width}")
    circuit = LogicCircuit(name or f"ID{width}")
    a = circuit.add_inputs("a", 2 * width)
    v = circuit.add_inputs("v", width)

    # Partial remainder starts as the dividend's high half.
    remainder = [a[width + i] for i in range(width)]
    quotient = [None] * width
    for step in range(width - 1, -1, -1):
        shifted = [a[step]] + remainder  # (R << 1) | a[step], LSB first
        quotient[step], remainder = _conditional_subtract(circuit, shifted, v)

    for i in range(width):
        circuit.set_output(f"q[{i}]", quotient[i])
        circuit.set_output(f"r[{i}]", remainder[i])
    return circuit
