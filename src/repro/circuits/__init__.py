"""Reconstructed benchmark circuits.

The paper evaluates on the SPORT-lab SFQ benchmark suite (ref. [20]),
which is not publicly distributed.  This subpackage *reconstructs* each
circuit class from its documented function:

* :mod:`repro.circuits.ksa` — Kogge-Stone adders (KSA4/8/16/32);
* :mod:`repro.circuits.multiplier` — array multipliers (MULT4/8);
* :mod:`repro.circuits.divider` — restoring integer dividers (ID4/8);
* :mod:`repro.circuits.iscas` — ISCAS85-class circuits (C432 interrupt
  controller, C499/C1355 32-bit SECDED ECC, C1908 16-bit SECDED
  codec, C3540 8-bit ALU);
* :mod:`repro.circuits.suite` — the Table I registry, with the paper's
  published numbers embedded for comparison.

Every generator returns a :class:`~repro.synth.logic.LogicCircuit` whose
function is verified by tests (the adders add, the dividers divide...),
then :func:`repro.circuits.suite.build_circuit` pushes it through the
SFQ synthesis flow to produce the netlist the partitioner consumes.
"""

from repro.circuits.ksa import kogge_stone_adder
from repro.circuits.multiplier import array_multiplier
from repro.circuits.divider import restoring_divider
from repro.circuits.iscas import interrupt_controller, ecc_secded, ecc_codec, alu
from repro.circuits.fft import fft_datapath, butterfly_reference
from repro.circuits.suite import (
    SUITE_NAMES,
    PAPER_TABLE1,
    build_circuit,
    build_logic,
    build_suite,
    paper_row,
)

__all__ = [
    "kogge_stone_adder",
    "array_multiplier",
    "restoring_divider",
    "interrupt_controller",
    "ecc_secded",
    "ecc_codec",
    "alu",
    "fft_datapath",
    "butterfly_reference",
    "SUITE_NAMES",
    "PAPER_TABLE1",
    "build_circuit",
    "build_logic",
    "build_suite",
    "paper_row",
]
