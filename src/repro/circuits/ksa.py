"""Kogge-Stone adder generator (the paper's KSA4/8/16/32).

The Kogge-Stone adder is the canonical SFQ arithmetic benchmark: its
log-depth parallel-prefix carry network is wide, reconvergent and
heavily multi-fanout — exactly the structure that stresses splitter
insertion and path balancing.

Construction (width ``n``):

* bitwise propagate ``p_i = a_i ^ b_i`` and generate ``g_i = a_i & b_i``;
* ``log2(n)`` prefix stages with span ``s = 1, 2, 4, ...``:
  ``G_i = G_i | (P_i & G_{i-s})``, ``P_i = P_i & P_{i-s}`` for ``i >= s``;
* sums ``sum_0 = p_0``, ``sum_i = p_i ^ G_{i-1}``, carry-out ``G_{n-1}``.
"""

from repro.synth.logic import LogicCircuit
from repro.utils.errors import SynthesisError


def kogge_stone_adder(width, with_carry_out=True, name=None):
    """Build an unsigned ``width``-bit Kogge-Stone adder.

    Inputs ``a[width]``, ``b[width]``; outputs ``sum[width]`` and
    (optionally) ``cout``.

    Parameters
    ----------
    width:
        Operand width in bits (>= 2).
    with_carry_out:
        Emit the ``cout`` output.
    name:
        Circuit name; defaults to ``KSA{width}``.
    """
    if width < 2:
        raise SynthesisError(f"KSA width must be >= 2, got {width}")
    circuit = LogicCircuit(name or f"KSA{width}")
    a = circuit.add_inputs("a", width)
    b = circuit.add_inputs("b", width)

    propagate = [circuit.xor(a[i], b[i]) for i in range(width)]
    generate = [circuit.and_(a[i], b[i]) for i in range(width)]

    # Parallel-prefix carry network.
    group_p = list(propagate)
    group_g = list(generate)
    span = 1
    while span < width:
        next_p = list(group_p)
        next_g = list(group_g)
        for i in range(span, width):
            next_g[i] = circuit.or_(group_g[i], circuit.and_(group_p[i], group_g[i - span]))
            next_p[i] = circuit.and_(group_p[i], group_p[i - span])
        group_p, group_g = next_p, next_g
        span *= 2

    circuit.set_output("sum[0]", propagate[0])
    for i in range(1, width):
        circuit.set_output(f"sum[{i}]", circuit.xor(propagate[i], group_g[i - 1]))
    if with_carry_out:
        circuit.set_output("cout", group_g[width - 1])
    return circuit
