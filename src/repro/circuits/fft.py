"""Integer FFT butterfly datapath generator.

The paper's closing argument cites an SFQ single-chip FFT processor
(ref. [23]) that needed 31 parallel bias lines for 2.5 A of supply —
the marquee use case for current recycling.  This generator produces an
FFT-*like* datapath so that scenario can be exercised on a real
netlist: ``log2(N)`` stages of radix-2 butterflies over ``N`` lanes,
each butterfly computing ``(a + b, a - b)`` on ``width``-bit words
(two's complement, truncated — the integer skeleton of a decimation-in-
time FFT without the twiddle multipliers).

The generator is functionally verifiable: :func:`butterfly_reference`
mirrors the computation in plain Python.
"""

from repro.synth.logic import LogicCircuit
from repro.utils.errors import SynthesisError


def _add_sub(circuit, a_bits, b_bits, subtract):
    """Ripple add/sub of two equal-width buses; truncating, LSB first.

    Subtraction is ``a + ~b + 1`` with the +1 folded into the first
    stage: ``sum_0 = a ^ ~b ^ 1 = a ^ b`` and
    ``carry_0 = majority(a, ~b, 1) = a | ~b``.
    """
    result = []
    carry = None
    for a, b in zip(a_bits, b_bits):
        if carry is None:
            if subtract:
                total = circuit.xor(a, b)
                carry = circuit.or_(a, circuit.not_(b))
            else:
                total, carry = circuit.half_adder(a, b)
        else:
            operand = circuit.not_(b) if subtract else b
            total, carry = circuit.full_adder(a, operand, carry)
        result.append(total)
    return result


def fft_datapath(num_points=8, width=8, name=None):
    """Build an ``N``-point, ``width``-bit butterfly network.

    Inputs ``x0[width] .. x{N-1}[width]``; outputs ``y0 .. y{N-1}``.
    Stage ``s`` pairs lanes whose indices differ in bit ``s`` and maps
    ``(a, b) -> (a + b, a - b)`` (mod ``2**width``).
    """
    if num_points < 2 or num_points & (num_points - 1):
        raise SynthesisError(f"num_points must be a power of two >= 2, got {num_points}")
    if width < 2:
        raise SynthesisError(f"width must be >= 2, got {width}")
    circuit = LogicCircuit(name or f"FFT{num_points}x{width}")
    lanes = [circuit.add_inputs(f"x{lane}", width) for lane in range(num_points)]

    stage = 0
    stride = 1
    while stride < num_points:
        next_lanes = [None] * num_points
        for lane in range(num_points):
            if lane & stride:
                continue
            partner = lane | stride
            a_bits, b_bits = lanes[lane], lanes[partner]
            next_lanes[lane] = _add_sub(circuit, a_bits, b_bits, subtract=False)
            next_lanes[partner] = _add_sub(circuit, a_bits, b_bits, subtract=True)
        lanes = next_lanes
        stride *= 2
        stage += 1

    for lane in range(num_points):
        for bit in range(width):
            circuit.set_output(f"y{lane}[{bit}]", lanes[lane][bit])
    return circuit


def butterfly_reference(values, width):
    """Plain-Python reference of :func:`fft_datapath` (truncating)."""
    mask = (1 << width) - 1
    lanes = [v & mask for v in values]
    num_points = len(lanes)
    stride = 1
    while stride < num_points:
        new = list(lanes)
        for lane in range(num_points):
            if lane & stride:
                continue
            partner = lane | stride
            new[lane] = (lanes[lane] + lanes[partner]) & mask
            new[partner] = (lanes[lane] - lanes[partner]) & mask
        lanes = new
        stride *= 2
    return lanes
