"""End-to-end current-recycling planning and verification.

:func:`plan_recycling` bundles everything the physical implementation
of a partition needs — coupling insertion, dummy sizing, the serial
bias chain and the floorplan — into one :class:`RecyclingPlan`.
:func:`verify_recycling` then checks the plan against the physical
rules of Sections II-III:

* every plane is non-empty and every gate is on exactly one plane;
* the supply current biases every plane (``I_supply >= B_k``);
* after dummy insertion, every plane's total sink current equals the
  supply within the dummy quantization step;
* couplings exist only between *adjacent* planes (by construction of
  the boundary decomposition — re-verified here);
* the ground-potential stack is monotone with the documented 2.5 mV
  step.

Violations are returned as strings (empty list = feasible), so tests
and the CLI can surface them directly.
"""

from dataclasses import dataclass

import numpy as np

from repro.obs import OBS
from repro.recycling.bias_network import build_bias_chain
from repro.recycling.coupling import plan_couplings
from repro.recycling.dummy import plan_dummies
from repro.recycling.floorplan import build_floorplan


@dataclass(frozen=True)
class RecyclingPlan:
    """Complete current-recycling implementation plan for a partition."""

    result: object
    couplings: object
    dummies: object
    chain: object
    floorplan: object

    @property
    def supply_current_ma(self):
        return self.chain.supply_current_ma

    def summary(self):
        """Human-readable one-paragraph summary."""
        report_bits = [
            f"{self.result.netlist.name}: K={self.result.num_planes} planes,",
            f"supply {self.chain.supply_current_ma:.2f} mA,",
            f"{self.couplings.total_pairs} coupling pairs "
            f"({self.couplings.crossing_edges} crossing connections),",
            f"{self.dummies.total_count} dummies sinking "
            f"{self.dummies.i_comp_ma:.2f} mA ({self.dummies.i_comp_pct:.1f}% of B_cir),",
            f"power overhead {self.chain.power_overhead_pct:.1f}% vs parallel biasing",
        ]
        return " ".join(report_bits)


def plan_recycling(result, utilization=0.72, supply_current_ma=None):
    """Build the full :class:`RecyclingPlan` for a partition result."""
    with OBS.trace.span(
        "recycling_plan", circuit=result.netlist.name, planes=result.num_planes
    ) as span:
        couplings = plan_couplings(result)
        dummies = plan_dummies(result)
        chain = build_bias_chain(result, supply_current_ma=supply_current_ma)
        floorplan = build_floorplan(result, utilization=utilization)
        span.set(coupling_pairs=int(couplings.total_pairs), dummies=int(dummies.total_count))
    if OBS.enabled:
        OBS.metrics.counter("recycling.plans").inc()
    return RecyclingPlan(
        result=result, couplings=couplings, dummies=dummies, chain=chain, floorplan=floorplan
    )


def verify_recycling(plan, dummy_step_tolerance=1.0):
    """Check a :class:`RecyclingPlan`; return a list of violations.

    ``dummy_step_tolerance`` scales the allowed per-plane residual to
    that many dummy-cell bias quanta.
    """
    with OBS.trace.span("recycling_verify", circuit=plan.result.netlist.name) as span:
        violations = _verify_recycling(plan, dummy_step_tolerance)
        span.set(violations=len(violations))
    if OBS.enabled:
        OBS.metrics.counter("recycling.verifications").inc()
        OBS.metrics.counter("recycling.violations").inc(len(violations))
    return violations


def _verify_recycling(plan, dummy_step_tolerance):
    violations = []
    result = plan.result
    k = result.num_planes

    sizes = result.plane_sizes()
    if (sizes == 0).any():
        empty = np.flatnonzero(sizes == 0).tolist()
        violations.append(f"empty ground planes: {empty}")
    if result.labels.min(initial=0) < 0 or result.labels.max(initial=0) >= k:
        violations.append("gate labels out of plane range")

    per_plane = result.plane_bias_ma()
    supply = plan.chain.supply_current_ma
    under = np.flatnonzero(per_plane > supply + 1e-9)
    if under.size:
        violations.append(
            f"planes {under.tolist()} need more current than the supply "
            f"({supply:.3f} mA) delivers"
        )

    # After dummies every plane must sink the supply current exactly,
    # modulo quantization (each dummy sinks a fixed current quantum).
    quantum = (plan.dummies.overshoot_ma + plan.dummies.deficit_ma) / np.maximum(
        plan.dummies.count_per_plane, 1
    )
    sink = per_plane + plan.dummies.deficit_ma + plan.dummies.overshoot_ma
    residual = sink - sink.max()
    step = float(quantum.max()) if plan.dummies.total_count else 0.0
    if step and np.abs(residual).max() > dummy_step_tolerance * step + 1e-9:
        violations.append(
            f"dummy equalization residual {np.abs(residual).max():.3f} mA exceeds "
            f"{dummy_step_tolerance} dummy quanta ({step:.3f} mA)"
        )

    # Couplings: the boundary decomposition must account for every
    # crossing connection distance exactly once per boundary passed.
    distances = result.connection_distances()
    if int(distances.sum()) != int(plan.couplings.pairs_per_boundary.sum()):
        violations.append(
            "coupling pairs do not match the sum of connection distances "
            f"({int(plan.couplings.pairs_per_boundary.sum())} vs {int(distances.sum())})"
        )

    ground = plan.chain.ground_potential_mv
    steps = np.diff(ground)
    if ground.size > 1 and not np.allclose(steps, -plan.chain.bias_voltage_mv):
        violations.append("ground-potential stack is not a uniform descending ladder")

    return violations
