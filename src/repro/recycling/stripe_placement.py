"""Stripe-level placement: lay each plane's gates into its stripe.

The floorplanner (:mod:`repro.recycling.floorplan`) sizes the K plane
stripes; this module fills them, producing a *partition-aware*
placement of the whole chip:

* each plane's gates are row-packed inside its stripe (dataflow order,
  same policy as the global placer);
* every boundary crossing gets its TXDRV/RXRCV pair placed *on* the
  boundary between the two stripes (adjacent planes only, per
  Section III-A);
* the result is scored with half-perimeter wirelength (HPWL), so the
  placement cost of partitioning — gates pulled apart into stripes plus
  coupling detours — can be compared against the unpartitioned
  placement.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.recycling.coupling import plan_couplings
from repro.recycling.floorplan import build_floorplan
from repro.synth.placement import CELL_SPACING_UM, ROW_SPACING_UM
from repro.netlist.graph import logic_levels
from repro.utils.errors import RecyclingError


@dataclass(frozen=True)
class CouplerSite:
    """One driver/receiver pair placed on a plane boundary."""

    boundary: int  # between plane `boundary` and `boundary + 1`
    x_mm: float
    y_mm: float
    edge: tuple  # (driver gate index, sink gate index)


@dataclass(frozen=True)
class StripePlacement:
    """A partition-aware placement of the full chip."""

    floorplan: object
    positions_mm: np.ndarray  # (G, 2) gate centers
    coupler_sites: tuple
    hpwl_mm: float
    flat_hpwl_mm: float

    @property
    def wirelength_overhead(self):
        """HPWL ratio vs the unpartitioned flat placement."""
        if self.flat_hpwl_mm == 0:
            return 1.0
        return self.hpwl_mm / self.flat_hpwl_mm


def _hpwl(positions, edges):
    """Half-perimeter wirelength over 2-pin edges (sum of |dx| + |dy|)."""
    if edges.shape[0] == 0:
        return 0.0
    delta = np.abs(positions[edges[:, 0]] - positions[edges[:, 1]])
    return float(delta.sum())


def _pack_rows(gates, order, origin_x_mm, origin_y_mm, width_mm, positions):
    """Row-pack ``order`` into a stripe starting at the given origin.

    Returns the used height (mm).  Gate centers are written into
    ``positions``.
    """
    x_um = 0.0
    row = 0
    width_um = width_mm * 1000.0
    row_pitch_um = 60.0 + ROW_SPACING_UM
    for index in order:
        gate = gates[index]
        gate_width = gate.cell.width_um + CELL_SPACING_UM
        if x_um > 0.0 and x_um + gate_width > width_um:
            x_um = 0.0
            row += 1
        positions[index, 0] = origin_x_mm + (x_um + gate.cell.width_um / 2) / 1000.0
        positions[index, 1] = origin_y_mm + (row * row_pitch_um + 30.0) / 1000.0
        x_um += gate_width
    return ((row + 1) * row_pitch_um) / 1000.0


def place_stripes(result, utilization=0.72, aspect_ratio=1.0):
    """Place a partitioned netlist into its floorplan stripes.

    Returns a :class:`StripePlacement`.  Raises
    :class:`RecyclingError` when a plane's gates cannot fit its stripe
    at the requested utilization (should not happen: the floorplanner
    sizes stripes from the largest plane).
    """
    netlist = result.netlist
    floorplan = build_floorplan(result, utilization=utilization, aspect_ratio=aspect_ratio)
    gates = netlist.gates
    levels = logic_levels(netlist)
    positions = np.zeros((netlist.num_gates, 2))

    for stripe in floorplan.stripes:
        members = np.flatnonzero(result.labels == stripe.plane)
        order = sorted(members, key=lambda i: (levels[i], i))
        used_height = _pack_rows(
            gates, order, 0.0, stripe.y_mm, stripe.width_mm, positions
        )
        if used_height > stripe.height_mm + 1e-9:
            raise RecyclingError(
                f"plane {stripe.plane}: gates need {used_height:.3f} mm of "
                f"stripe height, only {stripe.height_mm:.3f} mm available "
                "(lower utilization)"
            )

    # place coupler pairs on the boundaries they cross, spread evenly
    couplings = plan_couplings(result)
    edges = netlist.edge_array()
    labels = result.labels
    sites = []
    per_boundary_counter = {}
    stripe_height = floorplan.stripes[0].height_mm if floorplan.stripes else 0.0
    for edge_index in range(edges.shape[0]):
        u, v = int(edges[edge_index, 0]), int(edges[edge_index, 1])
        low, high = sorted((int(labels[u]), int(labels[v])))
        for boundary in range(low, high):
            slot = per_boundary_counter.get(boundary, 0)
            per_boundary_counter[boundary] = slot + 1
            total = int(couplings.pairs_per_boundary[boundary])
            x_mm = floorplan.die_width_mm * (slot + 1) / (total + 1)
            y_mm = (boundary + 1) * stripe_height
            sites.append(
                CouplerSite(boundary=boundary, x_mm=x_mm, y_mm=y_mm, edge=(u, v))
            )

    hpwl = _hpwl(positions, edges)

    # flat reference: same row packing, single stripe of the same width
    flat_positions = np.zeros_like(positions)
    flat_order = sorted(range(netlist.num_gates), key=lambda i: (levels[i], i))
    _pack_rows(gates, flat_order, 0.0, 0.0, floorplan.die_width_mm, flat_positions)
    flat_hpwl = _hpwl(flat_positions, edges)

    return StripePlacement(
        floorplan=floorplan,
        positions_mm=positions,
        coupler_sites=tuple(sites),
        hpwl_mm=hpwl,
        flat_hpwl_mm=flat_hpwl,
    )
