"""Serial bias chain electrical model.

In current recycling (Fig. 1), the external supply feeds plane 0's bias
bus; plane 0's ground return feeds plane 1's bias bus; and so on, until
plane ``K-1`` returns to the common ground.  Consequences modeled here:

* every plane carries the same supply current ``I_supply`` — the chain
  is feasible only if ``I_supply >= B_k`` for all planes (the rest goes
  through dummies);
* plane ``k``'s local ground floats at ``(K - 1 - k) * V_bias`` above
  the common ground (the bias-bus voltage ``V_bias ~ 2.5 mV``);
* total power is ``I_supply * K * V_bias`` versus
  ``B_cir * V_bias`` for conventional parallel biasing — the relative
  overhead equals ``I_comp / B_cir`` exactly;
* the external feed needs 1 bias line instead of
  ``ceil(B_cir / I_pad)`` parallel lines (the paper's "save 30 bias
  lines" argument).
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.errors import RecyclingError
from repro.utils.units import BIAS_BUS_VOLTAGE_MV


@dataclass(frozen=True)
class SerialBiasChain:
    """Electrical summary of a serially-biased plane stack.

    Currents in mA, voltages in mV, power in uW (1 mA x 1 mV = 1 uW).
    """

    num_planes: int
    supply_current_ma: float
    plane_bias_ma: np.ndarray
    dummy_current_ma: np.ndarray
    ground_potential_mv: np.ndarray
    bias_voltage_mv: float
    power_uw: float
    parallel_power_uw: float

    @property
    def power_overhead_pct(self):
        """Extra static bias power vs parallel biasing, percent."""
        if self.parallel_power_uw == 0:
            return 0.0
        return (self.power_uw / self.parallel_power_uw - 1.0) * 100.0

    @property
    def stack_voltage_mv(self):
        """Total voltage across the chain."""
        return self.num_planes * self.bias_voltage_mv

    def bias_lines_saved(self, pad_limit_ma):
        """Bias lines saved vs parallel feeding through ``pad_limit_ma`` pads."""
        if pad_limit_ma <= 0:
            raise RecyclingError(f"pad limit must be positive, got {pad_limit_ma}")
        total = float(self.plane_bias_ma.sum())
        parallel_lines = max(1, math.ceil(total / pad_limit_ma))
        return parallel_lines - 1


def build_bias_chain(result, supply_current_ma=None, bias_voltage_mv=BIAS_BUS_VOLTAGE_MV):
    """Build the :class:`SerialBiasChain` for a partition result.

    Parameters
    ----------
    result:
        A :class:`~repro.core.partitioner.PartitionResult`.
    supply_current_ma:
        External supply current; defaults to ``B_max`` (the minimum
        feasible value).  Values below ``B_max`` raise
        :class:`RecyclingError` — some plane would be under-biased.
    bias_voltage_mv:
        Per-plane bias bus voltage.
    """
    per_plane = result.plane_bias_ma()
    b_max = float(per_plane.max())
    if supply_current_ma is None:
        supply_current_ma = b_max
    if supply_current_ma < b_max - 1e-9:
        raise RecyclingError(
            f"supply {supply_current_ma:.3f} mA under-biases the hungriest "
            f"plane ({b_max:.3f} mA)"
        )
    dummy = supply_current_ma - per_plane
    k = result.num_planes
    ground = (k - 1 - np.arange(k, dtype=float)) * bias_voltage_mv
    power = supply_current_ma * k * bias_voltage_mv
    parallel_power = float(per_plane.sum()) * bias_voltage_mv
    return SerialBiasChain(
        num_planes=k,
        supply_current_ma=float(supply_current_ma),
        plane_bias_ma=per_plane,
        dummy_current_ma=dummy,
        ground_potential_mv=ground,
        bias_voltage_mv=float(bias_voltage_mv),
        power_uw=float(power),
        parallel_power_uw=parallel_power,
    )
