"""Inter-plane coupling insertion.

Isolated ground planes cannot exchange SFQ pulses galvanically
(Section III-A): every plane-boundary crossing needs a differential
inductive coupling pair — a ``TXDRV`` driver on the sending plane and an
``RXRCV`` receiver on the receiving plane, laid out side by side at the
boundary.  A connection between planes ``p`` and ``q`` therefore
consumes ``|p - q|`` coupling pairs — one per boundary passed — and
gains ``|p - q|`` coupling delays.

:func:`plan_couplings` computes, for a finished partition, exactly which
pairs are needed at which boundary, plus their area and delay overhead.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.utils.errors import RecyclingError
from repro.utils.units import um2_to_mm2

#: Latency of one inductive boundary crossing (driver + receiver), ps.
#: Representative of published differential SFQ transfer circuits.
COUPLING_DELAY_PS = 12.0


@dataclass(frozen=True)
class CouplingPlan:
    """Coupling pairs required to realize a partition's connections.

    Attributes
    ----------
    pairs_per_boundary:
        Array of length ``K - 1``; entry ``k`` is the number of
        driver/receiver pairs sitting on the boundary between plane
        ``k`` and plane ``k + 1``.
    crossing_edges:
        Number of connections that cross at least one boundary.
    total_pairs:
        Sum over boundaries (== sum of connection distances).
    area_overhead_mm2:
        Total extra area of all TXDRV/RXRCV cells.
    worst_added_delay_ps:
        Extra latency of the connection crossing the most boundaries.
    """

    num_planes: int
    pairs_per_boundary: np.ndarray
    crossing_edges: int
    total_pairs: int
    area_overhead_mm2: float
    worst_added_delay_ps: float
    per_edge_distance: np.ndarray = field(repr=False, default=None)

    @property
    def max_boundary_pairs(self):
        """Pairs on the busiest boundary (a routability proxy)."""
        return int(self.pairs_per_boundary.max()) if self.pairs_per_boundary.size else 0


def plan_couplings(result, library=None, coupling_delay_ps=COUPLING_DELAY_PS):
    """Build the :class:`CouplingPlan` for a partition result.

    Parameters
    ----------
    result:
        A :class:`~repro.core.partitioner.PartitionResult`.
    library:
        Cell library providing ``TXDRV``/``RXRCV`` (defaults to the
        netlist's library; both cells must exist there).
    coupling_delay_ps:
        Latency per boundary crossing.
    """
    netlist = result.netlist
    library = library or netlist.library
    if library is None:
        raise RecyclingError("coupling planning needs a cell library with TXDRV/RXRCV")
    for cell_name in ("TXDRV", "RXRCV"):
        if cell_name not in library:
            raise RecyclingError(f"library {library.name!r} has no {cell_name} cell")
    pair_area_um2 = library["TXDRV"].area_um2 + library["RXRCV"].area_um2

    labels = result.labels
    edges = netlist.edge_array()
    num_planes = result.num_planes
    boundaries = np.zeros(max(num_planes - 1, 0), dtype=np.intp)
    if edges.shape[0]:
        lo = np.minimum(labels[edges[:, 0]], labels[edges[:, 1]])
        hi = np.maximum(labels[edges[:, 0]], labels[edges[:, 1]])
        distance = hi - lo
        for boundary in range(num_planes - 1):
            boundaries[boundary] = int(np.count_nonzero((lo <= boundary) & (hi > boundary)))
        crossing = int(np.count_nonzero(distance > 0))
        worst = float(distance.max()) * coupling_delay_ps
    else:
        distance = np.zeros(0, dtype=np.intp)
        crossing = 0
        worst = 0.0

    total_pairs = int(boundaries.sum())
    return CouplingPlan(
        num_planes=num_planes,
        pairs_per_boundary=boundaries,
        crossing_edges=crossing,
        total_pairs=total_pairs,
        area_overhead_mm2=um2_to_mm2(total_pairs * pair_area_um2),
        worst_added_delay_ps=worst,
        per_edge_distance=distance,
    )
