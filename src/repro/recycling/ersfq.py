"""ERSFQ bias-network component sizing.

Section II of the paper distinguishes resistor-biased RSFQ from
energy-efficient ERSFQ, where each gate's bias current flows through a
large inductor fed via a current-limiting Josephson junction.  Current
recycling composes with ERSFQ — the serial chain replaces the external
feed, but every plane still needs its bias inductors, feeding JJs and
(for recycling) dummy structures.  This module sizes those components
with the standard first-order ERSFQ design rules:

* **feeding JJ** — critical current ``I_c ~= bias current * margin``
  (the JJ must carry the gate's bias without switching statically);
* **bias inductor** — must store enough flux that phase buildup over a
  clock period does not starve the gate: ``L_b >= n * Phi0 / I_b`` for
  a chosen quanta budget ``n`` (typically ``n ~ 10`` SFQ pulses);
* **dummy ladder** — a dummy structure passing ``I_d`` is a chain of
  ``ceil(I_d / I_c_max)`` feeding JJs with its own inductor.

Outputs are per-plane component counts and totals — the quantities a
floorplanner needs to budget the bias-network area that the paper's
``A_FS`` free space would absorb.
"""

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import RecyclingError
from repro.utils.units import PHI0_WB

#: Feeding-JJ critical current margin over the carried bias current.
FEEDING_JJ_MARGIN = 1.4
#: Largest practical feeding-JJ critical current (mA).
MAX_FEEDING_JJ_IC_MA = 0.5
#: Flux quanta the bias inductor must absorb per clock window.
QUANTA_BUDGET = 10


@dataclass(frozen=True)
class ErsfqBiasPlan:
    """Per-plane ERSFQ bias-network sizing for a partition."""

    num_planes: int
    plane_bias_ma: np.ndarray
    feeding_jjs_per_plane: np.ndarray
    inductance_nh_per_plane: np.ndarray
    dummy_feeding_jjs_per_plane: np.ndarray
    total_feeding_jjs: int
    total_inductance_nh: float

    def as_dict(self):
        return {
            "num_planes": self.num_planes,
            "total_feeding_jjs": self.total_feeding_jjs,
            "total_inductance_nh": self.total_inductance_nh,
        }


def bias_inductance_nh(bias_ma, quanta=QUANTA_BUDGET):
    """Minimum bias inductance (nH) for a bias current in mA.

    ``L >= n * Phi0 / I``; with Phi0 ~ 2.07 fWb and I in mA the result
    lands in the nH range typical of published ERSFQ designs.
    """
    if bias_ma <= 0:
        raise RecyclingError(f"bias current must be positive, got {bias_ma}")
    return quanta * PHI0_WB / (bias_ma * 1e-3) * 1e9


def feeding_jj_count(bias_ma, margin=FEEDING_JJ_MARGIN, max_ic_ma=MAX_FEEDING_JJ_IC_MA):
    """Feeding JJs needed to deliver ``bias_ma`` with the given margin.

    Each JJ carries at most ``max_ic_ma / margin`` of bias current.
    """
    if bias_ma < 0:
        raise RecyclingError(f"bias current must be non-negative, got {bias_ma}")
    if bias_ma == 0:
        return 0
    per_jj = max_ic_ma / margin
    return int(np.ceil(bias_ma / per_jj))


def plan_ersfq_bias(result, dummy_plan=None, quanta=QUANTA_BUDGET):
    """Size the ERSFQ bias network of every plane of a partition.

    Parameters
    ----------
    result:
        A :class:`~repro.core.partitioner.PartitionResult`.
    dummy_plan:
        Optional :class:`~repro.recycling.dummy.DummyPlan`; computed on
        demand otherwise (dummies need feeding JJs too).
    quanta:
        Flux-quanta budget for the inductor sizing.
    """
    from repro.recycling.dummy import plan_dummies

    if dummy_plan is None:
        dummy_plan = plan_dummies(result)
    per_plane = result.plane_bias_ma()
    k = result.num_planes

    feeding = np.array([feeding_jj_count(float(b)) for b in per_plane], dtype=np.intp)
    inductance = np.array(
        [bias_inductance_nh(float(b), quanta) if b > 0 else 0.0 for b in per_plane]
    )
    dummy_feeding = np.array(
        [
            feeding_jj_count(float(deficit))
            for deficit in dummy_plan.deficit_ma + dummy_plan.overshoot_ma
        ],
        dtype=np.intp,
    )
    return ErsfqBiasPlan(
        num_planes=k,
        plane_bias_ma=per_plane,
        feeding_jjs_per_plane=feeding,
        inductance_nh_per_plane=inductance,
        dummy_feeding_jjs_per_plane=dummy_feeding,
        total_feeding_jjs=int(feeding.sum() + dummy_feeding.sum()),
        total_inductance_nh=float(inductance.sum()),
    )
