"""ERSFQ bias-network component sizing.

Section II of the paper distinguishes resistor-biased RSFQ from
energy-efficient ERSFQ, where each gate's bias current flows through a
large inductor fed via a current-limiting Josephson junction.  Current
recycling composes with ERSFQ — the serial chain replaces the external
feed, but every plane still needs its bias inductors, feeding JJs and
(for recycling) dummy structures.  This module sizes those components
with the standard first-order ERSFQ design rules:

* **feeding JJ** — critical current ``I_c ~= bias current * margin``
  (the JJ must carry the gate's bias without switching statically);
* **bias inductor** — must store enough flux that phase buildup over a
  clock period does not starve the gate: ``L_b >= n * Phi0 / I_b`` for
  a chosen quanta budget ``n`` (typically ``n ~ 10`` SFQ pulses);
* **dummy ladder** — a dummy structure passing ``I_d`` is a chain of
  ``ceil(I_d / I_c_max)`` feeding JJs with its own inductor.

Outputs are per-plane component counts and totals — the quantities a
floorplanner needs to budget the bias-network area that the paper's
``A_FS`` free space would absorb.

The module also carries the first-order **static-power model** that
makes recycling worth quantifying (Kirichenko et al., "Zero Static
Power Dissipation Biasing of RSFQ Circuits"; the xeSFQ paper repeats
the same component-energy accounting):

* a resistor-biased RSFQ gate burns ``V_bus * I_design`` *statically*
  in its bias resistor — per feeding point the network is provisioned
  for ``margin`` times the carried current, so the resistive drop
  dissipates ``feeding JJs * (max_ic / margin) * margin * V_bus``
  whether or not the gate ever switches;
* an ERSFQ bias network (feeding JJ + inductor, here composed with the
  recycled serial chain) has **zero** static dissipation; its bias
  supply only injects one ``Phi0`` per feeding point per clock, i.e.
  ``P = I_supply * Phi0 * f_clk``, where recycling shrinks
  ``I_supply`` from ``B_cir`` to ``B_max``.

:func:`estimate_bias_power` turns a per-plane bias vector into both
numbers plus the saving percentage — the energy annotation every Pareto
sweep point carries (see :mod:`repro.harness.pareto`).
"""

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import RecyclingError
from repro.utils.units import BIAS_BUS_VOLTAGE_MV, PHI0_WB

#: Feeding-JJ critical current margin over the carried bias current.
FEEDING_JJ_MARGIN = 1.4
#: Largest practical feeding-JJ critical current (mA).
MAX_FEEDING_JJ_IC_MA = 0.5
#: Flux quanta the bias inductor must absorb per clock window.
QUANTA_BUDGET = 10
#: Default clock frequency of the dynamic-power estimate (GHz); RSFQ
#: logic families conventionally quote bias-network energy at ~20 GHz.
DEFAULT_CLOCK_GHZ = 20.0


@dataclass(frozen=True)
class ErsfqBiasPlan:
    """Per-plane ERSFQ bias-network sizing for a partition."""

    num_planes: int
    plane_bias_ma: np.ndarray
    feeding_jjs_per_plane: np.ndarray
    inductance_nh_per_plane: np.ndarray
    dummy_feeding_jjs_per_plane: np.ndarray
    total_feeding_jjs: int
    total_inductance_nh: float

    def as_dict(self):
        return {
            "num_planes": self.num_planes,
            "total_feeding_jjs": self.total_feeding_jjs,
            "total_inductance_nh": self.total_inductance_nh,
        }


def bias_inductance_nh(bias_ma, quanta=QUANTA_BUDGET):
    """Minimum bias inductance (nH) for a bias current in mA.

    ``L >= n * Phi0 / I``; with Phi0 ~ 2.07 fWb and I in mA the result
    lands in the nH range typical of published ERSFQ designs.

    A zero-bias plane (inevitable at high K in a sweep) needs no bias
    inductor at all, so it sizes to 0 nH; only a *negative* current is
    a caller error.
    """
    if bias_ma < 0:
        raise RecyclingError(f"bias current must be non-negative, got {bias_ma}")
    if bias_ma == 0:
        return 0.0
    return quanta * PHI0_WB / (bias_ma * 1e-3) * 1e9


def feeding_jj_count(bias_ma, margin=FEEDING_JJ_MARGIN, max_ic_ma=MAX_FEEDING_JJ_IC_MA):
    """Feeding JJs needed to deliver ``bias_ma`` with the given margin.

    Each JJ carries at most ``max_ic_ma / margin`` of bias current.
    """
    if bias_ma < 0:
        raise RecyclingError(f"bias current must be non-negative, got {bias_ma}")
    if bias_ma == 0:
        return 0
    per_jj = max_ic_ma / margin
    return int(np.ceil(bias_ma / per_jj))


@dataclass(frozen=True)
class BiasPowerReport:
    """RSFQ-resistive vs ERSFQ-recycled bias power for one partition.

    All powers are in microwatts; currents in mA.  ``supply_ma_rsfq``
    is the parallel-fed total ``B_cir``; ``supply_ma_ersfq`` is the
    recycled serial chain's ``B_max``.
    """

    energy_uw_rsfq: float
    energy_uw_ersfq: float
    saving_pct: float
    supply_ma_rsfq: float
    supply_ma_ersfq: float
    feeding_jjs: int
    clock_ghz: float

    def as_dict(self):
        return {
            "energy_uw_rsfq": self.energy_uw_rsfq,
            "energy_uw_ersfq": self.energy_uw_ersfq,
            "saving_pct": self.saving_pct,
            "supply_ma_rsfq": self.supply_ma_rsfq,
            "supply_ma_ersfq": self.supply_ma_ersfq,
            "feeding_jjs": self.feeding_jjs,
            "clock_ghz": self.clock_ghz,
        }


def rsfq_static_power_uw(
    per_plane_ma,
    margin=FEEDING_JJ_MARGIN,
    max_ic_ma=MAX_FEEDING_JJ_IC_MA,
    bus_mv=BIAS_BUS_VOLTAGE_MV,
):
    """Static dissipation (µW) of a resistor-biased bias network.

    Each feeding point is provisioned for ``max_ic_ma`` of design
    current; the bias resistor drops the full bus voltage across it, so
    a plane with ``n`` feeding JJs burns ``n * max_ic_ma * bus_mv``
    statically (mA x mV = µW).  Zero-bias planes contribute nothing.
    """
    total = 0.0
    for bias in per_plane_ma:
        total += feeding_jj_count(float(bias), margin, max_ic_ma) * max_ic_ma * bus_mv
    return total


def ersfq_dynamic_power_uw(supply_ma, clock_ghz=DEFAULT_CLOCK_GHZ):
    """Dynamic bias power (µW) of an ERSFQ supply at a clock rate.

    The feeding JJs admit exactly one flux quantum per clock, so the
    supply delivers ``P = I_supply * Phi0 * f_clk`` and nothing more —
    the zero-static-power property the ERSFQ/xeSFQ papers trade on.
    """
    if supply_ma < 0:
        raise RecyclingError(f"supply current must be non-negative, got {supply_ma}")
    if clock_ghz <= 0:
        raise RecyclingError(f"clock frequency must be positive, got {clock_ghz}")
    return supply_ma * 1e-3 * PHI0_WB * clock_ghz * 1e9 * 1e6


def estimate_bias_power(
    per_plane_ma,
    clock_ghz=DEFAULT_CLOCK_GHZ,
    margin=FEEDING_JJ_MARGIN,
    max_ic_ma=MAX_FEEDING_JJ_IC_MA,
    bus_mv=BIAS_BUS_VOLTAGE_MV,
):
    """Compare RSFQ-resistive vs ERSFQ-recycled bias power for a partition.

    ``per_plane_ma`` is the per-plane bias vector (e.g.
    ``report.bias.per_plane_ma``).  The RSFQ baseline feeds every plane
    in parallel and burns static power in each feeding point's
    resistor; the ERSFQ-recycled network drives the serial chain from a
    single ``B_max`` supply and only pays the flux-quantum injection
    power at ``clock_ghz``.
    """
    biases = [float(b) for b in per_plane_ma]
    for bias in biases:
        if bias < 0:
            raise RecyclingError(f"bias current must be non-negative, got {bias}")
    supply_rsfq = float(sum(biases))
    supply_ersfq = float(max(biases)) if biases else 0.0
    feeding = sum(feeding_jj_count(b, margin, max_ic_ma) for b in biases)
    p_rsfq = rsfq_static_power_uw(biases, margin, max_ic_ma, bus_mv)
    p_ersfq = ersfq_dynamic_power_uw(supply_ersfq, clock_ghz)
    if p_rsfq > 0:
        saving = (1.0 - p_ersfq / p_rsfq) * 100.0
    else:
        saving = 0.0
    return BiasPowerReport(
        energy_uw_rsfq=p_rsfq,
        energy_uw_ersfq=p_ersfq,
        saving_pct=saving,
        supply_ma_rsfq=supply_rsfq,
        supply_ma_ersfq=supply_ersfq,
        feeding_jjs=feeding,
        clock_ghz=float(clock_ghz),
    )


def plan_ersfq_bias(result, dummy_plan=None, quanta=QUANTA_BUDGET):
    """Size the ERSFQ bias network of every plane of a partition.

    Parameters
    ----------
    result:
        A :class:`~repro.core.partitioner.PartitionResult`.
    dummy_plan:
        Optional :class:`~repro.recycling.dummy.DummyPlan`; computed on
        demand otherwise (dummies need feeding JJs too).
    quanta:
        Flux-quanta budget for the inductor sizing.
    """
    from repro.recycling.dummy import plan_dummies

    if dummy_plan is None:
        dummy_plan = plan_dummies(result)
    per_plane = result.plane_bias_ma()
    k = result.num_planes

    feeding = np.array([feeding_jj_count(float(b)) for b in per_plane], dtype=np.intp)
    inductance = np.array(
        [bias_inductance_nh(float(b), quanta) for b in per_plane]
    )
    dummy_feeding = np.array(
        [
            feeding_jj_count(float(deficit))
            for deficit in dummy_plan.deficit_ma + dummy_plan.overshoot_ma
        ],
        dtype=np.intp,
    )
    return ErsfqBiasPlan(
        num_planes=k,
        plane_bias_ma=per_plane,
        feeding_jjs_per_plane=feeding,
        inductance_nh_per_plane=inductance,
        dummy_feeding_jjs_per_plane=dummy_feeding,
        total_feeding_jjs=int(feeding.sum() + dummy_feeding.sum()),
        total_inductance_nh=float(inductance.sum()),
    )
