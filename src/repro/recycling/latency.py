"""Timing impact of inter-plane couplings (extension of Section III-B.3).

The paper notes that routing a connection through several ground planes
"decreases the operating frequency of the circuit" but does not
quantify it.  This module does, under the standard SFQ timing model for
fully path-balanced, flow-clocked circuits:

* the clock period is limited by the slowest *stage-to-stage* transfer:
  gate clock-to-output delay + interconnect delay + setup;
* an intra-plane connection costs one wire delay; a connection at plane
  distance ``d`` adds ``d`` inductive-coupling crossings of
  :data:`~repro.recycling.coupling.COUPLING_DELAY_PS` each.

:func:`analyze_latency` reports the achievable clock frequency before
and after partitioning and the slowdown factor — the real cost of the
``d > 1`` connections the paper's F1 term fights.
"""

from dataclasses import dataclass

import numpy as np

from repro.metrics.distance import connection_distances
from repro.recycling.coupling import COUPLING_DELAY_PS

#: Clock-to-output delay of a clocked SFQ gate (ps), typical of
#: published RSFQ libraries.
GATE_DELAY_PS = 6.0
#: Point-to-point interconnect (JTL/PTL) delay within one plane (ps).
WIRE_DELAY_PS = 4.0
#: Receiver setup margin (ps).
SETUP_MARGIN_PS = 2.0


@dataclass(frozen=True)
class LatencyReport:
    """Clock-rate impact of a partition's inter-plane crossings."""

    circuit: str
    num_planes: int
    base_period_ps: float
    partitioned_period_ps: float
    worst_edge_distance: int
    crossing_edges: int

    @property
    def base_frequency_ghz(self):
        return 1000.0 / self.base_period_ps

    @property
    def partitioned_frequency_ghz(self):
        return 1000.0 / self.partitioned_period_ps

    @property
    def slowdown_factor(self):
        return self.partitioned_period_ps / self.base_period_ps

    @property
    def frequency_loss_pct(self):
        return (1.0 - self.base_period_ps / self.partitioned_period_ps) * 100.0


def edge_delays_ps(result, coupling_delay_ps=COUPLING_DELAY_PS):
    """Per-connection stage transfer delay (ps), shape ``(|E|,)``."""
    distances = connection_distances(result.labels, result.netlist.edge_array())
    return (
        GATE_DELAY_PS
        + WIRE_DELAY_PS
        + SETUP_MARGIN_PS
        + distances.astype(float) * coupling_delay_ps
    )


def analyze_latency(result, coupling_delay_ps=COUPLING_DELAY_PS):
    """Build the :class:`LatencyReport` for a partition result.

    A circuit with no connections degenerates to the base period.
    """
    netlist = result.netlist
    distances = connection_distances(result.labels, netlist.edge_array())
    base_period = GATE_DELAY_PS + WIRE_DELAY_PS + SETUP_MARGIN_PS
    if distances.size:
        worst = int(distances.max())
        period = base_period + worst * coupling_delay_ps
        crossing = int(np.count_nonzero(distances > 0))
    else:
        worst = 0
        period = base_period
        crossing = 0
    return LatencyReport(
        circuit=netlist.name,
        num_planes=result.num_planes,
        base_period_ps=base_period,
        partitioned_period_ps=period,
        worst_edge_distance=worst,
        crossing_edges=crossing,
    )
