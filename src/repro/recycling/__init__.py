"""Current-recycling substrate (Sections II-III and Fig. 1 of the paper).

Turns a finished partition into a physically-checked current-recycling
plan:

* :mod:`repro.recycling.coupling` — inductive driver/receiver insertion
  for every plane-boundary crossing;
* :mod:`repro.recycling.dummy` — dummy bias-structure sizing that
  equalizes per-plane currents (Section III-B.1);
* :mod:`repro.recycling.bias_network` — serial bias chain electrical
  model (currents, ground potentials, power);
* :mod:`repro.recycling.floorplan` — stacked-plane floorplan and the
  Fig. 1 rendering;
* :mod:`repro.recycling.verify` — end-to-end feasibility checks.
"""

from repro.recycling.coupling import CouplingPlan, plan_couplings, COUPLING_DELAY_PS
from repro.recycling.dummy import DummyPlan, plan_dummies, apply_dummies
from repro.recycling.bias_network import SerialBiasChain, build_bias_chain
from repro.recycling.floorplan import GroundPlaneFloorplan, build_floorplan
from repro.recycling.latency import LatencyReport, analyze_latency, edge_delays_ps
from repro.recycling.ersfq import ErsfqBiasPlan, plan_ersfq_bias
from repro.recycling.stripe_placement import StripePlacement, place_stripes
from repro.recycling.verify import RecyclingPlan, plan_recycling, verify_recycling

__all__ = [
    "CouplingPlan",
    "plan_couplings",
    "COUPLING_DELAY_PS",
    "DummyPlan",
    "plan_dummies",
    "apply_dummies",
    "SerialBiasChain",
    "build_bias_chain",
    "GroundPlaneFloorplan",
    "build_floorplan",
    "LatencyReport",
    "analyze_latency",
    "edge_delays_ps",
    "ErsfqBiasPlan",
    "plan_ersfq_bias",
    "StripePlacement",
    "place_stripes",
    "RecyclingPlan",
    "plan_recycling",
    "verify_recycling",
]
