"""Dummy bias-structure planning (Section III-B.1 of the paper).

All planes of a serial bias chain carry the *same* supply current, so a
plane whose gates need less than ``B_max`` must burn the difference in
dummy structures — JJ/inductor ladders that pass bias current but carry
no signal.  ``I_comp = sum_k (B_max - B_k)`` (eq. (11)) is exactly the
current flowing through dummies, the paper's headline partition-quality
metric.

:func:`plan_dummies` sizes the dummy population per plane;
:func:`apply_dummies` materializes them into a copy of the netlist so
the equalized circuit can be re-exported (DEF/Verilog) and re-checked.
"""

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import RecyclingError
from repro.utils.units import um2_to_mm2


@dataclass(frozen=True)
class DummyPlan:
    """Dummy structures required to equalize a partition's bias currents.

    Attributes
    ----------
    deficit_ma:
        Per-plane current shortfall ``B_max - B_k`` (mA), shape ``(K,)``.
    count_per_plane:
        Dummy instances per plane (``ceil(deficit / dummy cell bias)``).
    i_comp_ma / i_comp_pct:
        Total compensation current (eq. (11)), absolute and as % of
        ``B_cir``.
    overshoot_ma:
        Extra current absorbed beyond the exact deficit due to
        quantized dummy sizes, per plane.
    area_mm2:
        Total dummy cell area.
    """

    num_planes: int
    dummy_cell: str
    deficit_ma: np.ndarray
    count_per_plane: np.ndarray
    i_comp_ma: float
    i_comp_pct: float
    overshoot_ma: np.ndarray
    area_mm2: float

    @property
    def total_count(self):
        return int(self.count_per_plane.sum())


def plan_dummies(result, library=None, tolerance_ma=1e-9):
    """Size dummy structures for every plane of a partition."""
    netlist = result.netlist
    library = library or netlist.library
    if library is None or "DUMMY" not in library:
        raise RecyclingError("dummy planning needs a library with a DUMMY cell")
    dummy = library["DUMMY"]
    if dummy.bias_ma <= 0:
        raise RecyclingError("DUMMY cell must sink positive bias current")

    per_plane = result.plane_bias_ma()
    b_max = float(per_plane.max())
    deficit = b_max - per_plane
    deficit[deficit < tolerance_ma] = 0.0
    counts = np.ceil(deficit / dummy.bias_ma).astype(np.intp)
    overshoot = counts * dummy.bias_ma - deficit
    total_bias = float(per_plane.sum())
    i_comp = float(deficit.sum())
    return DummyPlan(
        num_planes=result.num_planes,
        dummy_cell=dummy.name,
        deficit_ma=deficit,
        count_per_plane=counts,
        i_comp_ma=i_comp,
        i_comp_pct=(i_comp / total_bias * 100.0) if total_bias else 0.0,
        overshoot_ma=overshoot,
        area_mm2=um2_to_mm2(float(counts.sum()) * dummy.area_um2),
    )


def apply_dummies(result, plan=None, library=None):
    """Materialize a dummy plan into a netlist copy.

    Returns ``(netlist, labels)`` — the equalized netlist (original
    gates plus ``DUMMY<k>_<i>`` instances) and the extended label
    vector assigning each dummy to its plane.  Dummies carry no signal
    connections, so partition metrics on the extended netlist keep the
    same distance histogram while the bias spread collapses to the
    quantization overshoot.
    """
    if plan is None:
        plan = plan_dummies(result, library=library)
    netlist = result.netlist.copy()
    library = library or netlist.library
    dummy = library["DUMMY"]
    labels = list(result.labels)
    for plane, count in enumerate(plan.count_per_plane):
        for i in range(int(count)):
            netlist.add_gate(f"DUMMY{plane}_{i}", dummy)
            labels.append(plane)
    return netlist, np.asarray(labels, dtype=np.intp)
