"""Stacked ground-plane floorplan — the geometry of Fig. 1.

The paper assumes all K ground planes are parallel stripes with bias
current flowing from the top block to the bottom block, chip pads and
I/O on the perimeter.  :func:`build_floorplan` sizes those stripes from
a partition (every stripe as wide as the die, tall enough for the
largest plane at a given row utilization) and
:meth:`GroundPlaneFloorplan.render` draws the Fig. 1 diagram —
stripes, the serial bias feed, and per-boundary coupling counts — as
ASCII art for terminals and logs.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.recycling.bias_network import build_bias_chain
from repro.recycling.coupling import plan_couplings
from repro.utils.errors import RecyclingError


@dataclass(frozen=True)
class PlaneStripe:
    """One ground plane's stripe: plane index and geometry in mm."""

    plane: int
    y_mm: float
    height_mm: float
    width_mm: float
    gate_count: int
    gate_area_mm2: float
    utilization: float


@dataclass(frozen=True)
class GroundPlaneFloorplan:
    """A full stacked-plane floorplan."""

    circuit: str
    num_planes: int
    die_width_mm: float
    die_height_mm: float
    stripes: tuple
    pairs_per_boundary: np.ndarray
    supply_current_ma: float

    @property
    def total_area_mm2(self):
        return self.die_width_mm * self.die_height_mm

    def render(self, width=56):
        """ASCII rendering of the Fig. 1 current-recycling stack."""
        bar = "+" + "-" * (width - 2) + "+"
        lines = [
            f"current recycling floorplan: {self.circuit} "
            f"(K={self.num_planes}, die {self.die_width_mm:.2f} x {self.die_height_mm:.2f} mm)",
            f"external supply --> {self.supply_current_ma:.2f} mA",
            bar,
        ]
        for stripe in self.stripes:
            label = (
                f" GP{stripe.plane}  {stripe.gate_count} gates  "
                f"{stripe.gate_area_mm2:.4f} mm^2  util {stripe.utilization * 100:.0f}%"
            )
            lines.append("|" + label.ljust(width - 2)[: width - 2] + "|")
            if stripe.plane < self.num_planes - 1:
                pairs = int(self.pairs_per_boundary[stripe.plane])
                coupling = f" ==== {pairs} coupling pairs ==== "
                lines.append("|" + coupling.center(width - 2, "~")[: width - 2] + "|")
        lines.append(bar)
        lines.append("ground return --> common ground (chip perimeter, I/O pads)")
        return "\n".join(lines)


def build_floorplan(result, utilization=0.72, aspect_ratio=1.0):
    """Size the stacked-plane floorplan for a partition.

    Every stripe spans the die width; the stripe height is set by the
    *largest* plane's gate area at the given row utilization (all
    stripes equal-height, so smaller planes show the paper's ``A_FS``
    free space as reduced utilization).

    Parameters
    ----------
    utilization:
        Target gate-area / stripe-area ratio of the fullest stripe.
    aspect_ratio:
        Target die width / height.
    """
    if not 0.05 <= utilization <= 1.0:
        raise RecyclingError(f"utilization must be in [0.05, 1], got {utilization}")
    netlist = result.netlist
    k = result.num_planes
    plane_area = result.plane_area_mm2()
    plane_sizes = result.plane_sizes()
    a_max = float(plane_area.max())
    if a_max <= 0:
        raise RecyclingError(f"netlist {netlist.name!r} has zero gate area")

    stripe_area = a_max / utilization
    die_height = math.sqrt(k * stripe_area / aspect_ratio)
    stripe_height = die_height / k
    die_width = stripe_area / stripe_height

    stripes = []
    for plane in range(k):
        stripes.append(
            PlaneStripe(
                plane=plane,
                y_mm=plane * stripe_height,
                height_mm=stripe_height,
                width_mm=die_width,
                gate_count=int(plane_sizes[plane]),
                gate_area_mm2=float(plane_area[plane]),
                utilization=float(plane_area[plane] / stripe_area),
            )
        )

    couplings = plan_couplings(result)
    chain = build_bias_chain(result)
    return GroundPlaneFloorplan(
        circuit=netlist.name,
        num_planes=k,
        die_width_mm=die_width,
        die_height_mm=die_height,
        stripes=tuple(stripes),
        pairs_per_boundary=couplings.pairs_per_boundary,
        supply_current_ma=chain.supply_current_ma,
    )
