"""Core contribution of the paper: ground-plane partitioning.

Public entry points:

* :func:`repro.core.partitioner.partition` — partition a netlist into K
  serially-biased ground planes (Algorithm 1 + restarts + rounding).
* :func:`repro.core.planner.plan_bias_limited` — find the smallest plane
  count whose maximum per-plane bias stays under a supply limit
  (Table III experiment).
"""

from repro.core.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.config import PartitionConfig
from repro.core.assignment import (
    random_assignment,
    normalize_rows,
    round_assignment,
    labels_from_assignment,
    one_hot,
)
from repro.core.cost import CostTerms, cost_terms, total_cost, integer_cost
from repro.core.gradients import cost_gradient
from repro.core.kernel import (
    SPARSE_INCIDENCE_THRESHOLD,
    BatchedCostTerms,
    EdgeIncidence,
    FusedKernel,
    SparseEdgeIncidence,
    build_incidence,
)
from repro.core.megabatch import SolveSpec, partition_packed
from repro.core.optimizer import (
    GradientDescentTrace,
    minimize_assignment,
    minimize_assignment_batch,
)
from repro.core.partitioner import PartitionResult, finalize_traces, partition
from repro.core.planner import BiasLimitedPlan, plan_bias_limited
from repro.core.refinement import refine_greedy
from repro.core.scipy_optimizer import minimize_assignment_lbfgs, partition_lbfgs

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "PartitionConfig",
    "random_assignment",
    "normalize_rows",
    "round_assignment",
    "labels_from_assignment",
    "one_hot",
    "CostTerms",
    "cost_terms",
    "total_cost",
    "integer_cost",
    "cost_gradient",
    "BatchedCostTerms",
    "EdgeIncidence",
    "SparseEdgeIncidence",
    "build_incidence",
    "SPARSE_INCIDENCE_THRESHOLD",
    "FusedKernel",
    "SolveSpec",
    "partition_packed",
    "GradientDescentTrace",
    "minimize_assignment",
    "minimize_assignment_batch",
    "PartitionResult",
    "partition",
    "finalize_traces",
    "BiasLimitedPlan",
    "plan_bias_limited",
    "refine_greedy",
    "minimize_assignment_lbfgs",
    "partition_lbfgs",
]
