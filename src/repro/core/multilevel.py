"""Coarse-to-fine warm-started solves — ``engine="multilevel"``.

A standard accelerator from the multilevel partitioning literature
(hMETIS-style V-cycles, Karypis et al.), applied here as a *warm start*
rather than a replacement for the paper's algorithm:

1. **coarsen** — heavy-edge matching (:mod:`repro.core.coarsening`)
   collapses strongly connected gate pairs; bias/area add, parallel
   edges keep multiplicity, so the coarse cost terms mirror the fine
   ones;
2. **coarse solve** — every restart runs Algorithm 1 on the coarsest
   problem through the batched fused kernel.  The coarse problem has
   tens of nodes instead of thousands, so these iterations are nearly
   free;
3. **interpolate** — each restart's relaxed coarse ``w`` is prolongated
   to the fine level (every fine gate inherits its supernode's row;
   rows stay normalized by construction);
4. **refine** — the standard batched gradient descent runs on the fine
   problem from that warm start, capped at
   ``config.multilevel_fine_iterations`` per restart.  The cap matters:
   a warm start from a *converged* coarse solution sits in a gentle
   valley where the relative-change stopping margin keeps firing for
   hundreds of tail iterations that polish the relaxed cost without
   changing the rounded labels, so an uncapped warm-started descent
   actually runs *longer* than a cold one.  A short budget keeps the
   interpolated structure (d<=1 typically 0.9+ vs 0.6 cold) and cuts
   fine-level work well below the cold-start engines.

The interpolated rows are constant within each supernode, so plain
argmax rounding would commit whole clusters to one plane and wreck the
integer-level bias balance; :func:`~repro.core.partitioner.partition`
therefore rounds this engine's traces with the capacity-aware
:func:`~repro.core.assignment.round_assignment_balanced` — but only
when coarsening actually ran (``trace.coarse_levels`` is set).

Pinned gates stay singleton supernodes through every level, so hard
constraints hold on the coarse problem too.  When the problem is small
(within 2x of the coarsest size) or has no contractible edges, this
degrades gracefully to the plain *uncapped* batched solve — cold start,
same iterations and relaxed solution as ``engine="batched"``.  Those
fall-through traces carry no ``coarse_*`` attributes, and the
partitioner rounds them with the plain argmax, so small circuits get
*exactly* the batched engine's labels and metrics (previously the
capacity-aware rounding applied anyway and cost measurable quality on
sub-floor circuits, e.g. KSA4 in BENCH_suite.json).
"""

import numpy as np

from repro.core.coarsening import compose_maps, coarsen_problem, expand_weighted_edges
from repro.core.optimizer import (
    _reseed_assignment,
    _validate_problem,
    minimize_assignment_batch,
)
from repro.obs import OBS
from repro.utils.rng import make_rng, spawn_rngs


def default_coarsest_nodes(num_planes):
    """Coarsening floor: enough supernodes that K planes stay meaningful."""
    return max(40, 6 * num_planes)


def minimize_assignment_multilevel(
    num_planes, edges, bias, area, config, rngs=None, pinned=None, restarts=None,
    coarsen_rng=None, backend=None,
):
    """Run warm-started coarse-to-fine solves for all restarts.

    Parameters match :func:`repro.core.optimizer.minimize_assignment_batch`
    (``backend`` selects the array backend for every level's solve);
    ``coarsen_rng`` seeds the heavy-edge matching order (one extra
    deterministic stream so restart initializations stay identical to
    the other engines' for the same seed).

    Returns a list of :class:`~repro.core.optimizer.GradientDescentTrace`
    (one per restart) whose ``w``/``iterations``/``converged`` describe
    the *fine-level* descent; coarse-solve effort is reported on the
    side attributes ``coarse_iterations`` / ``coarse_converged`` /
    ``coarse_levels``.
    """
    bias_arr, pinned = _validate_problem(num_planes, bias, pinned)
    num_gates = bias_arr.shape[0]

    if rngs is None or isinstance(rngs, (int, np.integer, np.random.Generator)):
        count = int(restarts if restarts is not None else config.restarts)
        rngs = spawn_rngs(make_rng(rngs), count)
    rngs = list(rngs)

    coarsest = config.multilevel_coarsest_nodes or default_coarsest_nodes(num_planes)
    if num_gates <= 2 * coarsest:
        # Too small for coarsening to pay for itself (the coarse problem
        # would be barely smaller than the fine one): run the plain
        # uncapped batched solve instead.
        return minimize_assignment_batch(
            num_planes, edges, bias_arr, area, config, rngs=rngs, pinned=pinned,
            backend=backend,
        )
    with OBS.trace.span("multilevel_coarsen", gates=num_gates) as span:
        levels, maps = coarsen_problem(
            num_gates,
            np.asarray(edges, dtype=np.intp),
            bias_arr,
            area,
            coarsest,
            make_rng(coarsen_rng),
            frozen=pinned.keys() if pinned else None,
        )
        span.set(levels=len(maps), coarsest_nodes=int(levels[-1][0].shape[0]))

    if not maps:
        # Nothing to coarsen (tiny circuit or edgeless graph): the warm
        # start would just be a second cold solve, so skip straight to
        # the plain batched engine.
        return minimize_assignment_batch(
            num_planes, edges, bias_arr, area, config, rngs=rngs, pinned=pinned,
            backend=backend,
        )

    composed = compose_maps(maps)
    coarse_bias, coarse_area, coarse_edges, coarse_weights = levels[-1]
    coarse_pinned = {int(composed[gate]): plane for gate, plane in pinned.items()}

    with OBS.trace.span("multilevel_coarse_solve", nodes=int(coarse_bias.shape[0])):
        coarse_traces = minimize_assignment_batch(
            num_planes,
            expand_weighted_edges(coarse_edges, coarse_weights),
            coarse_bias,
            coarse_area,
            config,
            rngs=rngs,
            pinned=coarse_pinned,
            backend=backend,
        )

    # Prolongation: every fine gate takes its supernode's relaxed row.
    # Rows sum to 1 at the coarse level, so the fine stack needs no
    # re-normalization before the descent takes over.
    stack = np.stack([trace.w for trace in coarse_traces])[:, composed, :]

    # A coarse restart that ended quarantined (or otherwise produced a
    # non-finite w) would poison the fine-level batch through its warm
    # start; replace such rows with a fresh deterministic cold start.
    bad_rows = ~np.isfinite(stack.reshape(stack.shape[0], -1)).all(axis=1)
    if bad_rows.any():
        for r in np.flatnonzero(bad_rows):
            stack[r] = _reseed_assignment(
                num_gates, num_planes, r, 0, pinned
            )
        if OBS.enabled:
            OBS.metrics.counter("multilevel.stack_reseeded").inc(int(bad_rows.sum()))

    fine_config = config.with_(
        max_iterations=min(config.multilevel_fine_iterations, config.max_iterations)
    )
    with OBS.trace.span("multilevel_fine_solve", gates=num_gates):
        traces = minimize_assignment_batch(
            num_planes, edges, bias_arr, area, fine_config, w0=stack, pinned=pinned,
            backend=backend,
        )

    if OBS.enabled:
        OBS.metrics.counter("multilevel.coarse_iterations").inc(
            sum(t.iterations for t in coarse_traces)
        )
        OBS.metrics.counter("multilevel.fine_iterations").inc(
            sum(t.iterations for t in traces)
        )

    for trace, coarse in zip(traces, coarse_traces):
        trace.coarse_iterations = coarse.iterations
        trace.coarse_converged = coarse.converged
        trace.coarse_levels = len(maps)
    return traces
