"""Warm-start incremental re-partitioning for ECO edits.

An engineering change order touches a handful of gates; the partition of
everything else is still near-optimal (the scalable-assignment and SFQ
partitioning literature both observe that assignment quality survives
local perturbation).  :func:`incremental_partition` exploits that:

1. Expand the touched gates into a *perturbed region* — every gate
   within :func:`resolve_eco_halo` undirected hops (BFS over the edited
   netlist).
2. Collapse everything **outside** the region into K pinned per-plane
   super-gates carrying the aggregate bias/area of their plane, so the
   subproblem costs O(region + K) per iteration instead of O(netlist) —
   the plane-balance terms (F2/F3) of the collapsed problem equal the
   full netlist's exactly, and region-crossing connections keep their
   plane distance (F1).
3. Run a short descent on the subproblem (``DEFAULT_ECO_ITERATIONS``
   iterations, ``DEFAULT_ECO_RESTARTS`` restarts) — restart 0 polishes
   the carried assignment itself, restart 1 re-randomizes the region to
   explore.  Each restart is rounded, spliced into the carried
   assignment and scored by **full-netlist** integer cost.

Two guards keep the fast path honest, both falling back to a cold
:func:`~repro.core.partitioner.partition`:

* **Size threshold** — when the region exceeds
  :func:`resolve_eco_threshold` of the netlist, locality is gone and a
  cold solve is both better and barely slower.
* **Quality guard** — when the warm result's integer cost regresses
  past ``(1 + eps)`` of the deterministic carried-forward reference
  assignment (previous labels, new gates placed by neighbor majority),
  the edit invalidated the old structure; solve cold.

The returned ``info`` dict records which path ran and why, and the
service exports it as ``service.eco.*`` counters (docs/eco.md).
"""

import numpy as np

from repro import envcfg
from repro.core.assignment import random_assignment, round_assignment
from repro.core.config import PartitionConfig
from repro.core.cost import integer_cost
from repro.core.optimizer import minimize_assignment_batch
from repro.core.partitioner import PartitionResult, partition
from repro.netlist.graph import adjacency_lists, bounded_bfs_levels
from repro.obs import OBS
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng, spawn_rngs

#: Default halo radius (hops) around touched gates.
DEFAULT_ECO_HALO = 2
#: Iteration budget of the warm region polish.  The carried assignment
#: is already near-optimal, so a short descent converges; the quality
#: guard catches the exceptions and re-solves cold.
DEFAULT_ECO_ITERATIONS = 12
#: Restart budget of the warm solve: the carried polish plus one
#: re-randomized explorer.  More restarts almost never beat the polish
#: on a local edit (the guard protects the rare case they would).
DEFAULT_ECO_RESTARTS = 2
#: Default maximum region fraction before the warm path solves cold.
DEFAULT_ECO_THRESHOLD = 0.25
#: Default quality-guard tolerance.
DEFAULT_ECO_QUALITY_EPS = 0.05

#: Absolute slop added to every cost comparison so exactly-equal costs
#: never trip the guard on floating-point noise.
_COST_ATOL = 1e-9


def resolve_eco_halo(value=None):
    """Halo radius: explicit ``value``, else REPRO_ECO_HALO, else 2."""
    if value is not None:
        halo = int(value)
    else:
        halo = envcfg.number(
            "REPRO_ECO_HALO", int, lambda v: v >= 0, "an integer >= 0"
        )
        if halo is None:
            halo = DEFAULT_ECO_HALO
    if halo < 0:
        raise PartitionError(f"ECO halo must be >= 0, got {halo}")
    return halo


def resolve_eco_threshold(value=None):
    """Region-size threshold: ``value``, else REPRO_ECO_THRESHOLD, else 0.25."""
    if value is not None:
        threshold = float(value)
    else:
        threshold = envcfg.number(
            "REPRO_ECO_THRESHOLD", float, lambda v: 0 < v <= 1,
            "a fraction in (0, 1]",
        )
        if threshold is None:
            threshold = DEFAULT_ECO_THRESHOLD
    if not 0 < threshold <= 1:
        raise PartitionError(
            f"ECO threshold must be a fraction in (0, 1], got {threshold}"
        )
    return threshold


def resolve_eco_quality_eps(value=None):
    """Quality guard: ``value``, else REPRO_ECO_QUALITY_EPS, else 0.05."""
    if value is not None:
        eps = float(value)
    else:
        eps = envcfg.number(
            "REPRO_ECO_QUALITY_EPS", float, lambda v: v >= 0, "a float >= 0"
        )
        if eps is None:
            eps = DEFAULT_ECO_QUALITY_EPS
    if eps < 0:
        raise PartitionError(f"ECO quality eps must be >= 0, got {eps}")
    return eps


def quality_ok(candidate_cost, reference_cost, eps):
    """True when ``candidate_cost`` is within ``(1 + eps)`` of the reference."""
    return candidate_cost <= reference_cost * (1.0 + eps) + _COST_ATOL


def align_labels(base_names, base_labels, edited_netlist):
    """Carry a base assignment over to an edited netlist by gate name.

    Returns an ``(G_edited,)`` int array: the base plane for every gate
    that survives the edit, ``-1`` for gates the edit added.  Label
    semantics follow gate *names* (gate identity), so reordering and
    removals are handled for free.
    """
    base_labels = np.asarray(base_labels, dtype=np.intp)
    if len(base_names) != base_labels.shape[0]:
        raise PartitionError(
            f"base assignment has {base_labels.shape[0]} labels for "
            f"{len(base_names)} gate names"
        )
    edited_names = [gate.name for gate in edited_netlist.gates]
    if edited_names == list(base_names):
        # Gate set and order unchanged (retype/move-only edit): the
        # labels transfer positionally.
        return base_labels.copy()
    by_name = {name: int(label) for name, label in zip(base_names, base_labels)}
    carried = np.full(edited_netlist.num_gates, -1, dtype=np.intp)
    for index, name in enumerate(edited_names):
        if name in by_name:
            carried[index] = by_name[name]
    return carried


def carry_forward_labels(netlist, num_planes, prev_labels, pinned=None):
    """Deterministic full assignment extending ``prev_labels``.

    Gates with a previous plane keep it; new gates (label ``-1``) are
    placed in index order by majority vote of their already-labeled
    undirected neighbors (ties toward the lowest plane), falling back to
    the plane with the smallest accumulated bias current.  This is the
    reference assignment the quality guard compares against — the best
    answer available without running any solver.
    """
    labels = np.asarray(prev_labels, dtype=np.intp).copy()
    if labels.shape != (netlist.num_gates,):
        raise PartitionError(
            f"previous labels shape {labels.shape} does not match netlist "
            f"({netlist.num_gates} gates)"
        )
    if labels.size and labels.max() >= num_planes:
        raise PartitionError("previous labels out of range for requested K")
    for gate, plane in (pinned or {}).items():
        labels[gate] = plane
    missing = np.flatnonzero(labels < 0)
    if missing.size == 0:
        return labels
    neighbors = adjacency_lists(netlist, directed=False)
    bias = netlist.bias_vector_ma()
    plane_bias = np.zeros(num_planes, dtype=float)
    placed = labels >= 0
    np.add.at(plane_bias, labels[placed], bias[placed])
    for gate in missing:
        votes = np.zeros(num_planes, dtype=np.intp)
        for other in neighbors[gate]:
            if labels[other] >= 0:
                votes[labels[other]] += 1
        if votes.any():
            plane = int(np.argmax(votes))  # argmax ties break low
        else:
            plane = int(np.argmin(plane_bias))
        labels[gate] = plane
        plane_bias[plane] += bias[gate]
    return labels


def _resolve_touched(netlist, touched):
    """Touched gate references (names/indices/Gates) as a sorted index set."""
    indices = set()
    for ref in touched or ():
        indices.add(netlist.gate(ref).index)
    return indices


def incremental_partition(
    netlist,
    num_planes,
    prev_labels,
    touched,
    config=None,
    seed=None,
    pinned=None,
    halo=None,
    threshold=None,
    quality_eps=None,
):
    """Re-partition an edited netlist warm-started from a previous result.

    Parameters
    ----------
    netlist:
        The **edited** :class:`~repro.netlist.netlist.Netlist`.
    num_planes:
        K, same semantics as :func:`~repro.core.partitioner.partition`.
    prev_labels:
        ``(G,)`` previous plane per gate in *edited* gate order, ``-1``
        for gates without one (added by the edit) — the shape
        :func:`align_labels` produces.
    touched:
        Gates the edit perturbed (names, indices or Gate objects); gates
        with ``prev_labels == -1`` are always treated as touched.
    halo, threshold, quality_eps:
        Override the ``REPRO_ECO_*`` knobs for this call.

    Returns
    -------
    (PartitionResult, info)
        ``info["mode"]`` is ``"warm"`` or ``"cold"``;
        ``info["fallback_reason"]`` explains a cold result
        (``"region-threshold"`` or ``"quality-guard"``) and is ``None``
        for warm ones (including the trivial no-op edit).
    """
    if config is None:
        config = PartitionConfig()
    halo = resolve_eco_halo(halo)
    threshold = resolve_eco_threshold(threshold)
    quality_eps = resolve_eco_quality_eps(quality_eps)

    if netlist.num_gates == 0:
        raise PartitionError(f"netlist {netlist.name!r} has no gates")
    if not 1 <= num_planes <= netlist.num_gates:
        raise PartitionError(
            f"cannot split {netlist.num_gates} gates into {num_planes} planes"
        )

    prev = np.asarray(prev_labels, dtype=np.intp)
    if prev.shape != (netlist.num_gates,):
        raise PartitionError(
            f"previous labels shape {prev.shape} does not match netlist "
            f"({netlist.num_gates} gates)"
        )
    if prev.size and prev.max() >= num_planes:
        raise PartitionError(
            f"previous labels reference plane {int(prev.max())} "
            f"but K={num_planes}"
        )

    pinned_user = {}
    for gate_ref, plane in (pinned or {}).items():
        plane = int(plane)
        if not 0 <= plane < num_planes:
            raise PartitionError(
                f"pinned plane {plane} out of range for K={num_planes}"
            )
        pinned_user[netlist.gate(gate_ref).index] = plane

    touched_idx = _resolve_touched(netlist, touched)
    touched_idx.update(int(i) for i in np.flatnonzero(prev < 0))

    info = {
        "mode": "warm",
        "fallback_reason": None,
        "halo": halo,
        "threshold": threshold,
        "quality_eps": quality_eps,
        "touched_gates": len(touched_idx),
        "region_gates": 0,
        "region_fraction": 0.0,
    }

    edges = netlist.edge_array()
    bias = netlist.bias_vector_ma()
    area = netlist.area_vector_um2()

    def finish_cold(reason):
        result = partition(netlist, num_planes, config, seed=seed, pinned=pinned_user)
        info["mode"] = "cold"
        info["fallback_reason"] = reason
        info["cost"] = float(result.integer_cost())
        if OBS.enabled:
            OBS.metrics.counter("eco.cold_fallbacks").inc()
        return result, info

    with OBS.trace.span(
        "eco", circuit=netlist.name, planes=num_planes,
        gates=netlist.num_gates, touched=len(touched_idx),
    ):
        if OBS.enabled:
            OBS.metrics.counter("eco.calls").inc()

        if num_planes == 1:
            labels = np.zeros(netlist.num_gates, dtype=np.intp)
            result = PartitionResult(
                netlist=netlist, num_planes=1, labels=labels,
                config=config, pinned=pinned_user,
            )
            info["cost"] = float(result.integer_cost())
            return result, info

        carried = carry_forward_labels(netlist, num_planes, prev, pinned=pinned_user)
        reference_cost = float(
            integer_cost(carried, num_planes, edges, bias, area, config)
        )
        info["reference_cost"] = reference_cost

        if not touched_idx:
            # Empty edit: the previous assignment is already the answer.
            result = PartitionResult(
                netlist=netlist, num_planes=num_planes, labels=carried,
                config=config, pinned=pinned_user,
            )
            info["cost"] = reference_cost
            return result, info

        levels = bounded_bfs_levels(netlist, sorted(touched_idx), halo)
        region = np.flatnonzero(levels >= 0)
        info["region_gates"] = int(region.size)
        info["region_fraction"] = float(region.size / netlist.num_gates)

        if region.size / netlist.num_gates > threshold:
            return finish_cold("region-threshold")

        # Collapse everything outside the region into K pinned per-plane
        # super-gates, so the warm solve costs O(region), not O(netlist).
        # Plane totals are preserved exactly — super-gate k carries the
        # aggregate bias/area of every outside gate on plane k — so the
        # F2/F3 balance terms of the subproblem match the full netlist;
        # F1/F4 differ only in their constant normalizers, which cannot
        # change which region assignment the descent prefers.
        num_region = int(region.size)
        in_region = np.zeros(netlist.num_gates, dtype=bool)
        in_region[region] = True
        local = np.full(netlist.num_gates, -1, dtype=np.intp)
        local[region] = np.arange(num_region)
        outside = np.flatnonzero(~in_region)

        sub_bias = np.concatenate([
            bias[region],
            np.bincount(carried[outside], weights=bias[outside],
                        minlength=num_planes),
        ])
        sub_area = np.concatenate([
            area[region],
            np.bincount(carried[outside], weights=area[outside],
                        minlength=num_planes),
        ])

        # Edge remap: region-region edges survive; a region-outside edge
        # points at the super-gate of the outside endpoint's plane (the
        # plane distance is all F1 sees); outside-outside edges are
        # constants and drop.
        if edges.size:
            u, v = edges[:, 0], edges[:, 1]
            sub_u = np.where(in_region[u], local[u], num_region + carried[u])
            sub_v = np.where(in_region[v], local[v], num_region + carried[v])
            keep = in_region[u] | in_region[v]
            sub_edges = np.stack([sub_u[keep], sub_v[keep]], axis=1)
        else:
            sub_edges = edges.reshape(0, 2)

        sub_pinned = {num_region + k: k for k in range(num_planes)}
        for gate, plane in pinned_user.items():
            if in_region[gate]:
                sub_pinned[int(local[gate])] = plane

        # Warm start: restart 0 polishes the carried assignment itself
        # (one-hot region rows); later restarts re-randomize the region
        # so they still explore.  Super-gate rows are one-hot always.
        restarts = min(config.restarts, DEFAULT_ECO_RESTARTS)
        rng = make_rng(config.seed if seed is None else seed)
        streams = spawn_rngs(rng, restarts)
        stack = np.zeros(
            (restarts, num_region + num_planes, num_planes), dtype=float
        )
        stack[:, np.arange(num_region), carried[region]] = 1.0
        stack[:, num_region + np.arange(num_planes), np.arange(num_planes)] = 1.0
        for restart, stream in enumerate(streams[1:], start=1):
            stack[restart, :num_region, :] = random_assignment(
                num_region, num_planes, stream
            )

        fine_config = config.with_(
            max_iterations=min(DEFAULT_ECO_ITERATIONS, config.max_iterations),
            restarts=restarts,
        )
        info["iteration_cap"] = fine_config.max_iterations

        with OBS.trace.span("eco_solve", region=num_region):
            traces = minimize_assignment_batch(
                num_planes, sub_edges, sub_bias, sub_area, fine_config,
                rngs=streams, w0=stack, pinned=sub_pinned,
            )

        # Round each restart's region rows, splice into the carried
        # assignment, and score on the FULL netlist — restart selection
        # and the quality guard both judge real cost, not the collapsed
        # approximation.
        best_labels, best_cost, best_trace = None, np.inf, None
        restart_costs = []
        seen = {}
        for trace in traces:
            region_labels = round_assignment(trace.w[:num_region])
            key = region_labels.tobytes()
            cost = seen.get(key)
            if cost is None:
                labels = carried.copy()
                labels[region] = region_labels
                for gate, plane in pinned_user.items():
                    labels[gate] = plane
                cost = float(
                    integer_cost(labels, num_planes, edges, bias, area, config)
                )
                seen[key] = cost
                if cost < best_cost:
                    best_labels, best_cost, best_trace = labels, cost, trace
            restart_costs.append(cost)
        result = PartitionResult(
            netlist=netlist, num_planes=num_planes, labels=best_labels,
            config=fine_config, pinned=pinned_user, trace=best_trace,
            restart_costs=restart_costs,
        )
        warm_cost = best_cost
        info["cost"] = warm_cost

        if not quality_ok(warm_cost, reference_cost, quality_eps):
            return finish_cold("quality-guard")

        if OBS.enabled:
            OBS.metrics.counter("eco.warm_solves").inc()
        return result, info
