"""Bias-limited plane-count planning — the Table III experiment.

A real chip can only draw a bounded current through one bias pad
(the paper uses 100 mA, citing the FFT-processor chip of ref. [23]).
Given that limit, the number of planes K must be chosen such that the
*largest* per-plane bias ``B_max`` stays under the limit.  The paper
reports, per circuit:

* the lower bound ``K_LB = ceil(B_cir / limit)`` — achievable only by a
  perfectly balanced partition;
* the achieved ``K_res`` — the smallest K for which the partitioner's
  ``B_max`` actually meets the limit (>= K_LB because real partitions
  are imbalanced).

:func:`plan_bias_limited` performs that search, and also quantifies the
headline saving of current recycling: the chip needs a single serial
bias feed of ``B_max`` instead of ``ceil(B_cir / limit)`` parallel bias
lines.
"""

import math
from dataclasses import dataclass

from repro.core.partitioner import partition
from repro.utils.errors import PartitionError


@dataclass
class BiasLimitedPlan:
    """Result of the bias-limited plane-count search.

    Attributes
    ----------
    k_lb:
        ``ceil(B_cir / limit)`` — the information-theoretic lower bound.
    k_res:
        Smallest K whose partition met the limit.
    result:
        The winning :class:`~repro.core.partitioner.PartitionResult`.
    b_max_ma:
        Its maximum per-plane bias current.
    attempts:
        ``[(K, B_max)]`` for every K tried, in order.
    bias_limit_ma:
        The supply limit used.
    """

    netlist: object
    bias_limit_ma: float
    k_lb: int
    k_res: int
    result: object
    b_max_ma: float
    attempts: list

    @property
    def bias_lines_without_recycling(self):
        """Parallel bias lines a non-recycled chip would need."""
        return self.k_lb

    @property
    def bias_lines_with_recycling(self):
        """A serial chain needs a single feed (plus its return)."""
        return 1

    @property
    def bias_lines_saved(self):
        """The paper's 'save 30 bias lines' style figure of merit."""
        return self.bias_lines_without_recycling - self.bias_lines_with_recycling


def lower_bound_planes(total_bias_ma, bias_limit_ma):
    """``K_LB = ceil(B_cir / B_limit)`` as defined in Section V."""
    if bias_limit_ma <= 0:
        raise PartitionError(f"bias limit must be positive, got {bias_limit_ma}")
    return max(1, math.ceil(total_bias_ma / bias_limit_ma))


def plan_bias_limited(
    netlist,
    bias_limit_ma=100.0,
    config=None,
    seed=None,
    max_extra_planes=None,
    search="linear",
):
    """Find the smallest K with ``B_max <= bias_limit_ma``.

    Starting from ``K_LB``, partitions the netlist for increasing K until
    the max per-plane bias meets the limit.  Raises
    :class:`PartitionError` when no feasible K exists below the search
    cap (which would indicate a single gate exceeding the limit, or a cap
    set too tight).

    Parameters
    ----------
    netlist:
        Circuit to plan for.
    bias_limit_ma:
        Maximum externally suppliable current (paper: 100 mA).
    config, seed:
        Forwarded to :func:`repro.core.partitioner.partition`.
    max_extra_planes:
        Search cap above ``K_LB``; defaults to ``2 * K_LB + 10`` which
        comfortably covers the paper's worst case (C3540: K_LB=32,
        K_res=50).
    search:
        ``"linear"`` (the paper's implied K_LB, K_LB+1, ... sweep — the
        exact minimal K_res for the heuristic) or ``"gallop"``
        (exponential probe then binary search; O(log gap) partitions
        instead of O(gap), assuming B_max is monotone non-increasing in
        K, which holds to first order since ``B_max >= B_cir / K``).
    """
    if search not in ("linear", "gallop"):
        raise PartitionError(f"search must be 'linear' or 'gallop', got {search!r}")
    max_bias_gate = max((g.bias_ma for g in netlist.gates), default=0.0)
    if max_bias_gate > bias_limit_ma:
        raise PartitionError(
            f"netlist {netlist.name!r} has a gate needing {max_bias_gate} mA, "
            f"above the supply limit {bias_limit_ma} mA — no partition can help"
        )

    k_lb = lower_bound_planes(netlist.total_bias_ma, bias_limit_ma)
    if max_extra_planes is None:
        max_extra_planes = 2 * k_lb + 10
    k_max = min(netlist.num_gates, k_lb + max_extra_planes)

    attempts = []
    solutions = {}

    def try_k(k):
        result = partition(netlist, k, config=config, seed=seed)
        b_max = float(result.plane_bias_ma().max())
        attempts.append((k, b_max))
        solutions[k] = (result, b_max)
        return b_max <= bias_limit_ma

    def finish(k):
        result, b_max = solutions[k]
        return BiasLimitedPlan(
            netlist=netlist,
            bias_limit_ma=bias_limit_ma,
            k_lb=k_lb,
            k_res=k,
            result=result,
            b_max_ma=b_max,
            attempts=attempts,
        )

    if search == "linear":
        for k in range(k_lb, k_max + 1):
            if try_k(k):
                return finish(k)
    else:
        # gallop: probe K_LB + 0, 1, 2, 4, 8, ... until feasible
        feasible_k = None
        last_infeasible = k_lb - 1
        step = 1
        k = k_lb
        while k <= k_max:
            if try_k(k):
                feasible_k = k
                break
            last_infeasible = k
            next_k = min(max(k_lb + step, k + 1), k_max)
            if next_k <= k:
                break  # already probed k_max and it failed
            k = next_k
            step *= 2
        if feasible_k is not None:
            # binary search the boundary in (last_infeasible, feasible_k)
            low, high = last_infeasible, feasible_k
            while high - low > 1:
                mid = (low + high) // 2
                if try_k(mid):
                    high = mid
                else:
                    low = mid
            return finish(high)

    raise PartitionError(
        f"no K in [{k_lb}, {k_max}] met B_max <= {bias_limit_ma} mA for "
        f"netlist {netlist.name!r} (best attempt: {min(a[1] for a in attempts):.2f} mA); "
        "raise max_extra_planes or loosen the limit"
    )
