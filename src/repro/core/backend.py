"""Pluggable array backends for the solver kernels.

The fused kernel, the batched descent loop and the multilevel engine
are, arithmetically, a small set of array operations: batched matmuls,
einsum contractions, segment sums, elementwise selection and norms.
This module puts exactly that set behind a minimal protocol
(:class:`ArrayBackend`) so the hot path can later run on cupy/torch by
registering one more implementation — without touching a line of solver
code.

Design rules, in order of importance:

* **The numpy path is the ground truth.**  :class:`NumpyBackend`
  delegates every operation straight to the same numpy calls the
  kernels made before this layer existed, so routing through the
  backend is bitwise-invisible: the loop/batched/mega-batch equivalence
  gates (see :mod:`repro.core.kernel`) hold unchanged.
* **Host/device seam at the batch boundary.**  Problem construction
  (netlists, RNG initialization, rounding) stays host-side numpy;
  a backend only executes the per-iteration descent arithmetic.
  ``from_host``/``to_host`` mark the two crossing points.
* **Selection is one environment knob.**  ``REPRO_BACKEND`` (declared
  in :mod:`repro.envcfg`) names the registered backend; the default is
  ``numpy``.  An unregistered name fails loudly at first use — there is
  no silent fallback, because a benchmark that quietly ran on the wrong
  backend is worse than one that crashed.

Third-party backends register through :func:`register_backend`; the
factory is only called on first use, so registering e.g. a cupy backend
does not import cupy until someone selects it.
"""

import numpy as np

from repro import envcfg
from repro.utils import rng as rng_mod
from repro.utils.errors import ReproError

#: Environment variable naming the active backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Name of the default (and reference) backend.
DEFAULT_BACKEND = "numpy"


class ArrayBackend:
    """The minimal operation set the solver kernels need.

    ``xp`` is the backing array module (numpy for the reference
    implementation; cupy exposes the same surface), used for generic
    elementwise/reduction calls; the named methods below are the
    operations whose implementation genuinely differs between array
    libraries (segment sums, RNG, host transfer) plus the handful the
    kernels call in their inner loop.
    """

    #: Registry name; subclasses must set it.
    name = None

    #: Array namespace (numpy-compatible module).
    xp = None

    #: Default floating dtype of solver arrays.
    float_dtype = None

    # -- hot-loop operations -------------------------------------------
    def matmul(self, a, b):
        raise NotImplementedError

    def einsum(self, spec, *operands):
        raise NotImplementedError

    def segment_sum(self, values, starts):
        """Sum ``values`` along the last axis over segments at ``starts``."""
        raise NotImplementedError

    def where(self, condition, a, b):
        raise NotImplementedError

    def clip(self, a, lo, hi, out=None):
        raise NotImplementedError

    def norm(self, a):
        """Euclidean norm over all entries of ``a`` (a 0-d array/float)."""
        raise NotImplementedError

    # -- dtype / RNG helpers -------------------------------------------
    def asarray(self, a, dtype=None):
        raise NotImplementedError

    def ascontiguousarray(self, a):
        raise NotImplementedError

    def make_rng(self, seed_or_rng=None):
        """A host-side generator for problem initialization."""
        raise NotImplementedError

    def spawn_rngs(self, seed_or_rng, count):
        """``count`` independent child generators from one seed."""
        raise NotImplementedError

    # -- host/device seam ----------------------------------------------
    def from_host(self, a):
        """Move a host (numpy) array onto this backend."""
        raise NotImplementedError

    def to_host(self, a):
        """Move a backend array back to host numpy."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyBackend(ArrayBackend):
    """The reference backend: every call is the plain numpy call.

    This class is deliberately free of any arithmetic of its own — the
    bitwise-equivalence contract of :mod:`repro.core.kernel` reduces to
    "these are the same functions the kernel called before".
    """

    name = "numpy"
    xp = np
    float_dtype = np.float64

    def matmul(self, a, b):
        return np.matmul(a, b)

    def einsum(self, spec, *operands):
        return np.einsum(spec, *operands)

    def segment_sum(self, values, starts):
        return np.add.reduceat(values, starts, axis=-1)

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def clip(self, a, lo, hi, out=None):
        return np.clip(a, lo, hi, out=out)

    def norm(self, a):
        return np.sqrt(np.sum(a * a))

    def asarray(self, a, dtype=None):
        return np.asarray(a, dtype=dtype)

    def ascontiguousarray(self, a):
        return np.ascontiguousarray(a)

    def make_rng(self, seed_or_rng=None):
        return rng_mod.make_rng(seed_or_rng)

    def spawn_rngs(self, seed_or_rng, count):
        return rng_mod.spawn_rngs(seed_or_rng, count)

    def from_host(self, a):
        return np.asarray(a)

    def to_host(self, a):
        return np.asarray(a)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_FACTORIES = {}
_INSTANCES = {}


def register_backend(name, factory):
    """Register a backend factory under ``name`` (lazily instantiated).

    Re-registering a name replaces the factory and drops any cached
    instance — test suites use this to install instrumented fakes.
    """
    if not name or not isinstance(name, str):
        raise ReproError(f"backend name must be a non-empty string, got {name!r}")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends():
    """Sorted tuple of registered backend names."""
    return tuple(sorted(_FACTORIES))


def resolve_backend_name(name=None, environ=None):
    """Effective backend name: explicit > ``REPRO_BACKEND`` > numpy."""
    if name is not None:
        return name
    return envcfg.choice(
        BACKEND_ENV_VAR, available_backends(), DEFAULT_BACKEND, environ
    )


def get_backend(backend=None, environ=None):
    """The active :class:`ArrayBackend` instance.

    ``backend`` may be an instance (returned unchanged), a registered
    name, or ``None`` (consult ``REPRO_BACKEND``, default ``numpy``).
    Instances are cached per name, so the hot path pays one dict lookup.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    name = resolve_backend_name(backend, environ)
    instance = _INSTANCES.get(name)
    if instance is None:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise ReproError(
                f"unknown array backend {name!r}; registered: "
                f"{', '.join(available_backends()) or '(none)'}"
            ) from None
        instance = _INSTANCES[name] = factory()
        if instance.name != name:
            raise ReproError(
                f"backend factory for {name!r} produced a backend named "
                f"{instance.name!r}"
            )
    return instance


register_backend(DEFAULT_BACKEND, NumpyBackend)
