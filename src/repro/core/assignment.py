"""Assignment-matrix helpers.

The relaxed decision variable of the paper is the matrix
``w[i, k] in [0, 1]`` of shape ``(G, K)``: gate ``i``'s soft membership in
plane ``k``.  The paper indexes planes ``k = 1..K``; we store the matrix
with zero-based columns but keep the *label coefficients* ``1..K`` (they
enter the relaxed label ``l_i = sum_k k * w[i,k]`` of eq. (3) and the F1
gradient of eq. (10) with their one-based values).
"""

import numpy as np

from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng


def plane_coefficients(num_planes):
    """The one-based label coefficients ``[1, 2, ..., K]`` of eq. (3)."""
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    return np.arange(1, num_planes + 1, dtype=float)


def random_assignment(num_gates, num_planes, rng=None):
    """Random row-normalized initial assignment (Algorithm 1, lines 3-11).

    Entries are drawn uniformly from (0, 1) and each row is divided by
    its sum, so every row satisfies ``sum_k w[i,k] == 1`` exactly.
    """
    if num_gates < 1:
        raise PartitionError(f"num_gates must be >= 1, got {num_gates}")
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    rng = make_rng(rng)
    # Open interval keeps row sums strictly positive.
    w = rng.uniform(low=1e-6, high=1.0, size=(num_gates, num_planes))
    return normalize_rows(w)


def normalize_rows(w):
    """Divide each row by its sum (rows with zero sum become uniform).

    Accepts any ``(..., K)`` stack of assignment matrices; the batched
    solver normalizes all restarts at once with the same arithmetic a
    single ``(G, K)`` call uses.
    """
    w = np.asarray(w, dtype=float)
    if w.ndim < 2:
        raise PartitionError(f"assignment matrix must be 2-D, got shape {w.shape}")
    sums = w.sum(axis=-1, keepdims=True)
    if np.all(sums > 0.0):
        # Fast path (the overwhelmingly common case in the solver loop):
        # bitwise-identical to the general branch below, which would
        # select exactly these already-divided values.
        return w / sums
    safe = np.where(sums > 0.0, sums, 1.0)
    return np.where(sums > 0.0, w / safe, 1.0 / w.shape[-1])


def labels_from_assignment(w):
    """Relaxed labels ``l_i = sum_k k * w[i,k]`` (eq. (3)).

    Shape ``(G,)`` for a ``(G, K)`` matrix; batched ``(..., G, K)``
    input yields ``(..., G)`` labels via the same per-slice matvec (a
    batched ``matmul`` runs one identically-sized gemv per restart, so
    batched and single evaluations are bitwise identical — part of the
    engine-equivalence contract, see :mod:`repro.core.kernel`).
    """
    w = np.asarray(w, dtype=float)
    if w.ndim < 2:
        raise PartitionError(f"assignment matrix must be (..., K), got shape {w.shape}")
    return w @ plane_coefficients(w.shape[-1])


def round_assignment(w):
    """Final integer plane of each gate: zero-based ``argmax_k w[i,k]``.

    Implements lines 27-30 of Algorithm 1.  Ties break toward the lowest
    plane index (NumPy argmax semantics).
    """
    w = np.asarray(w, dtype=float)
    if w.ndim != 2 or w.shape[1] < 1:
        raise PartitionError(f"assignment matrix must be (G, K), got shape {w.shape}")
    return w.argmax(axis=1).astype(np.intp)


def round_assignment_balanced(w, bias, slack=0.02, pinned=None):
    """Capacity-aware rounding: argmax within a per-plane bias budget.

    Plain argmax rounding can commit whole clusters of near-identical
    rows to one plane, which wrecks the integer-level bias balance even
    when the *relaxed* solution is balanced — the failure mode of
    ``engine="multilevel"``'s interpolated warm starts, whose rows are
    constant within each supernode.  This rounder assigns gates in
    decreasing row-confidence order to their most-preferred plane whose
    running bias stays within ``(1 + slack)`` of the ideal per-plane
    share ``sum(bias) / K``; when every plane is over budget the lightest
    plane takes the gate.  Confident rows therefore still get their
    argmax plane; only the ambiguous tail is redirected, bounding
    ``I_comp`` by roughly ``slack`` without measurably hurting F1.

    ``pinned`` gates ({index: plane}) keep their plane and consume
    budget first.  Fully deterministic (stable sorts, no RNG).

    Degenerate inputs — a single gate whose bias exceeds the whole
    per-plane budget (so *no* plane can take it within ``slack``), or a
    non-finite bias vector — make the capacity walk meaningless: every
    heavy gate would land on the currently-lightest plane regardless of
    ``w``, scrambling confident assignments.  Those cases fall back to
    plain :func:`round_assignment` (with ``pinned`` still applied) and
    bump the ``rounding.balanced_fallback`` metrics counter.
    """
    w = np.asarray(w, dtype=float)
    if w.ndim != 2 or w.shape[1] < 1:
        raise PartitionError(f"assignment matrix must be (G, K), got shape {w.shape}")
    bias = np.asarray(bias, dtype=float)
    if bias.shape != (w.shape[0],):
        raise PartitionError(
            f"bias shape {bias.shape} does not match assignment matrix {w.shape}"
        )
    if not np.isfinite(slack) or slack < 0:
        raise PartitionError(f"slack must be >= 0, got {slack}")
    num_gates, num_planes = w.shape
    budget = bias.sum() / num_planes * (1.0 + slack)
    if not np.isfinite(budget) or (bias.size and bias.max() > budget):
        from repro.obs import OBS

        if OBS.enabled:
            OBS.metrics.counter("rounding.balanced_fallback").inc()
        labels = round_assignment(w)
        for gate, plane in (pinned or {}).items():
            labels[gate] = plane
        return labels
    labels = np.full(num_gates, -1, dtype=np.intp)
    load = np.zeros(num_planes)
    for gate, plane in (pinned or {}).items():
        labels[gate] = plane
        load[plane] += bias[gate]
    preference = np.argsort(-w, axis=1, kind="stable")
    for gate in np.argsort(-w.max(axis=1), kind="stable"):
        if labels[gate] != -1:
            continue
        gate_bias = bias[gate]
        for plane in preference[gate]:
            if load[plane] + gate_bias <= budget:
                labels[gate] = plane
                load[plane] += gate_bias
                break
        else:
            plane = int(np.argmin(load))
            labels[gate] = plane
            load[plane] += gate_bias
    return labels


def one_hot(labels, num_planes):
    """Hard assignment matrix from zero-based integer labels."""
    labels = np.asarray(labels, dtype=np.intp)
    if labels.size and (labels.min() < 0 or labels.max() >= num_planes):
        raise PartitionError("labels out of range for one_hot")
    w = np.zeros((labels.shape[0], num_planes), dtype=float)
    w[np.arange(labels.shape[0]), labels] = 1.0
    return w
