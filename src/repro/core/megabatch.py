"""Cross-job mega-batch packing: many compatible solves, one kernel.

The batched engine already amortizes kernel overhead across the
restarts of *one* :func:`~repro.core.partitioner.partition` call.  This
module extends the same trick across *jobs*: when several queued
partition requests share the identical problem (same netlist arrays,
plane count, pinned constraints and solver config up to ``restarts``
and ``seed``), their restarts are concatenated into one ``(ΣR, G, K)``
stack and descended together through a single
:func:`~repro.core.optimizer.minimize_assignment_batch` call — one
rank-4 gemm per iteration for the whole group instead of one solve per
job.

Bitwise-identity argument (the correctness gate)
------------------------------------------------
Every piece a solo solve depends on is reproduced exactly:

* **Initialization** — each job's restart streams are spawned exactly
  as :func:`partition` spawns them (``spawn_rngs(make_rng(seed),
  restarts)``) and concatenated in job order, so restart ``i`` of job
  ``j`` starts from the very same generator state.
* **Descent arithmetic** — the fused kernel's per-batch-slice
  operations are independent of the leading batch size (see the
  equivalence contract in :mod:`repro.core.kernel`), so slice ``i`` of
  the packed stack steps through bitwise the same floats as slice ``i``
  of the job's solo stack.  Convergence masking is per-restart and the
  margin test reads only that restart's own history.
* **Reseed recovery** — poisoned-trajectory reseeds are keyed by the
  restart's *tag*, and the packer passes each job's local restart
  indices as tags, so a packed restart recovers from exactly the stream
  its solo solve would (``restart_tags`` in
  :func:`~repro.core.optimizer.minimize_assignment_batch`).
* **Finalization** — per-job rounding, integer-cost scoring and
  empty-plane repair run through the same
  :func:`~repro.core.partitioner.finalize_traces` tail as a solo call,
  on that job's own trace slice.

``tests/test_megabatch.py`` pins all of this down, including ragged
restart counts and single-job groups.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.config import PartitionConfig
from repro.core.optimizer import minimize_assignment_batch
from repro.core.partitioner import finalize_traces, partition
from repro.obs import OBS
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng, spawn_rngs

#: Config fields that may differ between packed jobs (everything else
#: must match for the solves to share one kernel).
_PACK_FREE_FIELDS = ("restarts", "seed")


@dataclass(frozen=True)
class SolveSpec:
    """One job's partition request, as the packer sees it.

    ``netlist`` must be the *same problem* for every spec in a group
    (the packer verifies the arrays); ``config``/``seed``/``pinned``
    follow :func:`~repro.core.partitioner.partition` semantics —
    ``seed=None`` falls back to ``config.seed``, pinned keys may be
    gate names, indices or Gate objects.
    """

    netlist: object
    num_planes: int
    config: PartitionConfig = None
    seed: object = None
    pinned: dict = None

    def resolved_config(self):
        return self.config if self.config is not None else PartitionConfig()


def _comparable_config(config):
    """The config with pack-free fields neutralized, for equality checks."""
    return config.with_(**{name: getattr(PartitionConfig(), name) for name in _PACK_FREE_FIELDS})


def _resolve_pinned(netlist, num_planes, pinned):
    """Gate-ref pinned mapping -> index mapping (partition's semantics)."""
    pinned_index = {}
    for gate_ref, plane in (pinned or {}).items():
        plane = int(plane)
        if not 0 <= plane < num_planes:
            raise PartitionError(f"pinned plane {plane} out of range for K={num_planes}")
        pinned_index[netlist.gate(gate_ref).index] = plane
    return pinned_index


def partition_packed(specs, backend=None):
    """Solve a compatible group of :class:`SolveSpec` jobs as one batch.

    Returns one :class:`~repro.core.partitioner.PartitionResult` per
    spec, in order, each bitwise-identical to what a solo
    :func:`~repro.core.partitioner.partition` call on that spec would
    produce.  Raises :class:`PartitionError` when the specs are not
    actually compatible (different problem arrays, plane counts, pinned
    sets, or configs differing beyond ``restarts``/``seed``) or when a
    spec's engine is not ``"batched"`` — callers group jobs with
    :func:`repro.harness.megabatch.job_pack_key`, which guarantees all
    of this.
    """
    specs = list(specs)
    if not specs:
        return []

    first = specs[0]
    netlist = first.netlist
    num_planes = int(first.num_planes)
    base_config = first.resolved_config()
    if base_config.engine != "batched":
        raise PartitionError(
            f"mega-batch packing requires engine='batched', got {base_config.engine!r}"
        )
    if num_planes < 2:
        # K == 1 is the trivial partition; packing buys nothing and the
        # solo path special-cases it before any solve.
        raise PartitionError("mega-batch packing requires num_planes >= 2")

    edges = netlist.edge_array()
    bias = netlist.bias_vector_ma()
    area = netlist.area_vector_um2()
    pinned_index = _resolve_pinned(netlist, num_planes, first.pinned)
    base_comparable = _comparable_config(base_config)

    # Verify group compatibility: cheap array comparisons, loud failure.
    for spec in specs[1:]:
        if int(spec.num_planes) != num_planes:
            raise PartitionError("mega-batch group mixes plane counts")
        if _comparable_config(spec.resolved_config()) != base_comparable:
            raise PartitionError(
                "mega-batch group mixes solver configs (beyond restarts/seed)"
            )
        if _resolve_pinned(spec.netlist, num_planes, spec.pinned) != pinned_index:
            raise PartitionError("mega-batch group mixes pinned constraints")
        if spec.netlist is not netlist and not (
            np.array_equal(spec.netlist.edge_array(), edges)
            and np.array_equal(spec.netlist.bias_vector_ma(), bias)
            and np.array_equal(spec.netlist.area_vector_um2(), area)
        ):
            raise PartitionError("mega-batch group mixes problem arrays")

    # Concatenate each job's restart streams exactly as its solo
    # partition() call would spawn them, tagging every restart with its
    # job-local index so reseed recovery stays per-job deterministic.
    streams = []
    tags = []
    counts = []
    for spec in specs:
        config = spec.resolved_config()
        seed = config.seed if spec.seed is None else spec.seed
        streams.extend(spawn_rngs(make_rng(seed), config.restarts))
        tags.extend(range(config.restarts))
        counts.append(config.restarts)

    with OBS.trace.span(
        "megabatch_solve",
        circuit=netlist.name,
        planes=num_planes,
        jobs=len(specs),
        restarts=len(streams),
    ):
        if OBS.enabled:
            OBS.metrics.counter("megabatch.groups").inc()
            OBS.metrics.counter("megabatch.packed_jobs").inc(len(specs))
            OBS.metrics.counter("megabatch.packed_restarts").inc(len(streams))
        traces = minimize_assignment_batch(
            num_planes,
            edges,
            bias,
            area,
            base_config,
            rngs=streams,
            pinned=pinned_index,
            restart_tags=tags,
            backend=backend,
        )

    # Unpack: each job finalizes its own trace slice through the same
    # scoring/repair tail as a solo partition() call.
    results = []
    offset = 0
    for spec, count in zip(specs, counts):
        job_traces = traces[offset:offset + count]
        offset += count
        results.append(
            finalize_traces(
                spec.netlist,
                num_planes,
                spec.resolved_config(),
                job_traces,
                dict(pinned_index),
                edges,
                bias,
                area,
            )
        )
    return results


def partition_solo(spec):
    """The unpacked reference path for one spec (used by benchmarks)."""
    return partition(
        spec.netlist,
        spec.num_planes,
        config=spec.config,
        seed=spec.seed,
        pinned=spec.pinned,
    )
