"""Gradient-descent solver — Algorithm 1 of the paper.

The loop is the paper's, line for line:

1. random row-normalized initialization (lines 3-11; see
   :func:`repro.core.assignment.random_assignment`),
2. evaluate ``cost_new`` (line 13) and stop when
   ``|cost_new / cost_old - 1| <= margin`` (lines 14-16),
3. take a gradient step with the analytic gradients of eq. (10)
   (lines 17-21), clip every entry to ``[0, 1]`` (lines 22-23),
4. finally round each gate to its argmax plane (lines 27-30; done by the
   caller via :func:`repro.core.assignment.round_assignment`).

Additions over the pseudo-code, all off by default or harmless:
an iteration safety cap, an explicit learning rate (the paper folds it
into ``c1..c4``), an optional row re-normalization projection, and a
recorded cost trace for the convergence figure.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import normalize_rows, random_assignment
from repro.core.cost import cost_terms
from repro.core.gradients import cost_gradient
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng


@dataclass
class GradientDescentTrace:
    """Outcome of one gradient-descent run.

    Attributes
    ----------
    w:
        Final relaxed assignment matrix, shape ``(G, K)``.
    cost_history:
        ``cost_new`` at every iteration of the while-loop (the value that
        triggered the stop is the last entry).
    converged:
        True when the margin criterion fired, False when the iteration
        cap stopped the loop.
    iterations:
        Number of gradient steps actually taken.
    final_terms:
        :class:`~repro.core.cost.CostTerms` at the final ``w``.
    """

    w: np.ndarray
    cost_history: list = field(default_factory=list)
    converged: bool = False
    iterations: int = 0
    final_terms: object = None

    @property
    def final_cost(self):
        return self.cost_history[-1] if self.cost_history else float("nan")


def minimize_assignment(num_planes, edges, bias, area, config, rng=None, w0=None, pinned=None):
    """Run Algorithm 1 once and return a :class:`GradientDescentTrace`.

    Parameters
    ----------
    num_planes:
        K, the number of ground planes.
    edges:
        ``(|E|, 2)`` connection array (gate indices).
    bias, area:
        Per-gate ``b_i`` (mA) and ``a_i`` vectors, shape ``(G,)``.
    config:
        :class:`~repro.core.config.PartitionConfig`.
    rng:
        Seed or generator for the random initialization.
    w0:
        Optional explicit initial matrix (overrides the random init;
        used by tests and by warm-started refinement).
    pinned:
        Optional ``{gate index: plane}`` hard constraints (extension):
        those rows are held one-hot throughout the descent.  Physically
        motivated by I/O: pads share the common perimeter ground, so
        gates wired to I/O must sit on a plane the designer chooses.
    """
    bias = np.asarray(bias, dtype=float)
    num_gates = bias.shape[0]
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if num_planes > num_gates:
        raise PartitionError(
            f"cannot split {num_gates} gates into {num_planes} planes "
            "(every plane needs at least one gate)"
        )
    pinned = dict(pinned or {})
    for gate, plane in pinned.items():
        if not 0 <= gate < num_gates:
            raise PartitionError(f"pinned gate index {gate} out of range")
        if not 0 <= plane < num_planes:
            raise PartitionError(f"pinned gate {gate}: plane {plane} out of range")

    if w0 is None:
        w = random_assignment(num_gates, num_planes, rng=make_rng(rng))
    else:
        w = np.array(w0, dtype=float)
        if w.shape != (num_gates, num_planes):
            raise PartitionError(f"w0 must have shape ({num_gates}, {num_planes}), got {w.shape}")

    def clamp_pinned(matrix):
        for gate, plane in pinned.items():
            matrix[gate, :] = 0.0
            matrix[gate, plane] = 1.0
        return matrix

    w = clamp_pinned(w)

    trace = GradientDescentTrace(w=w)
    cost_old = np.inf
    for _ in range(config.max_iterations):
        terms = cost_terms(w, edges, bias, area, config)
        cost_new = terms.total
        trace.cost_history.append(cost_new)
        trace.final_terms = terms
        # Algorithm 1 line 14. cost_old is inf on the first pass, so the
        # ratio is 0 and the loop never stops before taking one step.
        if np.isfinite(cost_old) and cost_old != 0.0 and abs(cost_new / cost_old - 1.0) <= config.margin:
            trace.converged = True
            break
        if cost_old == 0.0 and cost_new == 0.0:
            trace.converged = True
            break
        step = config.learning_rate * cost_gradient(w, edges, bias, area, config)
        w = np.clip(w - step, 0.0, 1.0)
        if config.renormalize_rows:
            w = normalize_rows(w)
        if pinned:
            w = clamp_pinned(w)
        trace.iterations += 1
        cost_old = cost_new

    trace.w = w
    if trace.final_terms is None:  # max_iterations == 0 cannot happen (validated), defensive
        trace.final_terms = cost_terms(w, edges, bias, area, config)
    return trace
