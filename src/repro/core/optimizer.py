"""Gradient-descent solver — Algorithm 1 of the paper.

The loop is the paper's, line for line:

1. random row-normalized initialization (lines 3-11; see
   :func:`repro.core.assignment.random_assignment`),
2. evaluate ``cost_new`` (line 13) and stop when
   ``|cost_new / cost_old - 1| <= margin`` (lines 14-16),
3. take a gradient step with the analytic gradients of eq. (10)
   (lines 17-21), clip every entry to ``[0, 1]`` (lines 22-23),
4. finally round each gate to its argmax plane (lines 27-30; done by the
   caller via :func:`repro.core.assignment.round_assignment`).

Additions over the pseudo-code, all off by default or harmless:
an iteration safety cap, an explicit learning rate (the paper folds it
into ``c1..c4``), an optional row re-normalization projection, and a
recorded cost trace for the convergence figure.

Two solver engines implement the same loop:

* :func:`minimize_assignment` — the legacy per-restart reference: one
  descent per call, cost and gradient evaluated as two separate passes
  through :func:`repro.core.cost.cost_terms` /
  :func:`repro.core.gradients.cost_gradient`, each re-validating the
  problem and rebuilding kernel state per call.
* :func:`minimize_assignment_batch` — the production engine: all ``R``
  restarts advance in lockstep on an ``(R, G, K)`` stack through the
  fused one-pass :class:`~repro.core.kernel.FusedKernel`, with
  per-restart convergence masking (a restart that satisfies the margin
  criterion freezes — its ``w``, history and final terms stop changing —
  while the remaining restarts keep iterating on a compacted stack).

Both engines perform bitwise-identical float arithmetic per restart
(see the equivalence contract in :mod:`repro.core.kernel`), so for the
same seeds they yield the same traces and the same rounded labels.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import normalize_rows, random_assignment
from repro.core.cost import cost_terms
from repro.core.gradients import cost_gradient
from repro.core.kernel import FusedKernel
from repro.obs import OBS
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng, spawn_rngs

#: How often the batched engine restarts a poisoned trajectory (non-finite
#: cost/gradient, runaway divergence) from a fresh deterministic
#: initialization before freezing ("quarantining") the restart.
MAX_RESEEDS = 2

#: A restart whose cost exceeds its first finite cost by this factor is
#: treated as diverging (a blown-up learning rate produces exactly this
#: signature before overflowing to inf).
DIVERGENCE_FACTOR = 1e6

#: SeedSequence prefix of the deterministic reseed streams, so recovery
#: initializations never collide with user-provided restart seeds.
_RESEED_TAG = 0x5EED


@dataclass
class GradientDescentTrace:
    """Outcome of one gradient-descent run.

    Attributes
    ----------
    w:
        Final relaxed assignment matrix, shape ``(G, K)``.
    cost_history:
        ``cost_new`` at every iteration of the while-loop (the value that
        triggered the stop is the last entry).
    converged:
        True when the margin criterion fired, False when the iteration
        cap stopped the loop.
    iterations:
        Number of gradient steps actually taken.
    final_terms:
        :class:`~repro.core.cost.CostTerms` at the final evaluated ``w``
        (reused from the last loop evaluation, never recomputed).
    telemetry:
        Per-iteration observability records (cost-term breakdown,
        relative change, gradient norm — see
        :mod:`repro.obs.telemetry`).  ``None`` unless observability was
        enabled (:func:`repro.obs.enable`) during the solve.
    reseeds:
        How many times the batched engine threw this restart's
        trajectory away (non-finite cost/gradient or divergence) and
        restarted it from a fresh deterministic initialization.  Always
        0 on the finite path.
    quarantined:
        True when the restart kept producing non-finite/diverging
        evaluations after :data:`MAX_RESEEDS` reseeds and was frozen
        (``converged=False``) so it could not poison the batch.
    """

    w: np.ndarray
    cost_history: list = field(default_factory=list)
    converged: bool = False
    iterations: int = 0
    final_terms: object = None
    telemetry: list = None
    reseeds: int = 0
    quarantined: bool = False

    @property
    def final_cost(self):
        return self.cost_history[-1] if self.cost_history else float("nan")


def _validate_problem(num_planes, bias, pinned):
    """Shared solver-input validation; returns ``(bias, pinned dict)``."""
    bias = np.asarray(bias, dtype=float)
    num_gates = bias.shape[0]
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if num_planes > num_gates:
        raise PartitionError(
            f"cannot split {num_gates} gates into {num_planes} planes "
            "(every plane needs at least one gate)"
        )
    pinned = dict(pinned or {})
    for gate, plane in pinned.items():
        if not 0 <= gate < num_gates:
            raise PartitionError(f"pinned gate index {gate} out of range")
        if not 0 <= plane < num_planes:
            raise PartitionError(f"pinned gate {gate}: plane {plane} out of range")
    return bias, pinned


def _clamp_pinned(w, pinned):
    """Hold pinned rows one-hot; works on ``(G, K)`` and ``(R, G, K)``."""
    for gate, plane in pinned.items():
        w[..., gate, :] = 0.0
        w[..., gate, plane] = 1.0
    return w


def minimize_assignment(num_planes, edges, bias, area, config, rng=None, w0=None, pinned=None):
    """Run Algorithm 1 once and return a :class:`GradientDescentTrace`.

    This is the legacy ``engine="loop"`` reference implementation; the
    batched engine (:func:`minimize_assignment_batch`) produces
    bit-identical results for the same initialization.

    Parameters
    ----------
    num_planes:
        K, the number of ground planes.
    edges:
        ``(|E|, 2)`` connection array (gate indices).
    bias, area:
        Per-gate ``b_i`` (mA) and ``a_i`` vectors, shape ``(G,)``.
    config:
        :class:`~repro.core.config.PartitionConfig`.
    rng:
        Seed or generator for the random initialization.
    w0:
        Optional explicit initial matrix (overrides the random init;
        used by tests and by warm-started refinement).
    pinned:
        Optional ``{gate index: plane}`` hard constraints (extension):
        those rows are held one-hot throughout the descent.  Physically
        motivated by I/O: pads share the common perimeter ground, so
        gates wired to I/O must sit on a plane the designer chooses.
    """
    bias, pinned = _validate_problem(num_planes, bias, pinned)
    num_gates = bias.shape[0]

    if w0 is None:
        w = random_assignment(num_gates, num_planes, rng=make_rng(rng))
    else:
        w = np.array(w0, dtype=float)
        if w.shape != (num_gates, num_planes):
            raise PartitionError(f"w0 must have shape ({num_gates}, {num_planes}), got {w.shape}")

    w = _clamp_pinned(w, pinned)

    obs = OBS if OBS.enabled else None
    if obs is not None:
        run = obs.telemetry.begin_run("loop", 1)

    trace = GradientDescentTrace(w=w, telemetry=[] if obs is not None else None)
    cost_old = np.inf
    with OBS.trace.span("descent", engine="loop"):
        for _ in range(config.max_iterations):
            terms = cost_terms(w, edges, bias, area, config)
            cost_new = terms.total
            if not np.isfinite(cost_new):
                # A poisoned trajectory (non-finite input, blown-up step)
                # can never satisfy the margin criterion; stop instead of
                # spinning to the iteration cap on garbage.
                trace.quarantined = True
                if obs is not None:
                    obs.metrics.counter("solver.nonfinite_detected").inc()
                    obs.metrics.counter("solver.restarts_quarantined").inc()
                break
            trace.cost_history.append(cost_new)
            # final_terms always mirrors the last loop evaluation, so no
            # post-loop recomputation is ever needed (max_iterations >= 1 is
            # enforced by the config, so at least one evaluation happens).
            trace.final_terms = terms
            finite_old = np.isfinite(cost_old) and cost_old != 0.0
            rel_change = abs(cost_new / cost_old - 1.0) if finite_old else None
            # Algorithm 1 line 14. cost_old is inf on the first pass, so the
            # ratio is 0 and the loop never stops before taking one step.
            stopping = (finite_old and rel_change <= config.margin) or (
                cost_old == 0.0 and cost_new == 0.0
            )
            if stopping:
                trace.converged = True
                if obs is not None:
                    trace.telemetry.append(
                        obs.telemetry.record(
                            run, 0, trace.iterations, terms.f1, terms.f2, terms.f3,
                            terms.f4, cost_new, rel_change, None, 1,
                        )
                    )
                break
            gradient = cost_gradient(w, edges, bias, area, config)
            if obs is not None:
                trace.telemetry.append(
                    obs.telemetry.record(
                        run, 0, trace.iterations, terms.f1, terms.f2, terms.f3,
                        terms.f4, cost_new, rel_change,
                        float(np.sqrt(np.sum(gradient * gradient))), 1,
                    )
                )
            step = config.learning_rate * gradient
            w = np.clip(w - step, 0.0, 1.0)
            if config.renormalize_rows:
                w = normalize_rows(w)
            if pinned:
                w = _clamp_pinned(w, pinned)
            trace.iterations += 1
            cost_old = cost_new

    trace.w = w
    return trace


def minimize_assignment_batch(
    num_planes,
    edges,
    bias,
    area,
    config,
    rngs=None,
    w0=None,
    pinned=None,
    restarts=None,
    restart_tags=None,
    backend=None,
):
    """Run Algorithm 1 from several restarts in lockstep (``engine="batched"``).

    All restarts advance together as one ``(R, G, K)`` tensor through
    the fused cost/gradient kernel: labels, edge differences, per-plane
    sums and row means are computed once per iteration for the whole
    batch, inputs are validated once up front, and the F1 gradient
    scatter uses the kernel's precomputed segment-sum.

    Convergence masking: a restart whose margin criterion fires is
    frozen — its matrix, cost history, iteration count and final terms
    stop changing — and the remaining restarts continue on a compacted
    stack, so late iterations only pay for the restarts still live.

    Parameters
    ----------
    num_planes, edges, bias, area, config:
        As in :func:`minimize_assignment`.
    rngs:
        Per-restart seeds/generators (a sequence — its length defines
        ``R``), or a single seed/generator from which ``restarts``
        (default ``config.restarts``) independent streams are spawned.
        Ignored when ``w0`` is given.
    w0:
        Optional explicit initial stack ``(R, G, K)``; a single
        ``(G, K)`` matrix is broadcast to all restarts.
    pinned:
        Hard ``{gate index: plane}`` constraints applied to every
        restart.
    restarts:
        Batch size when ``rngs`` is not a sequence; defaults to
        ``config.restarts``.
    restart_tags:
        Optional per-restart integers keying the deterministic reseed
        streams of poisoned trajectories (default: the batch index).
        The mega-batch packer passes each job's *local* restart indices
        here so a packed restart reseeds from exactly the stream its
        solo solve would use.
    backend:
        Array backend (instance or registered name) executing the
        descent; ``None`` consults ``REPRO_BACKEND`` (default numpy).

    Returns
    -------
    list of :class:`GradientDescentTrace`, one per restart, each
    bit-identical to what :func:`minimize_assignment` returns for the
    same initialization.
    """
    bias, pinned = _validate_problem(num_planes, bias, pinned)
    num_gates = bias.shape[0]
    kernel = FusedKernel(num_planes, edges, bias, area, backend=backend)

    if w0 is not None:
        w0 = np.array(w0, dtype=float)
        if w0.ndim == 2:
            w0 = np.repeat(w0[None], 1 if restarts is None else int(restarts), axis=0)
        if w0.ndim != 3 or w0.shape[1:] != (num_gates, num_planes):
            raise PartitionError(
                f"w0 must have shape (R, {num_gates}, {num_planes}), got {w0.shape}"
            )
        stack = w0
    else:
        if rngs is None or isinstance(rngs, (int, np.integer, np.random.Generator)):
            count = int(restarts if restarts is not None else config.restarts)
            rngs = spawn_rngs(make_rng(rngs), count)
        rngs = list(rngs)
        if not rngs:
            raise PartitionError("minimize_assignment_batch needs at least one restart")
        stack = np.stack(
            [random_assignment(num_gates, num_planes, rng=make_rng(r)) for r in rngs]
        )

    num_restarts = stack.shape[0]
    stack = _clamp_pinned(
        kernel.backend.ascontiguousarray(kernel.backend.from_host(stack)), pinned
    )
    if restart_tags is None:
        tags = np.arange(num_restarts)
    else:
        tags = np.asarray(restart_tags, dtype=np.intp)
        if tags.shape != (num_restarts,):
            raise PartitionError(
                f"restart_tags must have one entry per restart "
                f"({num_restarts}), got shape {tags.shape}"
            )

    obs = OBS if OBS.enabled else None
    if obs is not None:
        run = obs.telemetry.begin_run("batched", num_restarts)

    traces = [
        GradientDescentTrace(w=stack[r], telemetry=[] if obs is not None else None)
        for r in range(num_restarts)
    ]
    final_w = [None] * num_restarts
    # (BatchedCostTerms, row) of each restart's latest evaluation; the
    # scalar CostTerms is materialized once after the loop instead of on
    # every iteration.
    last_eval = [None] * num_restarts
    # Restart indices still descending, and their compacted stack.
    active = np.arange(num_restarts)
    live = stack
    cost_old = np.full(num_restarts, np.inf)

    with OBS.trace.span("descent_batch", restarts=num_restarts):
        _descend_batch(
            kernel, config, traces, final_w, last_eval, active, live, cost_old,
            pinned, obs, run if obs is not None else None, tags,
        )

    for r in range(num_restarts):
        traces[r].w = np.ascontiguousarray(kernel.backend.to_host(final_w[r]))
        if last_eval[r] is not None:
            # A quarantined restart that never produced a finite
            # evaluation has no terms to materialize.
            terms_r, row = last_eval[r]
            traces[r].final_terms = terms_r.term(row)
    return traces


def _reseed_assignment(num_gates, num_planes, restart, attempt, pinned):
    """Deterministic fresh initialization of a poisoned restart.

    Seeded by (tag, restart index, reseed attempt), so recovery is
    reproducible and independent of the original restart streams.
    ``restart`` is the restart's *tag* — its local index within the
    owning job — so a mega-batched restart recovers from exactly the
    stream its solo solve would.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([_RESEED_TAG, int(restart), int(attempt)])
    )
    w = random_assignment(num_gates, num_planes, rng=rng)
    return _clamp_pinned(w, pinned)


def _descend_batch(kernel, config, traces, final_w, last_eval, active, live, cost_old, pinned, obs, run, tags):
    """The batched descent loop of :func:`minimize_assignment_batch`.

    Split out so the timing span around it stays exception-safe without
    indenting the whole loop; mutates ``traces``/``final_w``/
    ``last_eval`` in place.

    Graceful degradation: an evaluation that produces a non-finite cost
    or gradient — or a cost more than :data:`DIVERGENCE_FACTOR` above
    the restart's first finite cost — marks that restart's trajectory as
    poisoned.  Instead of letting NaNs propagate through the shared
    stack bookkeeping (or letting one runaway restart spin every
    iteration to the cap), the restart is reseeded from a deterministic
    fresh initialization (up to :data:`MAX_RESEEDS` times) and after
    that quarantined: frozen with ``converged=False`` on a uniform
    assignment, while the healthy restarts keep descending untouched.
    On a fully finite problem none of this triggers and the arithmetic
    is bitwise identical to the sequential engine.
    """
    backend = kernel.backend
    xp = backend.xp
    num_restarts = len(traces)
    num_gates, num_planes = live.shape[1], live.shape[2]
    first_cost = xp.full(num_restarts, np.nan)

    for _ in range(config.max_iterations):
        if active.size == 0:
            break
        terms, gradient = kernel.cost_and_gradient(live, config)
        cost_new = terms.total

        # --- poisoned-trajectory detection.  Only O(R) scalar checks
        # per iteration: a non-finite gradient drives w non-finite
        # through the update and surfaces as a non-finite *cost* on the
        # next evaluation, so the cost check covers both one iteration
        # late at worst (the cap-exit path below catches the final
        # iteration's stragglers).
        cost_bad = ~xp.isfinite(cost_new)
        baseline = first_cost[active]
        diverged = (
            ~cost_bad
            & xp.isfinite(baseline)
            & (baseline > 0.0)
            & (cost_new > baseline * DIVERGENCE_FACTOR)
        )
        bad = cost_bad | diverged
        quarantine = np.zeros(active.size, dtype=bool)
        if bad.any():
            for j in np.flatnonzero(bad):
                r = int(active[j])
                if obs is not None:
                    name = "solver.diverged" if diverged[j] else "solver.nonfinite_detected"
                    obs.metrics.counter(name).inc()
                attempt = traces[r].reseeds + 1
                if attempt <= MAX_RESEEDS:
                    traces[r].reseeds = attempt
                    live[j] = _reseed_assignment(
                        num_gates, num_planes, tags[r], attempt, pinned
                    )
                    first_cost[r] = np.nan
                    if obs is not None:
                        obs.metrics.counter("solver.restarts_reseeded").inc()
                else:
                    # Frozen on a uniform (finite, never-winning)
                    # assignment so downstream rounding stays valid.
                    traces[r].quarantined = True
                    live[j] = np.full((num_gates, num_planes), 1.0 / num_planes)
                    _clamp_pinned(live[j], pinned)
                    quarantine[j] = True
                    if obs is not None:
                        obs.metrics.counter("solver.restarts_quarantined").inc()
                # Neutralize this row for the shared step below; a
                # reseeded restart takes its first real step next
                # iteration, from cost_old = inf like any fresh start.
                gradient[j] = 0.0
            cost_new = xp.where(bad, np.inf, cost_new)

        good = ~bad
        for j, r in enumerate(active):
            if good[j]:
                traces[r].cost_history.append(float(cost_new[j]))
                last_eval[r] = (terms, j)
                if not np.isfinite(first_cost[r]):
                    first_cost[r] = cost_new[j]

        # Algorithm 1 line 14, vectorized per restart (cost_old is inf on
        # each restart's first pass, so nothing stops before one step;
        # poisoned rows carry cost_new = inf, so they never stop here).
        old = cost_old[active]
        finite = xp.isfinite(old) & (old != 0.0)
        ratio = xp.abs(
            xp.where(finite, cost_new, 0.0) / xp.where(finite, old, 1.0) - 1.0
        )
        stop = (finite & (ratio <= config.margin)) | ((old == 0.0) & (cost_new == 0.0))

        if obs is not None:
            # Read-only pass over this iteration's evaluation, taken
            # before the in-place descent step reuses the gradient
            # buffer.  A restart stopping this iteration never computes
            # a step, so (matching the loop engine) its grad_norm is
            # recorded as None.  Poisoned rows are skipped — their term
            # values are non-finite and the restart restarts from
            # scratch anyway.
            grad_norms = xp.sqrt(backend.einsum("rgk,rgk->r", gradient, gradient))
            alive = int(active.size)
            for j, r in enumerate(active):
                if bad[j]:
                    continue
                record = obs.telemetry.record(
                    run, int(r), traces[r].iterations,
                    float(terms.f1[j]), float(terms.f2[j]), float(terms.f3[j]),
                    float(terms.f4[j]), float(cost_new[j]),
                    float(ratio[j]) if finite[j] else None,
                    None if stop[j] else float(grad_norms[j]), alive,
                )
                traces[r].telemetry.append(record)

        drop = stop | quarantine
        if drop.any():
            for j in np.flatnonzero(drop):
                r = int(active[j])
                traces[r].converged = bool(stop[j])
                final_w[r] = live[j]
            keep = ~drop
            active = active[keep]
            if active.size == 0:
                break
            live = backend.ascontiguousarray(live[keep])
            gradient = gradient[keep]
            cost_new = cost_new[keep]
            bad = bad[keep]

        # In-place descent step reusing the gradient buffer.  Bitwise
        # identical to ``clip(live - lr * gradient)``: IEEE multiply by
        # ``-lr`` flips sign exactly and ``a + (-b) == a - b``.  Rows
        # reseeded this iteration carry a zeroed gradient, so the step
        # leaves their fresh initialization untouched.
        gradient *= -config.learning_rate
        gradient += live
        live = backend.clip(gradient, 0.0, 1.0, out=gradient)
        if config.renormalize_rows:
            live = normalize_rows(live)
        if pinned:
            live = _clamp_pinned(live, pinned)
        for j, r in enumerate(active):
            if not bad[j]:
                traces[r].iterations += 1
        cost_old[active] = cost_new

    # Restarts stopped by the iteration cap keep their last stepped w,
    # exactly like the sequential loop.  A gradient that went non-finite
    # on the very last iteration leaves w poisoned with no further cost
    # evaluation to flag it, so quarantine those rows here.
    for j, r in enumerate(active):
        r = int(r)
        if xp.isfinite(live[j]).all():
            final_w[r] = live[j]
        else:
            traces[r].quarantined = True
            final_w[r] = np.full((num_gates, num_planes), 1.0 / num_planes)
            _clamp_pinned(final_w[r], pinned)
            last_eval[r] = None
            if obs is not None:
                obs.metrics.counter("solver.nonfinite_detected").inc()
                obs.metrics.counter("solver.restarts_quarantined").inc()
