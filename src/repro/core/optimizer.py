"""Gradient-descent solver — Algorithm 1 of the paper.

The loop is the paper's, line for line:

1. random row-normalized initialization (lines 3-11; see
   :func:`repro.core.assignment.random_assignment`),
2. evaluate ``cost_new`` (line 13) and stop when
   ``|cost_new / cost_old - 1| <= margin`` (lines 14-16),
3. take a gradient step with the analytic gradients of eq. (10)
   (lines 17-21), clip every entry to ``[0, 1]`` (lines 22-23),
4. finally round each gate to its argmax plane (lines 27-30; done by the
   caller via :func:`repro.core.assignment.round_assignment`).

Additions over the pseudo-code, all off by default or harmless:
an iteration safety cap, an explicit learning rate (the paper folds it
into ``c1..c4``), an optional row re-normalization projection, and a
recorded cost trace for the convergence figure.

Two solver engines implement the same loop:

* :func:`minimize_assignment` — the legacy per-restart reference: one
  descent per call, cost and gradient evaluated as two separate passes
  through :func:`repro.core.cost.cost_terms` /
  :func:`repro.core.gradients.cost_gradient`, each re-validating the
  problem and rebuilding kernel state per call.
* :func:`minimize_assignment_batch` — the production engine: all ``R``
  restarts advance in lockstep on an ``(R, G, K)`` stack through the
  fused one-pass :class:`~repro.core.kernel.FusedKernel`, with
  per-restart convergence masking (a restart that satisfies the margin
  criterion freezes — its ``w``, history and final terms stop changing —
  while the remaining restarts keep iterating on a compacted stack).

Both engines perform bitwise-identical float arithmetic per restart
(see the equivalence contract in :mod:`repro.core.kernel`), so for the
same seeds they yield the same traces and the same rounded labels.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import normalize_rows, random_assignment
from repro.core.cost import cost_terms
from repro.core.gradients import cost_gradient
from repro.core.kernel import FusedKernel
from repro.obs import OBS
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng, spawn_rngs


@dataclass
class GradientDescentTrace:
    """Outcome of one gradient-descent run.

    Attributes
    ----------
    w:
        Final relaxed assignment matrix, shape ``(G, K)``.
    cost_history:
        ``cost_new`` at every iteration of the while-loop (the value that
        triggered the stop is the last entry).
    converged:
        True when the margin criterion fired, False when the iteration
        cap stopped the loop.
    iterations:
        Number of gradient steps actually taken.
    final_terms:
        :class:`~repro.core.cost.CostTerms` at the final evaluated ``w``
        (reused from the last loop evaluation, never recomputed).
    telemetry:
        Per-iteration observability records (cost-term breakdown,
        relative change, gradient norm — see
        :mod:`repro.obs.telemetry`).  ``None`` unless observability was
        enabled (:func:`repro.obs.enable`) during the solve.
    """

    w: np.ndarray
    cost_history: list = field(default_factory=list)
    converged: bool = False
    iterations: int = 0
    final_terms: object = None
    telemetry: list = None

    @property
    def final_cost(self):
        return self.cost_history[-1] if self.cost_history else float("nan")


def _validate_problem(num_planes, bias, pinned):
    """Shared solver-input validation; returns ``(bias, pinned dict)``."""
    bias = np.asarray(bias, dtype=float)
    num_gates = bias.shape[0]
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if num_planes > num_gates:
        raise PartitionError(
            f"cannot split {num_gates} gates into {num_planes} planes "
            "(every plane needs at least one gate)"
        )
    pinned = dict(pinned or {})
    for gate, plane in pinned.items():
        if not 0 <= gate < num_gates:
            raise PartitionError(f"pinned gate index {gate} out of range")
        if not 0 <= plane < num_planes:
            raise PartitionError(f"pinned gate {gate}: plane {plane} out of range")
    return bias, pinned


def _clamp_pinned(w, pinned):
    """Hold pinned rows one-hot; works on ``(G, K)`` and ``(R, G, K)``."""
    for gate, plane in pinned.items():
        w[..., gate, :] = 0.0
        w[..., gate, plane] = 1.0
    return w


def minimize_assignment(num_planes, edges, bias, area, config, rng=None, w0=None, pinned=None):
    """Run Algorithm 1 once and return a :class:`GradientDescentTrace`.

    This is the legacy ``engine="loop"`` reference implementation; the
    batched engine (:func:`minimize_assignment_batch`) produces
    bit-identical results for the same initialization.

    Parameters
    ----------
    num_planes:
        K, the number of ground planes.
    edges:
        ``(|E|, 2)`` connection array (gate indices).
    bias, area:
        Per-gate ``b_i`` (mA) and ``a_i`` vectors, shape ``(G,)``.
    config:
        :class:`~repro.core.config.PartitionConfig`.
    rng:
        Seed or generator for the random initialization.
    w0:
        Optional explicit initial matrix (overrides the random init;
        used by tests and by warm-started refinement).
    pinned:
        Optional ``{gate index: plane}`` hard constraints (extension):
        those rows are held one-hot throughout the descent.  Physically
        motivated by I/O: pads share the common perimeter ground, so
        gates wired to I/O must sit on a plane the designer chooses.
    """
    bias, pinned = _validate_problem(num_planes, bias, pinned)
    num_gates = bias.shape[0]

    if w0 is None:
        w = random_assignment(num_gates, num_planes, rng=make_rng(rng))
    else:
        w = np.array(w0, dtype=float)
        if w.shape != (num_gates, num_planes):
            raise PartitionError(f"w0 must have shape ({num_gates}, {num_planes}), got {w.shape}")

    w = _clamp_pinned(w, pinned)

    obs = OBS if OBS.enabled else None
    if obs is not None:
        run = obs.telemetry.begin_run("loop", 1)

    trace = GradientDescentTrace(w=w, telemetry=[] if obs is not None else None)
    cost_old = np.inf
    with OBS.trace.span("descent", engine="loop"):
        for _ in range(config.max_iterations):
            terms = cost_terms(w, edges, bias, area, config)
            cost_new = terms.total
            trace.cost_history.append(cost_new)
            # final_terms always mirrors the last loop evaluation, so no
            # post-loop recomputation is ever needed (max_iterations >= 1 is
            # enforced by the config, so at least one evaluation happens).
            trace.final_terms = terms
            finite_old = np.isfinite(cost_old) and cost_old != 0.0
            rel_change = abs(cost_new / cost_old - 1.0) if finite_old else None
            # Algorithm 1 line 14. cost_old is inf on the first pass, so the
            # ratio is 0 and the loop never stops before taking one step.
            stopping = (finite_old and rel_change <= config.margin) or (
                cost_old == 0.0 and cost_new == 0.0
            )
            if stopping:
                trace.converged = True
                if obs is not None:
                    trace.telemetry.append(
                        obs.telemetry.record(
                            run, 0, trace.iterations, terms.f1, terms.f2, terms.f3,
                            terms.f4, cost_new, rel_change, None, 1,
                        )
                    )
                break
            gradient = cost_gradient(w, edges, bias, area, config)
            if obs is not None:
                trace.telemetry.append(
                    obs.telemetry.record(
                        run, 0, trace.iterations, terms.f1, terms.f2, terms.f3,
                        terms.f4, cost_new, rel_change,
                        float(np.sqrt(np.sum(gradient * gradient))), 1,
                    )
                )
            step = config.learning_rate * gradient
            w = np.clip(w - step, 0.0, 1.0)
            if config.renormalize_rows:
                w = normalize_rows(w)
            if pinned:
                w = _clamp_pinned(w, pinned)
            trace.iterations += 1
            cost_old = cost_new

    trace.w = w
    return trace


def minimize_assignment_batch(
    num_planes, edges, bias, area, config, rngs=None, w0=None, pinned=None, restarts=None
):
    """Run Algorithm 1 from several restarts in lockstep (``engine="batched"``).

    All restarts advance together as one ``(R, G, K)`` tensor through
    the fused cost/gradient kernel: labels, edge differences, per-plane
    sums and row means are computed once per iteration for the whole
    batch, inputs are validated once up front, and the F1 gradient
    scatter uses the kernel's precomputed segment-sum.

    Convergence masking: a restart whose margin criterion fires is
    frozen — its matrix, cost history, iteration count and final terms
    stop changing — and the remaining restarts continue on a compacted
    stack, so late iterations only pay for the restarts still live.

    Parameters
    ----------
    num_planes, edges, bias, area, config:
        As in :func:`minimize_assignment`.
    rngs:
        Per-restart seeds/generators (a sequence — its length defines
        ``R``), or a single seed/generator from which ``restarts``
        (default ``config.restarts``) independent streams are spawned.
        Ignored when ``w0`` is given.
    w0:
        Optional explicit initial stack ``(R, G, K)``; a single
        ``(G, K)`` matrix is broadcast to all restarts.
    pinned:
        Hard ``{gate index: plane}`` constraints applied to every
        restart.
    restarts:
        Batch size when ``rngs`` is not a sequence; defaults to
        ``config.restarts``.

    Returns
    -------
    list of :class:`GradientDescentTrace`, one per restart, each
    bit-identical to what :func:`minimize_assignment` returns for the
    same initialization.
    """
    bias, pinned = _validate_problem(num_planes, bias, pinned)
    num_gates = bias.shape[0]
    kernel = FusedKernel(num_planes, edges, bias, area)

    if w0 is not None:
        w0 = np.array(w0, dtype=float)
        if w0.ndim == 2:
            w0 = np.repeat(w0[None], 1 if restarts is None else int(restarts), axis=0)
        if w0.ndim != 3 or w0.shape[1:] != (num_gates, num_planes):
            raise PartitionError(
                f"w0 must have shape (R, {num_gates}, {num_planes}), got {w0.shape}"
            )
        stack = w0
    else:
        if rngs is None or isinstance(rngs, (int, np.integer, np.random.Generator)):
            count = int(restarts if restarts is not None else config.restarts)
            rngs = spawn_rngs(make_rng(rngs), count)
        rngs = list(rngs)
        if not rngs:
            raise PartitionError("minimize_assignment_batch needs at least one restart")
        stack = np.stack(
            [random_assignment(num_gates, num_planes, rng=make_rng(r)) for r in rngs]
        )

    num_restarts = stack.shape[0]
    stack = _clamp_pinned(np.ascontiguousarray(stack), pinned)

    obs = OBS if OBS.enabled else None
    if obs is not None:
        run = obs.telemetry.begin_run("batched", num_restarts)

    traces = [
        GradientDescentTrace(w=stack[r], telemetry=[] if obs is not None else None)
        for r in range(num_restarts)
    ]
    final_w = [None] * num_restarts
    # (BatchedCostTerms, row) of each restart's latest evaluation; the
    # scalar CostTerms is materialized once after the loop instead of on
    # every iteration.
    last_eval = [None] * num_restarts
    # Restart indices still descending, and their compacted stack.
    active = np.arange(num_restarts)
    live = stack
    cost_old = np.full(num_restarts, np.inf)

    with OBS.trace.span("descent_batch", restarts=num_restarts):
        _descend_batch(
            kernel, config, traces, final_w, last_eval, active, live, cost_old,
            pinned, obs, run if obs is not None else None,
        )

    for r in range(num_restarts):
        traces[r].w = np.ascontiguousarray(final_w[r])
        terms_r, row = last_eval[r]
        traces[r].final_terms = terms_r.term(row)
    return traces


def _descend_batch(kernel, config, traces, final_w, last_eval, active, live, cost_old, pinned, obs, run):
    """The batched descent loop of :func:`minimize_assignment_batch`.

    Split out so the timing span around it stays exception-safe without
    indenting the whole loop; mutates ``traces``/``final_w``/
    ``last_eval`` in place.
    """
    for _ in range(config.max_iterations):
        if active.size == 0:
            break
        terms, gradient = kernel.cost_and_gradient(live, config)
        cost_new = terms.total
        for j, r in enumerate(active):
            traces[r].cost_history.append(float(cost_new[j]))
            last_eval[r] = (terms, j)

        # Algorithm 1 line 14, vectorized per restart (cost_old is inf on
        # each restart's first pass, so nothing stops before one step).
        old = cost_old[active]
        finite = np.isfinite(old) & (old != 0.0)
        ratio = np.abs(np.where(finite, cost_new, 0.0) / np.where(finite, old, 1.0) - 1.0)
        stop = (finite & (ratio <= config.margin)) | ((old == 0.0) & (cost_new == 0.0))

        if obs is not None:
            # Read-only pass over this iteration's evaluation, taken
            # before the in-place descent step reuses the gradient
            # buffer.  A restart stopping this iteration never computes
            # a step, so (matching the loop engine) its grad_norm is
            # recorded as None.
            grad_norms = np.sqrt(np.einsum("rgk,rgk->r", gradient, gradient))
            alive = int(active.size)
            for j, r in enumerate(active):
                record = obs.telemetry.record(
                    run, int(r), traces[r].iterations,
                    float(terms.f1[j]), float(terms.f2[j]), float(terms.f3[j]),
                    float(terms.f4[j]), float(cost_new[j]),
                    float(ratio[j]) if finite[j] else None,
                    None if stop[j] else float(grad_norms[j]), alive,
                )
                traces[r].telemetry.append(record)

        if stop.any():
            for j in np.flatnonzero(stop):
                r = int(active[j])
                traces[r].converged = True
                final_w[r] = live[j]
            keep = ~stop
            active = active[keep]
            if active.size == 0:
                break
            live = np.ascontiguousarray(live[keep])
            gradient = gradient[keep]
            cost_new = cost_new[keep]

        # In-place descent step reusing the gradient buffer.  Bitwise
        # identical to ``clip(live - lr * gradient)``: IEEE multiply by
        # ``-lr`` flips sign exactly and ``a + (-b) == a - b``.
        gradient *= -config.learning_rate
        gradient += live
        live = np.clip(gradient, 0.0, 1.0, out=gradient)
        if config.renormalize_rows:
            live = normalize_rows(live)
        if pinned:
            live = _clamp_pinned(live, pinned)
        for r in active:
            traces[r].iterations += 1
        cost_old[active] = cost_new

    # Restarts stopped by the iteration cap keep their last stepped w,
    # exactly like the sequential loop.
    for j, r in enumerate(active):
        final_w[int(r)] = live[j]
