"""High-level partitioning API.

:func:`partition` is the package's main entry point: it takes a netlist
and a plane count, runs Algorithm 1 from several random restarts, rounds
the best relaxed solution to integer plane labels and returns a
:class:`PartitionResult` that the metrics/recycling layers consume.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import round_assignment, round_assignment_balanced
from repro.core.config import PartitionConfig
from repro.core.cost import integer_cost
from repro.core.optimizer import minimize_assignment, minimize_assignment_batch
from repro.netlist.graph import undirected_degrees
from repro.obs import OBS
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng, spawn_rngs


@dataclass
class PartitionResult:
    """A finished K-way ground-plane partition of a netlist.

    ``labels[i]`` is the zero-based plane of gate ``i``; plane 0 is the
    top plane of the serial bias chain (the one fed by the external
    supply), plane ``K-1`` the bottom one, matching Fig. 1 of the paper.
    """

    netlist: object
    num_planes: int
    labels: np.ndarray
    config: PartitionConfig
    trace: object = None
    restart_costs: list = field(default_factory=list)
    repaired_gates: int = 0
    pinned: dict = field(default_factory=dict)
    #: Per-restart solver diagnostics: one dict per restart with
    #: ``restart``, ``iterations``, ``converged``, ``relaxed_cost`` (the
    #: final descent cost) and ``integer_cost`` (the post-rounding score
    #: that picks the winner).  Lets benchmarks separate genuine speed
    #: from early convergence.  Empty for the trivial K == 1 partition.
    restart_stats: list = field(default_factory=list)

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.intp)
        if self.labels.shape != (self.netlist.num_gates,):
            raise PartitionError(
                f"labels shape {self.labels.shape} does not match netlist "
                f"({self.netlist.num_gates} gates)"
            )
        if self.labels.size and (self.labels.min() < 0 or self.labels.max() >= self.num_planes):
            raise PartitionError("labels out of range")

    # ------------------------------------------------------------------
    def planes(self):
        """List of K arrays of gate indices, one per plane."""
        return [np.flatnonzero(self.labels == k) for k in range(self.num_planes)]

    def plane_sizes(self):
        """Gate count per plane, shape ``(K,)``."""
        return np.bincount(self.labels, minlength=self.num_planes)

    def plane_bias_ma(self):
        """Per-plane bias current ``B_k`` in mA, shape ``(K,)``."""
        return np.bincount(
            self.labels, weights=self.netlist.bias_vector_ma(), minlength=self.num_planes
        )

    def plane_area_mm2(self):
        """Per-plane gate area ``A_k`` in mm^2, shape ``(K,)``."""
        return np.bincount(
            self.labels, weights=self.netlist.area_vector_mm2(), minlength=self.num_planes
        )

    def connection_distances(self):
        """``d = |l_i1 - l_i2|`` per connection, shape ``(|E|,)``."""
        edges = self.netlist.edge_array()
        if edges.shape[0] == 0:
            return np.zeros(0, dtype=np.intp)
        return np.abs(self.labels[edges[:, 0]] - self.labels[edges[:, 1]])

    def integer_cost(self):
        """Post-rounding cost ``c1 F1 + c2 F2 + c3 F3`` of this partition."""
        return integer_cost(
            self.labels,
            self.num_planes,
            self.netlist.edge_array(),
            self.netlist.bias_vector_ma(),
            self.netlist.area_vector_um2(),
            self.config,
        )

    def __repr__(self):
        sizes = ", ".join(str(int(s)) for s in self.plane_sizes())
        return (
            f"PartitionResult({self.netlist.name!r}, K={self.num_planes}, "
            f"plane sizes=[{sizes}])"
        )


def _repair_empty_planes(labels, num_planes, netlist, pinned=None):
    """Move low-connectivity gates from the heaviest plane into empty ones.

    Algorithm 1 can round to a solution with empty planes when K is large
    relative to the circuit; a serial bias chain with an empty plane is
    ill-defined (the chain would carry the full compensation current), so
    we repair by repeatedly taking the gate with the fewest incident
    connections out of the plane with the largest bias current.  Pinned
    gates are never moved.  Returns ``(labels, moved_count)``.
    """
    labels = labels.copy()
    bias = netlist.bias_vector_ma()
    degrees = undirected_degrees(netlist)
    movable = np.ones(labels.size, dtype=bool)
    for gate in (pinned or {}):
        movable[gate] = False
    moved = 0
    while True:
        sizes = np.bincount(labels, minlength=num_planes)
        empty = np.flatnonzero(sizes == 0)
        if empty.size == 0:
            return labels, moved
        plane_bias = np.bincount(labels, weights=bias, minlength=num_planes)
        movable_sizes = np.bincount(labels[movable], minlength=num_planes)
        donor_candidates = np.flatnonzero((sizes > 1) & (movable_sizes > 0))
        if donor_candidates.size == 0:
            raise PartitionError(
                f"cannot repair empty plane: no plane has a movable spare gate "
                f"(G={labels.size}, K={num_planes})"
            )
        donor = donor_candidates[np.argmax(plane_bias[donor_candidates])]
        members = np.flatnonzero((labels == donor) & movable)
        mover = members[np.argmin(degrees[members])]
        labels[mover] = empty[0]
        moved += 1


def partition(netlist, num_planes, config=None, seed=None, pinned=None):
    """Partition ``netlist`` into ``num_planes`` serially-biased planes.

    Runs ``config.restarts`` independent gradient-descent solves
    (Algorithm 1) and keeps the rounded solution with the lowest integer
    cost.  The solves run through the batched fused-kernel engine by
    default, or serially when ``config.engine == "loop"``; both engines
    yield bit-identical labels for the same seed.  ``config.engine ==
    "multilevel"`` warm-starts the same descent from a coarsened solve
    (faster on >1k-gate circuits, same validity guarantees, different
    labels).  See :class:`~repro.core.config.PartitionConfig` for knobs.

    Parameters
    ----------
    netlist:
        A :class:`~repro.netlist.netlist.Netlist`.
    num_planes:
        K >= 1.  ``K == 1`` returns the trivial single-plane partition.
    config:
        Optional :class:`PartitionConfig`; defaults are calibrated for
        the reconstructed benchmark suite.
    seed:
        Overrides ``config.seed`` when given.
    pinned:
        Optional hard gate-to-plane constraints, ``{gate name/index/
        Gate: plane}`` (extension; e.g. pin I/O-adjacent gates to the
        perimeter planes).  Pinned gates never move — not in the
        descent, the rounding, or the empty-plane repair.

    Returns
    -------
    PartitionResult
    """
    if config is None:
        config = PartitionConfig()
    if netlist.num_gates == 0:
        raise PartitionError(f"netlist {netlist.name!r} has no gates")
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if num_planes > netlist.num_gates:
        raise PartitionError(
            f"cannot split {netlist.num_gates} gates into {num_planes} planes"
        )
    pinned_index = {}
    for gate_ref, plane in (pinned or {}).items():
        plane = int(plane)
        if not 0 <= plane < num_planes:
            raise PartitionError(f"pinned plane {plane} out of range for K={num_planes}")
        pinned_index[netlist.gate(gate_ref).index] = plane

    if num_planes == 1:
        labels = np.zeros(netlist.num_gates, dtype=np.intp)
        return PartitionResult(
            netlist=netlist, num_planes=1, labels=labels, config=config, pinned=pinned_index
        )

    edges = netlist.edge_array()
    bias = netlist.bias_vector_ma()
    area = netlist.area_vector_um2()

    rng = make_rng(config.seed if seed is None else seed)
    streams = spawn_rngs(rng, config.restarts)

    with OBS.trace.span(
        "partition", circuit=netlist.name, planes=num_planes,
        gates=netlist.num_gates, engine=config.engine,
    ):
        if OBS.enabled:
            OBS.metrics.counter("partition.calls").inc()
            OBS.metrics.counter("partition.restarts").inc(config.restarts)

        with OBS.trace.span("solve"):
            if config.engine == "batched":
                traces = minimize_assignment_batch(
                    num_planes, edges, bias, area, config, rngs=streams, pinned=pinned_index
                )
            elif config.engine == "multilevel":
                from repro.core.multilevel import minimize_assignment_multilevel

                traces = minimize_assignment_multilevel(
                    num_planes, edges, bias, area, config, rngs=streams,
                    pinned=pinned_index, coarsen_rng=rng,
                )
            else:
                traces = [
                    minimize_assignment(
                        num_planes, edges, bias, area, config, rng=stream, pinned=pinned_index
                    )
                    for stream in streams
                ]

        return finalize_traces(
            netlist, num_planes, config, traces, pinned_index, edges, bias, area
        )


def finalize_traces(netlist, num_planes, config, traces, pinned_index, edges, bias, area):
    """Score, round and repair solved traces into a :class:`PartitionResult`.

    The shared tail of :func:`partition` and the mega-batch packer
    (:mod:`repro.core.megabatch`): given per-restart descent traces this
    performs exactly the rounding, integer-cost scoring, empty-plane
    repair and observability accounting a solo :func:`partition` call
    would — which is what makes packed jobs finish bitwise identically
    to solo ones.
    """
    with OBS.trace.span("score"):
        best = None
        best_cost = np.inf
        best_labels = None
        restart_costs = []
        restart_stats = []
        for index, trace in enumerate(traces):
            if config.engine == "multilevel" and getattr(trace, "coarse_levels", 0):
                # Interpolated warm starts have supernode-constant
                # rows; argmax would round whole clusters onto one
                # plane, so use the capacity-aware rounding instead.
                # Traces without coarse_levels fell through to the
                # plain batched solve (sub-floor circuit or edgeless
                # graph); round those with the plain argmax so small
                # circuits match engine="batched" exactly.
                labels = round_assignment_balanced(
                    trace.w, bias,
                    slack=config.multilevel_round_slack,
                    pinned=pinned_index,
                )
            else:
                labels = round_assignment(trace.w)
            cost = integer_cost(labels, num_planes, edges, bias, area, config)
            restart_costs.append(cost)
            stats = {
                "restart": index,
                "iterations": trace.iterations,
                "converged": trace.converged,
                "relaxed_cost": trace.final_cost,
                "integer_cost": cost,
            }
            coarse_iterations = getattr(trace, "coarse_iterations", None)
            if coarse_iterations is not None:
                # engine="multilevel": cheap coarse-solve effort,
                # reported separately from the fine iterations above.
                stats["coarse_iterations"] = coarse_iterations
                stats["coarse_converged"] = trace.coarse_converged
            restart_stats.append(stats)
            if cost < best_cost:
                best, best_cost, best_labels = trace, cost, labels

    repaired = 0
    if config.ensure_nonempty:
        with OBS.trace.span("repair"):
            best_labels, repaired = _repair_empty_planes(
                best_labels, num_planes, netlist, pinned=pinned_index
            )
    if OBS.enabled:
        OBS.metrics.counter("partition.converged_restarts").inc(
            sum(1 for s in restart_stats if s["converged"])
        )
        OBS.metrics.counter("partition.repaired_gates").inc(repaired)
        OBS.metrics.histogram(
            "partition.restart_iterations", buckets=(10, 25, 50, 100, 250, 500, 1000, 2000)
        )
        for stats in restart_stats:
            OBS.metrics.histogram("partition.restart_iterations").observe(
                stats["iterations"]
            )

    return PartitionResult(
        netlist=netlist,
        num_planes=num_planes,
        labels=best_labels,
        config=config,
        trace=best,
        restart_costs=restart_costs,
        repaired_gates=repaired,
        pinned=pinned_index,
        restart_stats=restart_stats,
    )
