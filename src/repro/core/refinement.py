"""Greedy post-rounding refinement (extension, not in the paper).

Algorithm 1 rounds the relaxed solution with a per-gate argmax, which can
leave locally-improvable assignments.  :func:`refine_greedy` performs
steepest-descent single-gate moves on the *integer* cost: at each pass it
evaluates, for every gate, the cost delta of moving it to each other
plane, applies the single best improving move, and repeats until no move
improves or the pass budget is exhausted.

The integer cost matches :func:`repro.core.cost.integer_cost`
(``c1 F1 + c2 F2 + c3 F3``), so refinement never trades constraint
satisfaction away — every intermediate state is a feasible partition.
The ablation bench ``benchmarks/test_ablation_refinement.py`` quantifies
how much this recovers on top of the paper's rounding.
"""

import numpy as np

from repro.utils.errors import PartitionError


class _IncrementalCost:
    """Incremental evaluator of the integer cost under single-gate moves."""

    def __init__(self, labels, num_planes, edges, bias, area, config):
        self.num_planes = int(num_planes)
        self.edges = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
        self.bias = np.asarray(bias, dtype=float)
        self.area = np.asarray(area, dtype=float)
        self.config = config
        self.labels = np.asarray(labels, dtype=np.intp).copy()
        num_gates = self.bias.shape[0]

        self.adjacency = [[] for _ in range(num_gates)]
        for u, v in self.edges:
            self.adjacency[u].append(int(v))
            self.adjacency[v].append(int(u))

        self.plane_bias = np.bincount(self.labels, weights=self.bias, minlength=self.num_planes)
        self.plane_area = np.bincount(self.labels, weights=self.area, minlength=self.num_planes)
        self.plane_sizes = np.bincount(self.labels, minlength=self.num_planes)

        k = self.num_planes
        self.n1 = max(self.edges.shape[0], 1) * max(k - 1, 1) ** 4
        mean_bias = self.plane_bias.mean()
        mean_area = self.plane_area.mean()
        self.n2 = max(k - 1, 1) * (mean_bias**2 if mean_bias else 1.0)
        self.n3 = max(k - 1, 1) * (mean_area**2 if mean_area else 1.0)

    # -- cost pieces ----------------------------------------------------
    def _f1_local(self, gate, label):
        """Quartic connection cost of the edges incident to ``gate`` if it
        sat on ``label`` (other labels fixed)."""
        total = 0.0
        for other in self.adjacency[gate]:
            total += float(abs(label - self.labels[other])) ** 4
        return total / self.n1

    def _variance(self, per_plane, normalizer):
        mean = per_plane.mean()
        if mean == 0.0:
            return 0.0
        return float(np.mean((per_plane - mean) ** 2) / normalizer)

    def move_delta(self, gate, new_label):
        """Cost change if ``gate`` moved to ``new_label`` (negative = better)."""
        old_label = self.labels[gate]
        if new_label == old_label:
            return 0.0
        c = self.config
        delta = c.c1 * (self._f1_local(gate, new_label) - self._f1_local(gate, old_label))

        plane_bias = self.plane_bias.copy()
        plane_bias[old_label] -= self.bias[gate]
        plane_bias[new_label] += self.bias[gate]
        delta += c.c2 * (
            self._variance(plane_bias, self.n2) - self._variance(self.plane_bias, self.n2)
        )

        plane_area = self.plane_area.copy()
        plane_area[old_label] -= self.area[gate]
        plane_area[new_label] += self.area[gate]
        delta += c.c3 * (
            self._variance(plane_area, self.n3) - self._variance(self.plane_area, self.n3)
        )
        return delta

    def apply_move(self, gate, new_label):
        old_label = self.labels[gate]
        if self.plane_sizes[old_label] <= 1:
            raise PartitionError("refinement would empty a plane")
        self.plane_bias[old_label] -= self.bias[gate]
        self.plane_bias[new_label] += self.bias[gate]
        self.plane_area[old_label] -= self.area[gate]
        self.plane_area[new_label] += self.area[gate]
        self.plane_sizes[old_label] -= 1
        self.plane_sizes[new_label] += 1
        self.labels[gate] = new_label


def greedy_improve(state, num_planes, max_passes=8, candidate_planes="adjacent", pinned=()):
    """Steepest-descent single-gate improvement on an
    :class:`_IncrementalCost` state (shared by :func:`refine_greedy`
    and the multilevel partitioner).  Returns the number of applied
    moves; the state is modified in place."""
    if candidate_planes not in ("adjacent", "all"):
        raise PartitionError(
            f"candidate_planes must be 'adjacent' or 'all', got {candidate_planes!r}"
        )
    pinned = set(pinned)
    num_gates = state.labels.shape[0]
    moves = 0
    for _ in range(max_passes):
        improved = False
        for gate in range(num_gates):
            if gate in pinned:
                continue
            current = state.labels[gate]
            if state.plane_sizes[current] <= 1:
                continue
            if candidate_planes == "adjacent":
                candidates = [current - 1, current + 1]
            else:
                candidates = [k for k in range(num_planes) if k != current]
            best_delta, best_target = -1e-12, None
            for target in candidates:
                if not 0 <= target < num_planes:
                    continue
                delta = state.move_delta(gate, target)
                if delta < best_delta:
                    best_delta, best_target = delta, target
            if best_target is not None:
                state.apply_move(gate, best_target)
                improved = True
                moves += 1
        if not improved:
            break
    return moves


def refine_greedy(result, max_passes=8, candidate_planes="adjacent"):
    """Refine a :class:`~repro.core.partitioner.PartitionResult` in place-ish.

    Parameters
    ----------
    result:
        The partition to refine (not mutated; a new result is returned).
    max_passes:
        Upper bound on full sweeps over all gates.
    candidate_planes:
        ``"adjacent"`` only tries moving each gate one plane up/down
        (cheap, matches the serial-chain locality); ``"all"`` tries every
        other plane.

    Returns
    -------
    A new ``PartitionResult`` with (weakly) lower integer cost.
    """
    from repro.core.partitioner import PartitionResult  # deferred: avoid import cycle

    netlist = result.netlist
    state = _IncrementalCost(
        result.labels,
        result.num_planes,
        netlist.edge_array(),
        netlist.bias_vector_ma(),
        netlist.area_vector_um2(),
        result.config,
    )
    greedy_improve(
        state,
        result.num_planes,
        max_passes=max_passes,
        candidate_planes=candidate_planes,
        pinned=set(getattr(result, "pinned", {}) or {}),
    )

    return PartitionResult(
        netlist=netlist,
        num_planes=result.num_planes,
        labels=state.labels,
        config=result.config,
        trace=result.trace,
        restart_costs=list(result.restart_costs),
        repaired_gates=result.repaired_gates,
        pinned=dict(getattr(result, "pinned", {}) or {}),
    )
