"""Heavy-edge graph coarsening (the multilevel V-cycle's first leg).

The Karypis-Kumar multilevel scheme collapses strongly connected node
pairs into supernodes until the graph is small enough to solve cheaply.
Two consumers share this module:

* the classic multilevel *baseline*
  (:func:`repro.baselines.multilevel.multilevel_partition`), which
  refines with greedy integer moves on the way back up;
* the ``engine="multilevel"`` solver accelerator
  (:mod:`repro.core.multilevel`), which solves the coarsest problem
  with the batched gradient kernel and interpolates the relaxed ``w``
  down as a warm start for the paper's own descent.

Bias and area add under merging; parallel edges keep their multiplicity
(as weights), so the F1 interconnection term of the coarse problem
counts exactly the fine-level connections it represents.
"""

import numpy as np


def heavy_edge_matching(num_nodes, edges, weights, rng, frozen=None):
    """One coarsening step: match each node with its heaviest unmatched
    neighbor.  Returns ``(coarse_count, fine_to_coarse)``.

    ``frozen`` nodes (e.g. gates pinned to a plane) never match — they
    survive as singleton supernodes so constraints stay well-defined on
    every level.
    """
    order = rng.permutation(num_nodes)
    # neighbor weights
    neighbor_weight = [dict() for _ in range(num_nodes)]
    for (u, v), weight in zip(edges, weights):
        if u == v:
            continue
        neighbor_weight[u][v] = neighbor_weight[u].get(v, 0.0) + weight
        neighbor_weight[v][u] = neighbor_weight[v].get(u, 0.0) + weight

    match = np.full(num_nodes, -1, dtype=np.intp)
    if frozen is not None:
        for node in frozen:
            match[node] = node  # self-match: never paired, stays singleton
    for node in order:
        if match[node] != -1:
            continue
        best, best_weight = -1, 0.0
        for neighbor, weight in neighbor_weight[node].items():
            if match[neighbor] == -1 and weight > best_weight:
                best, best_weight = neighbor, weight
        if best != -1:
            match[node] = best
            match[best] = node

    fine_to_coarse = np.full(num_nodes, -1, dtype=np.intp)
    next_id = 0
    for node in range(num_nodes):
        if fine_to_coarse[node] != -1:
            continue
        fine_to_coarse[node] = next_id
        if match[node] != -1 and match[node] != node:
            fine_to_coarse[match[node]] = next_id
        next_id += 1
    return next_id, fine_to_coarse


def project_edges(edges, weights, fine_to_coarse):
    """Map edges through a coarsening; drop self-loops, keep multiplicity."""
    if edges.shape[0] == 0:
        return edges, weights
    mapped = fine_to_coarse[edges]
    keep = mapped[:, 0] != mapped[:, 1]
    return mapped[keep], weights[keep]


def coarsen_problem(num_nodes, edges, bias, area, coarsest_nodes, rng, frozen=None):
    """Repeated heavy-edge matching down to ``coarsest_nodes`` nodes.

    Returns ``(levels, maps)`` where ``levels[i]`` is the tuple
    ``(bias, area, edges, weights)`` of level ``i`` (level 0 = the input
    problem, unit edge weights) and ``maps[i]`` sends level-``i`` node
    ids to level ``i+1``.  Stops early when matching makes no progress
    (no edges left to contract).
    """
    edges = np.asarray(edges, dtype=np.intp)
    weights = np.ones(edges.shape[0])
    levels = [(np.asarray(bias, dtype=float), np.asarray(area, dtype=float), edges, weights)]
    maps = []
    frozen = set() if frozen is None else set(int(f) for f in frozen)
    while num_nodes > coarsest_nodes:
        level_bias, level_area, level_edges, level_weights = levels[-1]
        coarse_count, fine_to_coarse = heavy_edge_matching(
            num_nodes, level_edges, level_weights, rng, frozen=frozen or None
        )
        if coarse_count >= num_nodes:  # no matching progress (no edges left)
            break
        coarse_bias = np.bincount(fine_to_coarse, weights=level_bias, minlength=coarse_count)
        coarse_area = np.bincount(fine_to_coarse, weights=level_area, minlength=coarse_count)
        coarse_edges, coarse_weights = project_edges(level_edges, level_weights, fine_to_coarse)
        maps.append(fine_to_coarse)
        levels.append((coarse_bias, coarse_area, coarse_edges, coarse_weights))
        frozen = {int(fine_to_coarse[f]) for f in frozen}
        num_nodes = coarse_count
    return levels, maps


def compose_maps(maps):
    """Fold per-level ``fine_to_coarse`` maps into one level-0 -> coarsest map."""
    composed = maps[0]
    for fine_to_coarse in maps[1:]:
        composed = fine_to_coarse[composed]
    return composed


def expand_weighted_edges(edges, weights):
    """Weighted edges as repeated rows, so F1 keeps edge multiplicity."""
    if edges.shape[0] == 0:
        return edges
    return np.repeat(edges, np.asarray(weights).astype(int), axis=0)
