"""Configuration of the partitioning optimizer.

The paper (eq. (8), Algorithm 1) leaves the cost weights ``c1..c4`` as
tunable constants and folds the gradient-descent step size into them.
:class:`PartitionConfig` exposes the weights, the stopping margin (the
paper's ``margin = 0.0001``), an explicit learning rate, a restart count
and the gradient flavor.
"""

import math
from dataclasses import dataclass, field, replace

from repro.utils.errors import PartitionError

#: Gradient flavors, see :mod:`repro.core.gradients`.
GRADIENT_MODES = ("paper", "exact")

#: Solver engines, see :mod:`repro.core.optimizer` (``batched``/``loop``)
#: and :mod:`repro.core.multilevel` (``multilevel``).
ENGINES = ("batched", "loop", "multilevel")


@dataclass(frozen=True)
class PartitionConfig:
    """All tunable knobs of Algorithm 1.

    Attributes
    ----------
    c1, c2, c3, c4:
        Weights of the interconnection (F1), bias-variance (F2),
        area-variance (F3) and relaxed-constraint (F4) cost terms.
        Defaults were calibrated on the reconstructed benchmark suite to
        land in the regime the paper reports (d<=1 around 55-75 %,
        I_comp and A_FS in the single-digit percents for K=5).
    margin:
        Relative-cost-change stopping threshold; paper uses 1e-4.
    learning_rate:
        Explicit step size multiplying the summed weighted gradient.
        The paper folds this into ``c1..c4``; keeping it separate lets
        the weights express only the *relative* importance of the terms.
    max_iterations:
        Safety cap on gradient-descent iterations (Algorithm 1 has no
        cap; the margin criterion normally triggers far earlier).
    restarts:
        Number of independent random initializations; the result with
        the lowest *integer* (post-rounding) cost wins.
    gradient_mode:
        ``"paper"`` uses the gradients printed in eq. (10) verbatim;
        ``"exact"`` uses the analytically re-derived gradient of F4
        (the two differ for F4 only; see DESIGN.md).
    renormalize_rows:
        If True (default), re-normalize each row of ``w`` to sum 1 after
        every update.  Algorithm 1 as printed relies on F4 + clipping
        only (``renormalize_rows=False``); with the paper's unknown
        weight constants that variant produced badly unbalanced planes
        on the reconstructed suite (I_comp > 100 %), while the
        projection variant lands in the regime the paper reports, so the
        projection is the default.  The clip-only variant remains
        available and is measured by the ablation bench
        ``benchmarks/test_ablation_gradient.py``.
    ensure_nonempty:
        Repair empty planes after rounding by moving in the loosest
        gates from the heaviest plane (post-processing; keeps the
        serial bias chain well-defined).
    engine:
        Solver engine used by :func:`~repro.core.partitioner.partition`.
        ``"batched"`` (default) runs all restarts in lockstep through
        the fused ``(R, G, K)`` cost/gradient kernel with per-restart
        convergence masking; ``"loop"`` runs them serially through the
        legacy two-pass reference solver.  Both produce bit-identical
        rounded labels for the same seed (see
        :mod:`repro.core.kernel`).  ``"multilevel"`` accelerates large
        circuits by heavy-edge coarsening, solving the coarse problem
        with the batched kernel and warm-starting the standard fine
        descent from the interpolated solution
        (:mod:`repro.core.multilevel`); its final refinement is the
        paper's descent with a short iteration budget
        (``multilevel_fine_iterations``) and a capacity-aware rounding,
        so its labels are not bit-identical to the cold-start engines.
    multilevel_coarsest_nodes:
        Coarsening floor for ``engine="multilevel"``; 0 (default) means
        the automatic ``max(40, 6 K)``.
    multilevel_fine_iterations:
        Per-restart cap on the warm-started *fine-level* descent of
        ``engine="multilevel"``.  A warm start from a converged coarse
        solution sits in a gentle valley where the relative-change
        margin keeps firing for hundreds of polish iterations that no
        longer change the rounded labels; a short fixed budget (default
        20) keeps the quality win while cutting fine-level work well
        below a cold-start solve.  Clamped to ``max_iterations``.
    multilevel_round_slack:
        Per-plane bias head-room of the capacity-aware rounding used by
        ``engine="multilevel"`` (see
        :func:`~repro.core.assignment.round_assignment_balanced`); the
        rounded partition's ``I_comp`` is bounded by roughly this
        fraction.
    seed:
        Default RNG seed used when the caller does not pass one.
    """

    c1: float = 80.0
    c2: float = 15.0
    c3: float = 15.0
    c4: float = 8.0
    margin: float = 1e-4
    learning_rate: float = 0.4
    max_iterations: int = 2000
    restarts: int = 4
    gradient_mode: str = "paper"
    renormalize_rows: bool = True
    ensure_nonempty: bool = True
    engine: str = "batched"
    multilevel_coarsest_nodes: int = 0
    multilevel_fine_iterations: int = 20
    multilevel_round_slack: float = 0.02
    seed: int = 2020
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        for label, value in (("c1", self.c1), ("c2", self.c2), ("c3", self.c3), ("c4", self.c4)):
            if not math.isfinite(value) or value < 0:
                raise PartitionError(f"{label} must be finite and non-negative, got {value}")
        if not math.isfinite(self.margin) or self.margin <= 0:
            raise PartitionError(f"margin must be positive, got {self.margin}")
        if not math.isfinite(self.learning_rate) or self.learning_rate <= 0:
            raise PartitionError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.max_iterations < 1:
            raise PartitionError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.restarts < 1:
            raise PartitionError(f"restarts must be >= 1, got {self.restarts}")
        if self.gradient_mode not in GRADIENT_MODES:
            raise PartitionError(
                f"gradient_mode must be one of {GRADIENT_MODES}, got {self.gradient_mode!r}"
            )
        if self.engine not in ENGINES:
            raise PartitionError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.multilevel_coarsest_nodes < 0:
            raise PartitionError(
                f"multilevel_coarsest_nodes must be >= 0, got {self.multilevel_coarsest_nodes}"
            )
        if self.multilevel_fine_iterations < 1:
            raise PartitionError(
                f"multilevel_fine_iterations must be >= 1, got {self.multilevel_fine_iterations}"
            )
        if not math.isfinite(self.multilevel_round_slack) or self.multilevel_round_slack < 0:
            raise PartitionError(
                f"multilevel_round_slack must be >= 0, got {self.multilevel_round_slack}"
            )

    @property
    def weights(self):
        """The tuple ``(c1, c2, c3, c4)``."""
        return (self.c1, self.c2, self.c3, self.c4)

    def with_(self, **overrides):
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)
