"""Fused batched cost/gradient kernel for Algorithm 1.

The solver loop evaluates the cost (Algorithm 1 line 13) and the
gradient (line 18) at the same ``w`` on every iteration.  The historical
implementation ran them as two independent passes through
:mod:`repro.core.cost` and :mod:`repro.core.gradients`, each recomputing
the relaxed labels, the per-edge label differences, the per-plane
bias/area sums and the row means — and re-validating the (constant)
problem arrays through ``_check_inputs`` on every call.

:class:`FusedKernel` removes all of that redundancy:

* the problem arrays (edges, bias, area) are validated **once** at
  construction, along with the normalizers ``N1``/``N4`` and the label
  coefficients;
* the ``np.add.at`` scatter of the F1 gradient is replaced by a
  precomputed CSR-style :class:`EdgeIncidence` segment-sum
  (``argsort`` once, ``np.add.reduceat`` per evaluation);
* :meth:`FusedKernel.cost_and_gradient` computes labels, edge
  differences, per-plane sums and row means **once** and returns both
  the four cost terms and the total gradient;
* every evaluation is batched over a leading restart axis: ``w`` of
  shape ``(R, G, K)`` evaluates all ``R`` restarts simultaneously.

Numerical-equivalence contract
------------------------------
The kernel is the arithmetic ground truth for **both** partitioner
engines: the batched engine calls it on ``(R, G, K)`` stacks, while the
sequential engine's entry points (:func:`repro.core.cost.cost_terms` and
:func:`repro.core.gradients.cost_gradient`) delegate to the same kernel
with a single-restart batch.  Equivalence therefore reduces to one
property: every operation in :meth:`FusedKernel.cost_and_gradient` must
produce, for each batch slice, bitwise the same floats it would produce
on that slice alone.  That holds because

* NumPy's reduction strategy (pairwise vs. sequential) depends only on
  the reduced axis and memory layout, not on the size of the leading
  batch axis;
* ``matmul`` on a stacked operand runs one identically-sized gemm/gemv
  per batch entry;
* intermediates produced by advanced indexing (which may come back
  Fortran-ordered) are forced C-contiguous before any last-axis
  reduction, keeping the layout part of the contract true.

The ``engine="batched" | "loop"`` equivalence tests pin this down.
Because each batch slice is self-contained, the contract extends across
*jobs*: restarts from many compatible jobs concatenated into one stack
(:mod:`repro.core.megabatch`) evaluate bitwise identically to each
job's solo stack.

Array backend
-------------
All array arithmetic is routed through a pluggable
:class:`~repro.core.backend.ArrayBackend` (selected via
``REPRO_BACKEND``; default numpy).  The numpy backend delegates to the
exact calls this module made before the layer existed, so the numpy
path — the reference — is bitwise unchanged.

Incidence variants
------------------
:class:`EdgeIncidence` (dense signed-buffer) materializes a
``(..., 2E)`` concatenated ``[values, -values]`` temporary per gradient
evaluation; :class:`SparseEdgeIncidence` replaces it with precomputed
CSR-style index/sign arrays and a single gather, cutting the temporary
count in half while staying bitwise identical.  :func:`build_incidence`
selects the sparse variant automatically above
:data:`SPARSE_INCIDENCE_THRESHOLD` gates (the >10k-gate regime).
"""

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import plane_coefficients
from repro.core.backend import get_backend
from repro.obs import OBS
from repro.utils.errors import PartitionError

#: Gate count above which :func:`build_incidence` picks the sparse
#: (index-array) incidence variant automatically.
SPARSE_INCIDENCE_THRESHOLD = 10_000


class EdgeIncidence:
    """CSR-style signed edge-incidence segment-sum.

    Precomputes, for a fixed edge list, the permutation that groups the
    ``2|E|`` signed edge endpoints by gate.  :meth:`scatter_signed` then
    turns per-edge values into per-gate sums

    ``out[i] = sum_{e: u_e == i} vals[e] - sum_{e: v_e == i} vals[e]``

    with one segment-sum (``np.add.reduceat`` on the numpy backend)
    instead of two ``np.add.at`` scatters.  The summation order within a
    gate's segment is fixed by the precomputed permutation, so results
    are reproducible and identical for batched and single evaluations.
    """

    __slots__ = (
        "backend",
        "num_gates",
        "num_edges",
        "u",
        "v",
        "_order",
        "_starts",
        "_touched",
    )

    #: Human-readable variant tag (benchmarks and repr).
    variant = "dense"

    def __init__(self, edges, num_gates, backend=None):
        self.backend = get_backend(backend)
        edges = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= num_gates):
            raise PartitionError("edge endpoints out of range")
        self.num_gates = int(num_gates)
        self.num_edges = int(edges.shape[0])
        xp = self.backend.xp
        self.u = xp.ascontiguousarray(self.backend.from_host(edges[:, 0]))
        self.v = xp.ascontiguousarray(self.backend.from_host(edges[:, 1]))
        # The grouping permutation is only needed by scatter_signed (the
        # gradient path); built lazily so cost-only users skip the sort.
        self._order = None
        self._starts = None
        self._touched = None

    def _ensure_permutation(self):
        if self._order is not None:
            return
        xp = self.backend.xp
        endpoints = xp.concatenate([self.u, self.v])
        # Stable sort keeps a deterministic within-gate order (all +u
        # occurrences in edge order, then all -v occurrences).
        self._order = xp.argsort(endpoints, kind="stable")
        counts = xp.bincount(endpoints, minlength=self.num_gates)
        self._touched = xp.flatnonzero(counts > 0)
        starts = xp.zeros(self.num_gates + 1, dtype=np.intp)
        xp.cumsum(counts, out=starts[1:])
        self._starts = starts[:-1][self._touched]

    def scatter_signed(self, values):
        """Per-gate signed sums of per-edge ``values``, shape ``(..., E)``.

        Returns shape ``(..., G)``; gates with no incident edge get 0.
        """
        backend = self.backend
        xp = backend.xp
        values = backend.asarray(values, dtype=float)
        out = xp.zeros(values.shape[:-1] + (self.num_gates,), dtype=float)
        if self.num_edges == 0:
            return out
        self._ensure_permutation()
        if self._touched.size == 0:
            return out
        signed = xp.concatenate([values, -values], axis=-1)
        signed = backend.ascontiguousarray(signed[..., self._order])
        out[..., self._touched] = backend.segment_sum(signed, self._starts)
        return out


class SparseEdgeIncidence(EdgeIncidence):
    """Index-array incidence variant for large edge lists.

    The dense variant materializes two full ``(..., 2E)`` temporaries
    per gradient evaluation: the concatenated ``[values, -values]``
    buffer and its permuted copy.  This variant precomputes, for each
    permutation slot, which *edge* it reads (``_edge_of``) and with
    which sign (``+1.0`` for a ``u`` endpoint, ``-1.0`` for a ``v``
    endpoint), so one fancy gather straight from the raw values plus an
    in-place sign multiply produces the identical ordered buffer with a
    single temporary — the memory-traffic win that matters in the
    >10k-gate regime :func:`build_incidence` gates on.

    Bitwise identity with the dense variant: multiplying by ``±1.0`` is
    exact in IEEE-754 (``x * 1.0 == x`` and ``x * -1.0 == -x`` bit for
    bit), so the per-slot summands — and therefore the segment sums,
    which run over the same order with the same starts — are identical.
    """

    __slots__ = ("_edge_of", "_signs")

    variant = "sparse"

    def __init__(self, edges, num_gates, backend=None):
        super().__init__(edges, num_gates, backend=backend)
        self._edge_of = None
        self._signs = None

    def _ensure_permutation(self):
        if self._order is not None:
            return
        super()._ensure_permutation()
        in_u = self._order < self.num_edges
        self._edge_of = self.backend.where(in_u, self._order, self._order - self.num_edges)
        self._signs = self.backend.where(in_u, 1.0, -1.0)

    def scatter_signed(self, values):
        """Identical contract (and bits) as the dense variant."""
        backend = self.backend
        xp = backend.xp
        values = backend.asarray(values, dtype=float)
        out = xp.zeros(values.shape[:-1] + (self.num_gates,), dtype=float)
        if self.num_edges == 0:
            return out
        self._ensure_permutation()
        if self._touched.size == 0:
            return out
        gathered = backend.ascontiguousarray(values[..., self._edge_of])
        gathered *= self._signs
        out[..., self._touched] = backend.segment_sum(gathered, self._starts)
        return out


def build_incidence(edges, num_gates, backend=None, sparse=None):
    """The incidence structure for ``edges`` over ``num_gates`` gates.

    ``sparse=None`` (the default) selects the sparse variant
    automatically when ``num_gates`` exceeds
    :data:`SPARSE_INCIDENCE_THRESHOLD`; pass True/False to force a
    variant.  Both variants are bitwise-identical; only memory traffic
    differs.
    """
    if sparse is None:
        sparse = num_gates > SPARSE_INCIDENCE_THRESHOLD
    cls = SparseEdgeIncidence if sparse else EdgeIncidence
    return cls(edges, num_gates, backend=backend)


@dataclass(frozen=True)
class BatchedCostTerms:
    """The four cost terms and weighted totals of a restart batch.

    Every field is an array of shape ``(R,)`` — one entry per restart.
    """

    f1: np.ndarray
    f2: np.ndarray
    f3: np.ndarray
    f4: np.ndarray
    total: np.ndarray

    def term(self, index):
        """Scalar :class:`~repro.core.cost.CostTerms` of one restart."""
        from repro.core.cost import CostTerms  # local import to avoid cycle

        return CostTerms(
            f1=float(self.f1[index]),
            f2=float(self.f2[index]),
            f3=float(self.f3[index]),
            f4=float(self.f4[index]),
            total=float(self.total[index]),
        )


class FusedKernel:
    """One-pass batched evaluation of cost terms and total gradient.

    Validates and precomputes everything that is constant across
    iterations (and across restarts) at construction; per-iteration work
    is purely array arithmetic on the ``(R, G, K)`` assignment stack.
    """

    def __init__(self, num_planes, edges, bias, area, backend=None, sparse=None):
        if num_planes < 1:
            raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
        self.backend = get_backend(backend)
        xp = self.backend.xp
        bias = np.asarray(bias, dtype=float)
        area = np.asarray(area, dtype=float)
        if bias.ndim != 1 or area.shape != bias.shape:
            raise PartitionError(
                f"bias/area must be equal-length 1-D vectors, got {bias.shape} and {area.shape}"
            )
        self.num_planes = int(num_planes)
        self.num_gates = int(bias.shape[0])
        self.bias = xp.ascontiguousarray(self.backend.from_host(bias))
        self.area = xp.ascontiguousarray(self.backend.from_host(area))
        self.incidence = build_incidence(
            edges, self.num_gates, backend=self.backend, sparse=sparse
        )
        self.num_edges = self.incidence.num_edges
        self.coeff = self.backend.from_host(plane_coefficients(self.num_planes))
        # F1/F4 normalizers (zero when degenerate; guarded at use sites).
        self.n1 = self.num_edges * (self.num_planes - 1) ** 4
        self.n4 = self.num_gates * (self.num_planes - 1) ** 2

    # ------------------------------------------------------------------
    def check_w(self, w):
        """Validate an assignment stack; returns it as float ``(R, G, K)``.

        A 2-D ``(G, K)`` input is promoted to a single-restart batch.
        """
        w = self.backend.asarray(w, dtype=float)
        if w.ndim == 2:
            w = w[None]
        if w.ndim != 3 or w.shape[1:] != (self.num_gates, self.num_planes):
            raise PartitionError(
                f"w must have shape (R, {self.num_gates}, {self.num_planes}) "
                f"or ({self.num_gates}, {self.num_planes}), got {w.shape}"
            )
        return self.backend.ascontiguousarray(w)

    # ------------------------------------------------------------------
    def _variance_pieces(self, w, per_gate_weights):
        """Shared F2/F3 (eqs. (5)-(6)) pieces on the batch.

        Returns ``(term, deviation, scale)`` with shapes ``(R,)``,
        ``(R, K)`` and ``(R,)``: the cost term, the per-plane deviations
        ``B_k - Bbar`` and the gradient prefactor ``2 / (K N)``.
        Restarts whose mean per-plane sum is zero (degenerate
        normalizer) get term 0 and scale 0, so their gradient
        contribution vanishes — mirroring the scalar definition.
        """
        # Batched vec-mat product: one identically-sized gemv per restart,
        # bitwise equal to a single-restart ``weights @ w``.
        backend = self.backend
        per_plane = backend.matmul(per_gate_weights, w)  # (R, K)
        mean = per_plane.mean(axis=-1)  # (R,)
        degenerate = mean == 0.0
        safe_mean = backend.where(degenerate, 1.0, mean)
        deviation = per_plane - mean[:, None]
        variance = (deviation * deviation).mean(axis=-1)
        normalizer = (self.num_planes - 1) * safe_mean**2
        term = backend.where(degenerate, 0.0, variance / normalizer)
        scale = backend.where(degenerate, 0.0, 2.0 / (self.num_planes * normalizer))
        return term, deviation, scale

    # ------------------------------------------------------------------
    def cost_and_gradient(self, w, config, want_gradient=True):
        """Evaluate all four cost terms and (optionally) the gradient.

        Parameters
        ----------
        w:
            Assignment stack ``(R, G, K)`` (or ``(G, K)``, treated as
            ``R == 1``).  Assumed already validated/contiguous when it
            comes from the solver loop; :meth:`check_w` is cheap either
            way.
        config:
            :class:`~repro.core.config.PartitionConfig` supplying the
            weights ``c1..c4`` and the F4 gradient flavor.
        want_gradient:
            Skip the gradient work entirely when False (cost-only
            callers such as restart scoring).

        Returns
        -------
        (BatchedCostTerms, gradient):
            ``gradient`` has shape ``(R, G, K)`` or is ``None``.
        """
        w = self.check_w(w)
        num_restarts = w.shape[0]
        num_planes = self.num_planes
        backend = self.backend
        xp = backend.xp
        if OBS.enabled:
            # The hottest call site in the package: keep the disabled
            # path to the single attribute check above.
            OBS.metrics.counter("kernel.evaluations").inc()
            OBS.metrics.counter("kernel.restart_evaluations").inc(num_restarts)
            if not want_gradient:
                OBS.metrics.counter("kernel.cost_only_evaluations").inc()
        zeros_r = xp.zeros(num_restarts)

        if num_planes == 1:
            # A single plane has no inter-plane cost, no imbalance and no
            # relaxed integer constraint; everything is exactly zero.
            terms = BatchedCostTerms(zeros_r, zeros_r, zeros_r, zeros_r, zeros_r.copy())
            return terms, (xp.zeros_like(w) if want_gradient else None)

        # Shared intermediates, computed once per evaluation.
        labels = backend.matmul(w, self.coeff)  # (R, G), batched gemv
        row_mean = w.mean(axis=-1)  # (R, G)

        # --- F1 (eq. (4)) cost ----------------------------------------
        per_gate = None
        if self.num_edges == 0:
            f1 = zeros_r
        else:
            # Advanced indexing may return Fortran-ordered buffers whose
            # last-axis reduction order differs from the 1-D case; force
            # C order to keep the bitwise equivalence contract.
            diff = backend.ascontiguousarray(
                labels[:, self.incidence.u] - labels[:, self.incidence.v]
            )  # (R, E)
            # Pow-free factorization: diff^4 = (diff^2)^2 and
            # diff^3 = (diff^2) * diff — numpy's pow loop calls libm per
            # element, an order of magnitude slower.
            diff_sq = diff * diff
            f1 = (diff_sq * diff_sq).sum(axis=-1) / self.n1
            if want_gradient:
                per_gate = self.incidence.scatter_signed(diff_sq * diff)  # (R, G)

        # --- F2 / F3 (eqs. (5)-(6)) cost ------------------------------
        f2, dev2, scale2 = self._variance_pieces(w, self.bias)
        f3, dev3, scale3 = self._variance_pieces(w, self.area)

        # --- F4 (eq. (9)) cost ----------------------------------------
        # Row variance via E[w^2] - mean^2: one full-size elementwise
        # product instead of an (R, G, K) broadcast-subtract temporary.
        term_sum = (num_planes * row_mean - 1.0) ** 2
        term_var = (w * w).mean(axis=-1) - row_mean * row_mean
        f4 = (term_sum - term_var).sum(axis=-1) / self.n4

        total = config.c1 * f1 + config.c2 * f2 + config.c3 * f3 + config.c4 * f4
        terms = BatchedCostTerms(f1=f1, f2=f2, f3=f3, f4=f4, total=total)
        if not want_gradient:
            return terms, None

        # --- weighted total gradient (eq. (10)) -----------------------
        # Every term's gradient is (a column vector) x (a row vector),
        # except for F4's diagonal ``w`` part, so the weighted sum is a
        # single rank-4 batched gemm plus one diagonal update:
        #
        #   grad = left @ right + cw * w
        #     left[..., 0] = c1 (4/N1) pg_i     right[0] = [1..K]   (F1)
        #     left[..., 1] = b_i                right[1] = c2 (2/(K N2)) dev2
        #     left[..., 2] = a_i                right[2] = c3 (2/(K N3)) dev3
        #     left[..., 3] = a4 rm_i + b4       right[3] = 1        (F4)
        #
        # with the F4 flavor folded into (a4, b4, cw):
        #   paper  (2/N4)[(k + 1/k)(rm - w) + (k - 1)]:
        #          a4 = s(k + 1/k), b4 = s(k - 1),  cw = -a4
        #   exact  (2/N4)[(k rm - 1) + (rm - w)/k]:
        #          a4 = s(k + 1/k), b4 = -s,        cw = -s/k
        # where s = c4 (2/N4).
        k = float(num_planes)
        s4 = config.c4 * (2.0 / self.n4)
        if config.gradient_mode == "paper":
            a4 = s4 * (k + 1.0 / k)
            b4 = s4 * (k - 1.0)
            cw = -a4
        elif config.gradient_mode == "exact":
            a4 = s4 * (k + 1.0 / k)
            b4 = -s4
            cw = -s4 / k
        else:  # pragma: no cover - config validates this
            raise PartitionError(f"unknown gradient mode {config.gradient_mode!r}")

        left = xp.empty((num_restarts, self.num_gates, 4))
        if per_gate is None:
            left[..., 0] = 0.0
        else:
            xp.multiply(per_gate, config.c1 * (4.0 / self.n1), out=left[..., 0])
        left[..., 1] = self.bias
        left[..., 2] = self.area
        left[..., 3] = a4 * row_mean + b4

        right = xp.empty((num_restarts, 4, num_planes))
        right[:, 0, :] = self.coeff
        right[:, 1, :] = config.c2 * scale2[:, None] * dev2
        right[:, 2, :] = config.c3 * scale3[:, None] * dev3
        right[:, 3, :] = 1.0

        # One (G, 4) x (4, K) gemm per restart.
        gradient = backend.matmul(left, right)
        gradient += cw * w
        return terms, gradient
