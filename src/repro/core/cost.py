"""Cost function of the paper (eqs. (4)-(9)).

All four terms operate on the relaxed assignment matrix ``w`` of shape
``(G, K)``:

* ``F1`` (eq. (4)) — quartic inter-plane connection cost over the relaxed
  labels ``l_i``; normalization ``N1 = |E| (K-1)^4``.
* ``F2`` (eq. (5)) — variance of per-plane bias current ``B_k = b @ w``;
  normalization ``N2 = (K-1) * Bbar^2``.
* ``F3`` (eq. (6)) — variance of per-plane area, same shape as F2.
* ``F4`` (eq. (9)) — relaxed replacement of the integer constraints:
  ``sum_i [(K*wbar_i - 1)^2 - (1/K) sum_k (w_ik - wbar_i)^2]``.
  Eq. (9) defines ``N4 = G (K-1)^2`` but omits it from the printed F4
  expression while the gradient (eq. (10)) includes ``1/N4``; we include
  ``1/N4`` in the cost so cost and gradient are consistent (documented
  deviation, see DESIGN.md).

Degenerate normalizations are handled explicitly: for ``K == 1`` all
normalizers vanish and every term is defined as 0 (a single plane has no
inter-plane cost and no imbalance); a circuit with no connections has
``F1 = 0``; a zero-bias or zero-area circuit has ``F2``/``F3`` = 0.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import labels_from_assignment
from repro.utils.errors import PartitionError


@dataclass(frozen=True)
class CostTerms:
    """The four cost terms plus their weighted total."""

    f1: float
    f2: float
    f3: float
    f4: float
    total: float

    def as_dict(self):
        return {"f1": self.f1, "f2": self.f2, "f3": self.f3, "f4": self.f4, "total": self.total}


def _check_inputs(w, edges, bias, area):
    w = np.asarray(w, dtype=float)
    if w.ndim != 2:
        raise PartitionError(f"w must be (G, K), got shape {w.shape}")
    num_gates = w.shape[0]
    edges = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= num_gates):
        raise PartitionError("edge endpoints out of range")
    bias = np.asarray(bias, dtype=float)
    area = np.asarray(area, dtype=float)
    if bias.shape != (num_gates,) or area.shape != (num_gates,):
        raise PartitionError(
            f"bias/area must have shape ({num_gates},), got {bias.shape} and {area.shape}"
        )
    return w, edges, bias, area


def interconnection_cost(w, edges):
    """F1 of eq. (4): normalized quartic label-distance over connections."""
    w = np.asarray(w, dtype=float)
    edges = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
    num_planes = w.shape[1]
    if edges.shape[0] == 0 or num_planes == 1:
        return 0.0
    labels = labels_from_assignment(w)
    diff = labels[edges[:, 0]] - labels[edges[:, 1]]
    # Explicit squares instead of ``diff**4``: numpy's pow loop calls
    # libm per element, an order of magnitude slower.
    diff_sq = diff * diff
    n1 = edges.shape[0] * (num_planes - 1) ** 4
    return float(np.sum(diff_sq * diff_sq) / n1)


def _variance_cost(w, weights_per_gate):
    """Shared implementation of F2 (bias) and F3 (area)."""
    num_planes = w.shape[1]
    if num_planes == 1:
        return 0.0
    per_plane = weights_per_gate @ w
    mean = per_plane.mean()
    if mean == 0.0:
        return 0.0
    variance = np.mean((per_plane - mean) ** 2)
    normalizer = (num_planes - 1) * mean**2
    return float(variance / normalizer)


def bias_cost(w, bias):
    """F2 of eq. (5): normalized variance of per-plane bias current."""
    return _variance_cost(np.asarray(w, dtype=float), np.asarray(bias, dtype=float))


def area_cost(w, area):
    """F3 of eq. (6): normalized variance of per-plane area."""
    return _variance_cost(np.asarray(w, dtype=float), np.asarray(area, dtype=float))


def constraint_cost(w):
    """F4 of eq. (9) including the ``1/N4`` normalization.

    First term pulls every row sum toward 1; second (negative-variance)
    term pushes each row toward a one-hot vector.
    """
    w = np.asarray(w, dtype=float)
    num_gates, num_planes = w.shape
    if num_planes == 1:
        return 0.0
    row_mean = w.mean(axis=1)
    term_sum = (num_planes * row_mean - 1.0) ** 2
    term_var = np.mean((w - row_mean[:, None]) ** 2, axis=1)
    n4 = num_gates * (num_planes - 1) ** 2
    return float(np.sum(term_sum - term_var) / n4)


def cost_terms(w, edges, bias, area, config):
    """Evaluate all four terms and the weighted total (eq. (8)).

    Delegates to :class:`repro.core.kernel.FusedKernel` with a
    single-restart batch, so the sequential ("loop") solver engine runs
    bitwise the same arithmetic as the batched engine — the per-term
    functions above stay as the readable reference implementations
    (equal to the kernel within floating-point reassociation).
    """
    from repro.core.kernel import FusedKernel  # local import to avoid cycle

    w, edges, bias, area = _check_inputs(w, edges, bias, area)
    kernel = FusedKernel(w.shape[1], edges, bias, area)
    terms, _ = kernel.cost_and_gradient(w, config, want_gradient=False)
    return terms.term(0)


def total_cost(w, edges, bias, area, config):
    """The scalar objective ``F`` of eq. (8)."""
    return cost_terms(w, edges, bias, area, config).total


def integer_cost(labels, num_planes, edges, bias, area, config):
    """Cost of a *hard* assignment: ``c1 F1 + c2 F2 + c3 F3`` on one-hot rows.

    F4 vanishes on any feasible integer assignment, so it is excluded;
    this is the score used to compare restarts and baselines.
    """
    from repro.core.assignment import one_hot  # local import to avoid cycle at module load

    w = one_hot(labels, num_planes)
    w, edges, bias, area = _check_inputs(w, edges, bias, area)
    return float(
        config.c1 * interconnection_cost(w, edges)
        + config.c2 * bias_cost(w, bias)
        + config.c3 * area_cost(w, area)
    )
