"""Analytic gradients of the cost terms (eq. (10) of the paper).

Two flavors are provided (selected by ``PartitionConfig.gradient_mode``):

* ``"paper"`` — the expressions printed in eq. (10), verbatim.  For F1,
  F2 and F3 these coincide with the true derivatives of eqs. (4)-(6)
  (treating the normalizers as constants); for F4 the printed expression
  ``(2/N4) [(K + 1/K)(wbar_i - w_ik) + K - 1]`` differs from the exact
  derivative of eq. (9).
* ``"exact"`` — identical for F1-F3, but F4 uses the re-derived gradient
  ``(2/N4) [(K wbar_i - 1) + (1/K)(wbar_i - w_ik)]``.

All functions are fully vectorized over the ``(G, K)`` assignment matrix.
"""

import numpy as np

from repro.core.assignment import labels_from_assignment, plane_coefficients
from repro.utils.errors import PartitionError


def grad_interconnection(w, edges):
    """``dF1/dw[i,k]`` (eq. (10), first line).

    With ``l_i = sum_k k w[i,k]`` the chain rule gives

    ``dF1/dw[i,k] = (4 k / N1) * sum over edges incident to i of
    (l_i - l_other)^3``

    which is exactly the paper's split into outgoing-minus-incoming
    signed cubes.
    """
    from repro.core.kernel import EdgeIncidence  # local import to avoid cycle

    w = np.asarray(w, dtype=float)
    edges = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
    num_gates, num_planes = w.shape
    grad = np.zeros_like(w)
    if edges.shape[0] == 0 or num_planes == 1:
        return grad
    labels = labels_from_assignment(w)
    diff = labels[edges[:, 0]] - labels[edges[:, 1]]
    diff_cubed = diff * diff * diff
    # Same CSR-style segment-sum (and summation order) the fused kernel
    # precomputes; built on the fly here because this standalone entry
    # point has no state to cache it in.
    per_gate = EdgeIncidence(edges, num_gates).scatter_signed(diff_cubed)
    n1 = edges.shape[0] * (num_planes - 1) ** 4
    coeff = plane_coefficients(num_planes)
    return (4.0 / n1) * per_gate[:, None] * coeff[None, :]


def _grad_variance(w, weights_per_gate):
    """Shared gradient of the F2/F3 variance terms.

    ``dF/dw[i,k] = (2 b_i / (K N)) (B_k - Bbar)`` — the paper's second
    and third lines of eq. (10); exact because the mean-shift terms
    cancel (sum of deviations is zero).
    """
    num_planes = w.shape[1]
    if num_planes == 1:
        return np.zeros_like(w)
    per_plane = weights_per_gate @ w
    mean = per_plane.mean()
    if mean == 0.0:
        return np.zeros_like(w)
    normalizer = (num_planes - 1) * mean**2
    deviation = per_plane - mean
    return (2.0 / (num_planes * normalizer)) * np.outer(weights_per_gate, deviation)


def grad_bias(w, bias):
    """``dF2/dw[i,k]`` (eq. (10), second line)."""
    return _grad_variance(np.asarray(w, dtype=float), np.asarray(bias, dtype=float))


def grad_area(w, area):
    """``dF3/dw[i,k]`` (eq. (10), third line)."""
    return _grad_variance(np.asarray(w, dtype=float), np.asarray(area, dtype=float))


def grad_constraint_paper(w):
    """``dF4/dw[i,k]`` exactly as printed in eq. (10), fourth line:

    ``(2/N4) [(K + 1/K)(wbar_i - w[i,k]) + K - 1]``.
    """
    w = np.asarray(w, dtype=float)
    num_gates, num_planes = w.shape
    if num_planes == 1:
        return np.zeros_like(w)
    row_mean = w.mean(axis=1, keepdims=True)
    n4 = num_gates * (num_planes - 1) ** 2
    k = float(num_planes)
    return (2.0 / n4) * ((k + 1.0 / k) * (row_mean - w) + (k - 1.0))


def grad_constraint_exact(w):
    """Exact derivative of the F4 of eq. (9) (with ``1/N4``):

    ``(2/N4) [(K wbar_i - 1) + (1/K)(wbar_i - w[i,k])]``.
    """
    w = np.asarray(w, dtype=float)
    num_gates, num_planes = w.shape
    if num_planes == 1:
        return np.zeros_like(w)
    row_mean = w.mean(axis=1, keepdims=True)
    n4 = num_gates * (num_planes - 1) ** 2
    k = float(num_planes)
    return (2.0 / n4) * ((k * row_mean - 1.0) + (row_mean - w) / k)


def cost_gradient(w, edges, bias, area, config):
    """Weighted total gradient ``sum_j c_j dFj/dw`` (Algorithm 1, line 18).

    Delegates to :class:`repro.core.kernel.FusedKernel` with a
    single-restart batch, so the sequential ("loop") solver engine runs
    bitwise the same arithmetic as the batched engine — the per-term
    ``grad_*`` functions above stay as the readable reference
    implementations (equal to the kernel within floating-point
    reassociation).
    """
    from repro.core.kernel import FusedKernel  # local import to avoid cycle

    w = np.asarray(w, dtype=float)
    if w.ndim != 2:
        raise PartitionError(f"w must be (G, K), got shape {w.shape}")
    kernel = FusedKernel(w.shape[1], edges, bias, area)
    _, gradient = kernel.cost_and_gradient(w, config)
    return gradient[0]
