"""Quasi-Newton alternative to Algorithm 1 (extension, not in the paper).

Section V of the paper weighs plain gradient descent against
second-order methods: "Advanced algorithms such as the Newton method
[...] require the calculation of the Hessian matrix, which is
computationally expensive."  L-BFGS sits exactly between the two — it
approximates curvature from gradient history at first-order cost — and
SciPy's ``L-BFGS-B`` natively handles the box constraint
``w[i,k] in [0, 1]`` that Algorithm 1 enforces by clipping.

:func:`minimize_assignment_lbfgs` mirrors the interface of
:func:`repro.core.optimizer.minimize_assignment` so the partitioner and
the ablation bench can swap solvers.  The ``exact`` gradient flavor is
forced: a quasi-Newton line search needs the gradient to actually be
the derivative of the objective, which eq. (10)'s printed F4 gradient
is not (see DESIGN.md).
"""

import numpy as np

from repro.core.assignment import random_assignment
from repro.core.cost import cost_terms
from repro.core.gradients import cost_gradient
from repro.core.optimizer import GradientDescentTrace
from repro.utils.errors import PartitionError
from repro.utils.rng import make_rng


def minimize_assignment_lbfgs(num_planes, edges, bias, area, config, rng=None, w0=None):
    """Minimize eq. (8) with L-BFGS-B; returns a
    :class:`~repro.core.optimizer.GradientDescentTrace` (same contract
    as the paper's solver, ``iterations`` counting L-BFGS iterations).
    """
    from scipy.optimize import minimize  # deferred: scipy optional at import time

    bias = np.asarray(bias, dtype=float)
    area = np.asarray(area, dtype=float)
    num_gates = bias.shape[0]
    if num_planes < 1:
        raise PartitionError(f"num_planes must be >= 1, got {num_planes}")
    if num_planes > num_gates:
        raise PartitionError(
            f"cannot split {num_gates} gates into {num_planes} planes"
        )
    exact_config = config.with_(gradient_mode="exact")

    if w0 is None:
        w0 = random_assignment(num_gates, num_planes, rng=make_rng(rng))
    else:
        w0 = np.array(w0, dtype=float)
        if w0.shape != (num_gates, num_planes):
            raise PartitionError(f"w0 must have shape ({num_gates}, {num_planes})")

    shape = (num_gates, num_planes)
    trace = GradientDescentTrace(w=w0)

    def objective(flat):
        w = flat.reshape(shape)
        terms = cost_terms(w, edges, bias, area, exact_config)
        gradient = cost_gradient(w, edges, bias, area, exact_config)
        return terms.total, gradient.ravel()

    def record(flat):
        w = flat.reshape(shape)
        trace.cost_history.append(
            cost_terms(w, edges, bias, area, exact_config).total
        )

    record(w0.ravel())
    outcome = minimize(
        objective,
        w0.ravel(),
        method="L-BFGS-B",
        jac=True,
        bounds=[(0.0, 1.0)] * (num_gates * num_planes),
        callback=record,
        options={
            "maxiter": config.max_iterations,
            # map the paper's relative-change margin onto L-BFGS's
            # machine-epsilon-scaled ftol
            "ftol": config.margin * 1e-3,
        },
    )
    trace.w = outcome.x.reshape(shape)
    trace.converged = bool(outcome.success)
    trace.iterations = int(outcome.nit)
    trace.final_terms = cost_terms(trace.w, edges, bias, area, exact_config)
    if not trace.cost_history or trace.cost_history[-1] != trace.final_terms.total:
        trace.cost_history.append(trace.final_terms.total)
    return trace


def partition_lbfgs(netlist, num_planes, config=None, seed=None):
    """Partition with the L-BFGS-B solver (same restart/rounding wrapper
    as :func:`repro.core.partitioner.partition`)."""
    from repro.core.assignment import round_assignment
    from repro.core.config import PartitionConfig
    from repro.core.cost import integer_cost
    from repro.core.partitioner import PartitionResult, _repair_empty_planes
    from repro.utils.rng import spawn_rngs

    if config is None:
        config = PartitionConfig()
    if num_planes == 1:
        labels = np.zeros(netlist.num_gates, dtype=np.intp)
        return PartitionResult(netlist=netlist, num_planes=1, labels=labels, config=config)

    edges = netlist.edge_array()
    bias = netlist.bias_vector_ma()
    area = netlist.area_vector_um2()
    streams = spawn_rngs(make_rng(config.seed if seed is None else seed), config.restarts)

    best, best_cost, best_labels = None, np.inf, None
    restart_costs = []
    for stream in streams:
        trace = minimize_assignment_lbfgs(
            num_planes, edges, bias, area, config, rng=stream
        )
        labels = round_assignment(trace.w)
        cost = integer_cost(labels, num_planes, edges, bias, area, config)
        restart_costs.append(cost)
        if cost < best_cost:
            best, best_cost, best_labels = trace, cost, labels

    repaired = 0
    if config.ensure_nonempty:
        best_labels, repaired = _repair_empty_planes(best_labels, num_planes, netlist)
    return PartitionResult(
        netlist=netlist,
        num_planes=num_planes,
        labels=best_labels,
        config=config,
        trace=best,
        restart_costs=restart_costs,
        repaired_gates=repaired,
    )
