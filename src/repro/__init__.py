"""repro — Ground Plane Partitioning for Current Recycling of Superconducting Circuits.

Reproduction of Katam, Zhang & Pedram (DATE 2020).  The package partitions
an SFQ gate-level netlist into K serially-biased ground planes by gradient
descent over a relaxed assignment matrix, and provides every substrate the
paper depends on: an SFQ cell library and netlist model, DEF/LEF/Verilog
parsers, an SFQ synthesis flow used to reconstruct the paper's benchmark
suite, baseline partitioners, and a current-recycling planner.

Quickstart::

    from repro import build_circuit, partition, evaluate_partition

    netlist = build_circuit("KSA4")            # reconstructed benchmark
    result = partition(netlist, num_planes=5)  # Algorithm 1 + restarts
    report = evaluate_partition(result)        # Table I columns
    print(report.as_dict())
"""

from repro.core import (
    PartitionConfig,
    PartitionResult,
    partition,
    plan_bias_limited,
    BiasLimitedPlan,
    refine_greedy,
)
from repro.metrics import PartitionReport, evaluate_partition
from repro.netlist import Netlist, CellLibrary, default_library

__version__ = "1.0.0"

__all__ = [
    "PartitionConfig",
    "PartitionResult",
    "partition",
    "plan_bias_limited",
    "BiasLimitedPlan",
    "refine_greedy",
    "PartitionReport",
    "evaluate_partition",
    "Netlist",
    "CellLibrary",
    "default_library",
    "build_circuit",
    "benchmark_suite",
    "__version__",
]


def build_circuit(name, **kwargs):
    """Build one reconstructed benchmark circuit by its paper name.

    Thin lazy wrapper around :func:`repro.circuits.suite.build_circuit`
    (imported on first use so that ``import repro`` stays cheap).
    """
    from repro.circuits.suite import build_circuit as _build

    return _build(name, **kwargs)


def benchmark_suite():
    """Names of all Table I circuits, in table order."""
    from repro.circuits.suite import SUITE_NAMES

    return list(SUITE_NAMES)
