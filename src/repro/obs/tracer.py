"""Hierarchical span timer.

A *span* is a named, timed region of code opened with
``trace.span("solve")`` as a context manager.  Spans nest: a span opened
while another is active becomes its child, and its *path* is the
slash-joined chain of names from the root (``"partition/solve"``).  The
tracer keeps two views of the completed spans:

* an **aggregate** per path — call count, total/min/max wall time and
  the attributes of the most recent call — rendered by
  :meth:`Tracer.render_table`;
* an ordered **event list** (bounded, see ``max_events``) for JSONL
  export, one record per completed span.

Overhead contract: when the tracer is disabled (the default),
:meth:`Tracer.span` returns a shared no-op context manager after a
single attribute check — no allocation, no clock read.  Hot loops may
therefore be instrumented unconditionally; see
``tests/test_obs_overhead.py`` for the enforced <2 % budget.

The tracer is deliberately dependency-free (standard library only) and
single-threaded: the span stack is one plain list.  Instrument
thread-pool workers with their own ``Tracer`` instance and
:meth:`merge` the results if that ever becomes necessary.

Trace context (:mod:`repro.obs.context`): a tracer may carry a
:class:`~repro.obs.context.TraceContext` in :attr:`Tracer.context`.
While one is set, every completed span event additionally records a
``ctx`` dict (``trace``/``span``/``parent``/``request`` ids) plus a
``start_unix`` wall-clock stamp, and entering a span derives a child
context (restored on exit) so nested spans link into one tree that
survives process boundaries.  With no context set — the default —
events record exactly as before and the per-span overhead is one
``None`` check.
"""

import time


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One live span; records itself into the tracer on exit."""

    __slots__ = ("tracer", "name", "attrs", "path", "start", "duration_s",
                 "ctx", "start_unix", "_saved_ctx")

    def __init__(self, tracer, name, attrs, ctx=None):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = None
        self.start = None
        self.duration_s = None
        self.ctx = ctx
        self.start_unix = None
        self._saved_ctx = None

    def set(self, **attrs):
        """Attach (or update) attributes on the live span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        stack = self.tracer._stack
        parent = stack[-1] if stack else None
        self.path = f"{parent.path}/{self.name}" if parent is not None else self.name
        stack.append(self)
        self._saved_ctx = self.tracer.context
        if self._saved_ctx is not None:
            if self.ctx is None:
                self.ctx = self._saved_ctx.child()
            self.tracer.context = self.ctx
        elif self.ctx is not None:
            self.tracer.context = self.ctx
        self.start_unix = time.time()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration_s = time.perf_counter() - self.start
        if self.ctx is not None:
            self.tracer.context = self._saved_ctx
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit; keep the stack sane
            while stack and stack[-1] is not self:
                stack.pop()
            if stack:
                stack.pop()
        self.tracer._record(self, failed=exc_type is not None)
        return False


class SpanAggregate:
    """Accumulated statistics of every completed span sharing a path."""

    __slots__ = ("path", "count", "total_s", "min_s", "max_s", "failures", "attrs")

    def __init__(self, path):
        self.path = path
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.failures = 0
        self.attrs = {}

    def add(self, duration_s, attrs, failed):
        self.count += 1
        self.total_s += duration_s
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)
        if failed:
            self.failures += 1
        if attrs:
            self.attrs = dict(attrs)

    def as_dict(self):
        return {
            "path": self.path,
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "failures": self.failures,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Span collector; see the module docstring for the model."""

    def __init__(self, max_events=100_000):
        self.enabled = False
        self.max_events = int(max_events)
        self._stack = []
        self.aggregates = {}
        self.events = []
        self.events_dropped = 0
        self.context = None  # optional repro.obs.context.TraceContext
        self._epoch = time.perf_counter()

    # -- capture -------------------------------------------------------
    def span(self, name, ctx=None, **attrs):
        """Open a span; returns :data:`NOOP_SPAN` while disabled.

        ``ctx`` pins the span to an explicit
        :class:`~repro.obs.context.TraceContext` (e.g. one carried over
        a process boundary) instead of deriving a child of the tracer's
        current context.
        """
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs, ctx=ctx)

    def _record(self, span, failed):
        aggregate = self.aggregates.get(span.path)
        if aggregate is None:
            aggregate = self.aggregates[span.path] = SpanAggregate(span.path)
        aggregate.add(span.duration_s, span.attrs, failed)
        if len(self.events) < self.max_events:
            event = {
                "path": span.path,
                "name": span.name,
                "start_s": span.start - self._epoch,
                "duration_s": span.duration_s,
                "attrs": dict(span.attrs),
            }
            if span.ctx is not None:
                event["start_unix"] = span.start_unix
                event["ctx"] = {
                    "trace": span.ctx.trace_id,
                    "span": span.ctx.span_id,
                    "parent": span.ctx.parent_id,
                    "request": span.ctx.request_id,
                }
            self.events.append(event)
        else:
            self.events_dropped += 1

    # -- lifecycle -----------------------------------------------------
    def reset(self):
        """Drop all recorded spans (the enabled flag is untouched)."""
        self._stack = []
        self.aggregates = {}
        self.events = []
        self.events_dropped = 0
        self.context = None
        self._epoch = time.perf_counter()

    def merge(self, other):
        """Fold another tracer's aggregates and events into this one."""
        for path, theirs in other.aggregates.items():
            mine = self.aggregates.get(path)
            if mine is None:
                mine = self.aggregates[path] = SpanAggregate(path)
            mine.count += theirs.count
            mine.total_s += theirs.total_s
            mine.min_s = min(mine.min_s, theirs.min_s)
            mine.max_s = max(mine.max_s, theirs.max_s)
            mine.failures += theirs.failures
            if theirs.attrs:
                mine.attrs = dict(theirs.attrs)
        room = self.max_events - len(self.events)
        self.events.extend(other.events[:room])
        self.events_dropped += other.events_dropped + max(0, len(other.events) - room)
        return self

    def merge_dict(self, aggregates, events=(), events_dropped=0):
        """Fold an :meth:`as_dict`-shaped aggregate mapping (plus raw
        event records) into this tracer.

        The cross-process counterpart of :meth:`merge`: worker tracers
        export plain dicts, the parent folds them in.  Event ``start_s``
        values stay relative to the worker's epoch — aggregate totals
        are the meaningful cross-process quantity.
        """
        for path, theirs in aggregates.items():
            mine = self.aggregates.get(path)
            if mine is None:
                mine = self.aggregates[path] = SpanAggregate(path)
            count = int(theirs.get("count", 0))
            mine.count += count
            mine.total_s += float(theirs.get("total_s", 0.0))
            if count:
                mine.min_s = min(mine.min_s, float(theirs.get("min_s", float("inf"))))
            mine.max_s = max(mine.max_s, float(theirs.get("max_s", 0.0)))
            mine.failures += int(theirs.get("failures", 0))
            if theirs.get("attrs"):
                mine.attrs = dict(theirs["attrs"])
        events = list(events)
        room = self.max_events - len(self.events)
        self.events.extend(events[:room])
        self.events_dropped += int(events_dropped) + max(0, len(events) - room)
        return self

    # -- export --------------------------------------------------------
    def as_dict(self):
        return {path: agg.as_dict() for path, agg in sorted(self.aggregates.items())}

    def render_table(self, title="span timings"):
        """Human-readable table of aggregated spans, sorted by path.

        Child spans are indented under their parents so the hierarchy
        reads at a glance.
        """
        if not self.aggregates:
            return f"{title}: <no spans recorded>"
        rows = []
        for path in sorted(self.aggregates):
            agg = self.aggregates[path]
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            mean_ms = agg.total_s / agg.count * 1e3
            rows.append(
                (label, agg.count, agg.total_s * 1e3, mean_ms, agg.max_s * 1e3)
            )
        headers = ("span", "calls", "total ms", "mean ms", "max ms")
        body = [
            (label, str(count), f"{total:.2f}", f"{mean:.3f}", f"{peak:.3f}")
            for label, count, total, mean, peak in rows
        ]
        widths = [
            max(len(headers[i]), max(len(row[i]) for row in body)) for i in range(5)
        ]
        lines = [title]
        lines.append(
            "  ".join(
                headers[i].ljust(widths[i]) if i == 0 else headers[i].rjust(widths[i])
                for i in range(5)
            )
        )
        lines.append("  ".join("-" * widths[i] for i in range(5)))
        for row in body:
            lines.append(
                "  ".join(
                    row[i].ljust(widths[i]) if i == 0 else row[i].rjust(widths[i])
                    for i in range(5)
                )
            )
        if self.events_dropped:
            lines.append(f"({self.events_dropped} span events dropped beyond max_events)")
        return "\n".join(lines)
