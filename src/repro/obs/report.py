"""Per-request waterfall rendering of an exported JSONL trace.

``repro-gpp obs report TRACE.jsonl`` feeds a parsed trace
(:func:`repro.obs.export.read_trace_jsonl`) through this module: span
events that carry a ``ctx`` block (see :mod:`repro.obs.context`) are
linked into trees by span/parent id, grouped by request id, and each
request is rendered as an indented waterfall — one line per span, its
bar positioned on a shared wall-clock axis (``start_unix``), children
under parents.

Spans recorded without context (plain ``OBS`` capture) have no tree
identity and are simply not part of any waterfall; the CLI prints how
many were skipped so a contextless trace does not silently render
empty.
"""


def span_trees(spans):
    """Group context-carrying span events into per-request trees.

    Returns ``(requests, skipped)`` where ``requests`` maps request id
    to a list of root nodes (children nested under ``"children"``,
    sorted by start time) and ``skipped`` counts spans without a ctx
    block.  A span whose parent id is absent from the file is a root —
    cross-process traces legitimately start mid-tree when only one
    side was exported.
    """
    skipped = 0
    nodes = {}       # span id -> node
    by_request = {}  # request id -> [span ids]
    for event in spans:
        ctx = event.get("ctx")
        if not isinstance(ctx, dict) or not ctx.get("span"):
            skipped += 1
            continue
        node = dict(event)
        node["children"] = []
        # Duplicate span ids (a retried attempt re-deriving the same
        # position) keep the first occurrence; later ones nest as extra
        # children so nothing is lost.
        if ctx["span"] in nodes:
            nodes[ctx["span"]]["children"].append(node)
            continue
        nodes[ctx["span"]] = node
        by_request.setdefault(ctx.get("request"), []).append(ctx["span"])

    def start_key(node):
        return (node.get("start_unix") or 0.0, node.get("path") or "")

    requests = {}
    for request_id, span_ids in by_request.items():
        roots = []
        for span_id in span_ids:
            node = nodes[span_id]
            parent = nodes.get(node["ctx"].get("parent"))
            if parent is not None and parent is not node:
                parent["children"].append(node)
            else:
                roots.append(node)
        for span_id in span_ids:
            nodes[span_id]["children"].sort(key=start_key)
        roots.sort(key=start_key)
        requests[request_id] = roots
    return requests, skipped


def _walk(roots):
    stack = [(node, 0) for node in reversed(roots)]
    while stack:
        node, depth = stack.pop()
        yield node, depth
        for child in reversed(node["children"]):
            stack.append((child, depth + 1))


def render_waterfall(parsed, request=None, width=48):
    """Render waterfalls from a :func:`read_trace_jsonl` result.

    ``request`` restricts output to one request id; ``width`` is the
    character width of the time axis.  Returns the rendered text (one
    block per request, separated by blank lines).
    """
    requests, skipped = span_trees(parsed.get("spans", ()))
    if request is not None:
        if request not in requests:
            known = ", ".join(sorted(str(r) for r in requests)) or "<none>"
            return f"no spans for request {request!r} (known requests: {known})"
        requests = {request: requests[request]}
    if not requests:
        return (
            f"no context-carrying spans in this trace "
            f"({skipped} plain spans skipped); capture with trace context "
            "enabled (REPRO_TRACE_CONTEXT) to get a waterfall"
        )

    blocks = []
    for request_id in sorted(requests, key=str):
        flat = list(_walk(requests[request_id]))
        starts = [n.get("start_unix") for n, _ in flat if n.get("start_unix")]
        if not starts:
            continue
        t0 = min(starts)
        t1 = max(
            (n.get("start_unix") or t0) + (n.get("duration_s") or 0.0)
            for n, _ in flat
        )
        window = max(t1 - t0, 1e-9)
        label_width = max(
            len("  " * depth + (n.get("name") or "?")) for n, depth in flat
        )
        lines = [
            f"request {request_id} — {len(flat)} spans, "
            f"{window * 1e3:.2f} ms wall"
        ]
        for node, depth in flat:
            start = node.get("start_unix") or t0
            duration = node.get("duration_s") or 0.0
            left = int((start - t0) / window * width)
            bar = max(1, int(round(duration / window * width)))
            bar = min(bar, width - min(left, width - 1))
            label = ("  " * depth + (node.get("name") or "?")).ljust(label_width)
            axis = " " * min(left, width - 1) + "█" * bar
            lines.append(
                f"  {label}  |{axis.ljust(width)}| {duration * 1e3:9.3f} ms"
            )
        if skipped:
            lines.append(f"  ({skipped} spans without trace context not shown)")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
