"""Structured job-lifecycle event log (JSONL, schema-versioned).

Spans answer "how long did it take"; the event log answers "what
happened to this job, in order": ``queued`` → ``leased`` → ``solving``
→ ``solved`` → ``stored`` → ``done`` (or ``failed`` / ``cancelled`` /
``rejected``), each record stamped with the wall clock, the job id and
— when trace context is active — the trace/request/span ids that tie
the event to the span tree.

:class:`EventLog` keeps a bounded in-memory ring (what the service's
``GET /v1/jobs/<id>/events`` route serves) and optionally appends each
record as one JSON line to a file.  Appends are atomic at the line
level exactly like :mod:`repro.harness.checkpoint`: a single
``write()`` of one ``\\n``-terminated line followed by a flush, so
concurrent writers interleave whole records and a reader never sees a
torn line.  :func:`read_events` skips corrupt lines (counting them)
instead of failing, mirroring the checkpoint loader.

``REPRO_EVENTS`` semantics (see :func:`EventLog.from_env`):

* unset — CLI/runner emission disabled, service keeps its in-memory
  log (the service constructs its log explicitly; events are cheap and
  the route should work out of the box);
* ``0/off/false/no`` — disabled everywhere;
* ``1/true/yes/on`` — in-memory capture enabled;
* anything else — treated as an output path: capture enabled **and**
  every record is appended to that file.

Disabled-path contract: :meth:`EventLog.emit` on a disabled log is one
attribute check and a return — cheap enough for unconditional call
sites (the <2 % budget of ``tests/test_obs_overhead.py`` covers it).
"""

import json
import os
import threading
import time
from collections import deque

from repro import envcfg

#: Version of the event-record shape below; bump on breaking changes.
EVENT_SCHEMA_VERSION = 1

#: Keys every event record carries (extra per-event attributes ride
#: alongside; reserved keys cannot be overridden by attributes).
RESERVED_KEYS = ("v", "ts", "event", "job_id", "trace", "request", "span")

#: Default in-memory ring size; beyond it the oldest records drop.
DEFAULT_MAX_EVENTS = 10_000

_DISABLED = set(envcfg.DISABLED_VALUES)
_TRUTHY = set(envcfg.TRUTHY_VALUES)


def env_events_path(environ=None):
    """The output path carried by ``REPRO_EVENTS``, or ``None``."""
    value = envcfg.raw("REPRO_EVENTS", environ)
    if not value or value.lower() in _DISABLED or value.lower() in _TRUTHY:
        return None
    return value


def events_disabled(environ=None):
    """True when ``REPRO_EVENTS`` explicitly turns event capture off."""
    return envcfg.raw("REPRO_EVENTS", environ).lower() in _DISABLED


class EventLog:
    """Thread-safe bounded event ring with optional JSONL persistence."""

    def __init__(self, path=None, enabled=True, max_events=DEFAULT_MAX_EVENTS):
        self.enabled = bool(enabled)
        self.path = path
        self.max_events = int(max_events)
        self.events = deque(maxlen=self.max_events)
        self.emitted = 0
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls, environ=None, max_events=DEFAULT_MAX_EVENTS):
        """The CLI/runner policy: off unless ``REPRO_EVENTS`` opts in."""
        value = envcfg.raw("REPRO_EVENTS", environ)
        enabled = bool(value) and value.lower() not in _DISABLED
        return cls(path=env_events_path(environ), enabled=enabled,
                   max_events=max_events)

    @classmethod
    def service_default(cls, environ=None, max_events=DEFAULT_MAX_EVENTS):
        """The service policy: on unless ``REPRO_EVENTS`` opts out."""
        return cls(path=env_events_path(environ),
                   enabled=not events_disabled(environ),
                   max_events=max_events)

    def emit(self, event, job_id=None, ctx=None, **attrs):
        """Record one event; a no-op (one attribute check) when disabled.

        ``ctx`` is an optional :class:`~repro.obs.context.TraceContext`
        whose trace/request/span ids are stamped onto the record.
        Returns the record dict, or ``None`` when disabled.
        """
        if not self.enabled:
            return None
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "ts": time.time(),
            "event": str(event),
        }
        if job_id is not None:
            record["job_id"] = job_id
        if ctx is not None:
            record["trace"] = ctx.trace_id
            record["request"] = ctx.request_id
            record["span"] = ctx.span_id
        for key, value in attrs.items():
            if key not in RESERVED_KEYS:
                record[key] = value
        line = None
        if self.path is not None:
            # Serialize outside the lock; one write + flush inside it
            # (the checkpoint.py atomic line-append idiom).
            line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self.events.append(record)
            self.emitted += 1
            if line is not None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                with open(self.path, "a") as handle:
                    handle.write(line)
                    handle.flush()
        return record

    def flush(self):
        """Force the path-backed sink to stable storage (fsync).

        Per-record appends already ``flush()`` the stream; this
        additionally fsyncs the file so a process exiting right after
        (the graceful-shutdown path of ``repro-gpp serve``) cannot lose
        the tail to the OS page cache.  A no-op for in-memory logs.
        """
        if not self.enabled or self.path is None:
            return
        with self._lock:
            try:
                with open(self.path, "a") as handle:
                    handle.flush()
                    os.fsync(handle.fileno())
            except OSError:
                pass  # best-effort: shutdown must not fail on a sink error

    def for_job(self, job_id):
        """Events of one job, oldest first (from the in-memory ring)."""
        with self._lock:
            return [dict(e) for e in self.events if e.get("job_id") == job_id]

    def snapshot(self):
        """Every in-memory event, oldest first."""
        with self._lock:
            return [dict(e) for e in self.events]

    def __len__(self):
        with self._lock:
            return len(self.events)


def read_events(path):
    """Parse a JSONL event file; returns ``(events, corrupt_lines)``.

    Corrupt lines (torn writes, truncation) are skipped and counted,
    never fatal — mirroring the checkpoint loader's posture.
    """
    events = []
    corrupt = 0
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return events, corrupt
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            corrupt += 1
            continue
        if not isinstance(record, dict) or "event" not in record:
            corrupt += 1
            continue
        events.append(record)
    return events, corrupt


_DEFAULT = None


def default_events():
    """The process-wide :class:`EventLog` (CLI/runner policy, lazy)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = EventLog.from_env()
    return _DEFAULT


def set_default_events(log):
    """Replace the process-wide log (tests; ``None`` re-resolves lazily)."""
    global _DEFAULT
    _DEFAULT = log
    return log
