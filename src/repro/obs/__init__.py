"""repro.obs — dependency-free observability: spans, metrics, telemetry.

One process-wide :class:`Observability` singleton, :data:`OBS`, bundles

* ``OBS.trace`` — the hierarchical span timer
  (:class:`~repro.obs.tracer.Tracer`);
* ``OBS.metrics`` — the counters/gauges/histograms registry
  (:class:`~repro.obs.metrics.MetricsRegistry`);
* ``OBS.telemetry`` — per-iteration solver records
  (:class:`~repro.obs.telemetry.SolverTelemetry`).

Everything is **off by default** and instrumented call sites are
written so the disabled path costs one attribute check (``if
OBS.enabled:``) or one no-op context manager — see
``tests/test_obs_overhead.py`` for the enforced budget.  Turn capture
on with :func:`enable` / the ``REPRO_TRACE`` environment variable /
the CLI ``--trace`` / ``--profile`` flags, and read results via
``OBS.trace.render_table()``, ``OBS.metrics.as_dict()`` or
:func:`repro.obs.export.write_trace_jsonl`.

``REPRO_TRACE`` semantics (checked at import and again by the CLI so
monkeypatched environments behave):

* unset / ``""`` / ``"0"`` — disabled;
* ``"1"``, ``"true"``, ``"yes"``, ``"on"`` (any case) — capture
  enabled, nothing auto-written;
* anything else — treated as an output path: capture enabled and the
  CLI writes the JSONL trace there on exit.

Typical library use::

    from repro.obs import OBS, enable, disable

    enable()
    result = partition(netlist, 5)
    print(OBS.trace.render_table())
    print(result.trace.telemetry[:3])   # per-iteration F1..F4 records
    disable(reset=True)
"""

import functools
import os
import uuid

from repro import envcfg
from repro.obs.context import TRACE_HEADER, TraceContext, context_enabled
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    default_events,
    read_events,
    set_default_events,
)
from repro.obs.export import read_trace_jsonl, write_telemetry_csv, write_trace_jsonl
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.promtext import lint_exposition, render_exposition, render_metrics
from repro.obs.telemetry import ITERATION_FIELDS, TRACE_SCHEMA_VERSION, SolverTelemetry
from repro.obs.tracer import NOOP_SPAN, Span, Tracer

__all__ = [
    "OBS",
    "Observability",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SolverTelemetry",
    "TRACE_SCHEMA_VERSION",
    "ITERATION_FIELDS",
    "TRACE_HEADER",
    "TraceContext",
    "context_enabled",
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "default_events",
    "set_default_events",
    "read_events",
    "render_metrics",
    "render_exposition",
    "lint_exposition",
    "enable",
    "disable",
    "enabled",
    "reset",
    "snapshot",
    "merge_snapshot",
    "env_trace_path",
    "apply_env",
    "traced",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "write_telemetry_csv",
]

_TRUTHY = set(envcfg.TRUTHY_VALUES)


class Observability:
    """Bundle of tracer + metrics + telemetry with one master switch."""

    __slots__ = ("enabled", "trace", "metrics", "telemetry", "_merged_origins")

    def __init__(self):
        self.enabled = False
        self.trace = Tracer()
        self.metrics = MetricsRegistry()
        self.telemetry = SolverTelemetry()
        self._merged_origins = set()

    def enable(self):
        self.enabled = True
        self.trace.enabled = True
        return self

    def disable(self, reset=False):
        self.enabled = False
        self.trace.enabled = False
        if reset:
            self.reset()
        return self

    def reset(self):
        self.trace.reset()
        self.metrics.reset()
        self.telemetry.reset()
        self._merged_origins = set()
        return self

    # -- cross-process aggregation -------------------------------------
    def snapshot(self, origin=None):
        """Export everything recorded so far as plain JSON-able data.

        ``origin`` uniquely identifies the producing capture window (a
        fresh uuid per call by default); :meth:`merge_snapshot` uses it
        to guarantee each snapshot is folded in exactly once.  Workers
        of the parallel suite runner call this after each job and ship
        the result back over the process boundary (no live instrument
        objects are pickled).
        """
        if origin is None:
            origin = f"{os.getpid()}-{uuid.uuid4().hex}"
        return {
            "origin": origin,
            "metrics": self.metrics.as_dict(),
            "spans": self.trace.as_dict(),
            "events": list(self.trace.events),
            "events_dropped": self.trace.events_dropped,
            "telemetry": {
                "runs": [dict(r) for r in self.telemetry.runs],
                "records": [dict(r) for r in self.telemetry.records],
            },
        }

    def merge_snapshot(self, snap):
        """Fold a :meth:`snapshot` into this process's collectors.

        Returns True when merged, False when the snapshot's origin was
        already merged (so repeated merges never silently double-count).
        Telemetry run ids are re-based onto this process's run counter
        so records from different workers never collide.
        """
        origin = snap.get("origin")
        if origin is not None and origin in self._merged_origins:
            return False
        self.metrics.merge_dict(snap.get("metrics", {}))
        self.trace.merge_dict(
            snap.get("spans", {}),
            events=snap.get("events", ()),
            events_dropped=snap.get("events_dropped", 0),
        )
        telemetry = snap.get("telemetry") or {}
        run_offset = len(self.telemetry.runs)
        for run in telemetry.get("runs", ()):
            run = dict(run)
            run["run"] = run.get("run", 0) + run_offset
            self.telemetry.runs.append(run)
        for record in telemetry.get("records", ()):
            record = dict(record)
            record["run"] = record.get("run", 0) + run_offset
            self.telemetry.records.append(record)
        if origin is not None:
            self._merged_origins.add(origin)
        return True


#: The process-wide observability singleton.
OBS = Observability()


def enable():
    """Turn on span, metric and solver-telemetry capture."""
    return OBS.enable()


def disable(reset=False):
    """Turn capture off; optionally drop everything recorded so far."""
    return OBS.disable(reset=reset)


def enabled():
    return OBS.enabled


def reset():
    return OBS.reset()


def snapshot(origin=None):
    """Export the singleton's recorded state as plain JSON-able data."""
    return OBS.snapshot(origin=origin)


def merge_snapshot(snap):
    """Fold a worker snapshot into the singleton (exactly once per origin)."""
    return OBS.merge_snapshot(snap)


def traced(name, result_attrs=None):
    """Decorator: run the function under a span named ``name``.

    When capture is disabled the wrapper adds one attribute check and a
    plain call — suitable for cool paths (parsers, planners), not for
    per-iteration hot loops (those check ``OBS.enabled`` inline).

    ``result_attrs``, when given, maps the function's return value to a
    dict of span attributes (e.g. ``lambda netlist: {"gates":
    netlist.num_gates}``); it only runs while capture is enabled.  A
    ``<name>.calls`` counter is incremented per traced call.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not OBS.enabled:
                return fn(*args, **kwargs)
            OBS.metrics.counter(f"{name}.calls").inc()
            with OBS.trace.span(name) as span:
                result = fn(*args, **kwargs)
                if result_attrs is not None:
                    span.set(**result_attrs(result))
                return result

        return wrapper

    return decorate


def env_trace_path(environ=None):
    """The output path carried by ``REPRO_TRACE``, or ``None``.

    A bare truthy toggle (``1``/``true``/...) enables capture without
    naming a file, so this returns ``None`` for it.
    """
    value = envcfg.raw("REPRO_TRACE", environ)
    if not value or value == "0" or value.lower() in _TRUTHY:
        return None
    return value


def apply_env(environ=None):
    """Honor ``REPRO_TRACE`` (see the module docstring); returns whether
    capture ended up enabled."""
    value = envcfg.raw("REPRO_TRACE", environ)
    if value and value != "0":
        OBS.enable()
        return True
    return OBS.enabled


apply_env()
