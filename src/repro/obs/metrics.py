"""Process-wide metrics registry: counters, gauges, histograms.

Three instrument kinds, mirroring the usual time-series vocabulary:

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Gauge` — a point-in-time value (``set``); merge keeps the
  most recently written value;
* :class:`Histogram` — distribution summary: count/sum/min/max plus
  cumulative bucket counts over fixed upper bounds.

Instruments are created lazily by name through the registry
(``metrics.counter("kernel.evaluations").inc()``); names are
dot-separated ``subsystem.metric`` strings (see docs/observability.md
for conventions).  The registry exports as a JSON-ready dict
(:meth:`MetricsRegistry.as_dict`), renders a human-readable table
(:meth:`MetricsRegistry.render_table`), and supports :meth:`merge`
(fold another registry in, e.g. from a worker) and :meth:`reset`.

Standard library only; not thread-safe by design (single process,
single thread — the solver's own batching is the concurrency story).
"""

#: Default histogram bounds, in seconds.  Prometheus-style latency
#: ladder spanning sub-millisecond route handlers through multi-second
#: solves: the original solver-iteration bounds (1 ms .. 10 s) lacked
#: resolution below 1 ms (every HTTP status/health route landed in the
#: first bucket) and above 10 s (a slow process-isolated solve was
#: indistinguishable from a hung one).  Call sites with different
#: ranges pass explicit ``buckets=`` to
#: :meth:`MetricsRegistry.histogram` — e.g. the iteration-count
#: histogram of repro/core/partitioner.py.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount
        return self

    def as_dict(self):
        return {"kind": self.kind, "value": self.value}


class Gauge:
    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value
        return self

    def as_dict(self):
        return {"kind": self.kind, "value": self.value}


class Histogram:
    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(self, name, buckets=DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return self
        self.bucket_counts[-1] += 1
        return self

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def as_dict(self):
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.bucket_counts)},
                "+inf": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Name-keyed store of instruments; see the module docstring."""

    def __init__(self):
        self._instruments = {}

    # -- instrument access ---------------------------------------------
    def _get(self, name, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, not {kind}"
            )
        return instrument

    def counter(self, name):
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name):
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        return self._get(name, lambda: Histogram(name, buckets), "histogram")

    def __contains__(self, name):
        return name in self._instruments

    def __len__(self):
        return len(self._instruments)

    # -- lifecycle -----------------------------------------------------
    def reset(self):
        """Drop every instrument."""
        self._instruments = {}

    def merge_dict(self, data):
        """Fold an :meth:`as_dict`-shaped mapping into this registry.

        This is the cross-process path: a worker exports ``as_dict()``
        (plain JSON-able data, no live instrument objects cross the
        process boundary) and the parent folds it in.  Counters add,
        gauges take the incoming value when set, histograms combine
        count/sum/min/max and — when the bucket bounds agree — the
        per-bucket counts; mismatched bounds fold the incoming count
        into this registry's overflow bucket.
        """
        for name, entry in data.items():
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                if entry["value"] is not None:
                    self.gauge(name).set(entry["value"])
            elif kind == "histogram":
                buckets = entry.get("buckets", {})
                bounds = tuple(sorted(float(b) for b in buckets if b != "+inf"))
                mine = self.histogram(name, bounds or DEFAULT_BUCKETS)
                count = int(entry.get("count", 0))
                if not count:
                    continue
                mine.count += count
                mine.sum += float(entry.get("sum", 0.0))
                if entry.get("min") is not None:
                    mine.min = min(mine.min, float(entry["min"]))
                if entry.get("max") is not None:
                    mine.max = max(mine.max, float(entry["max"]))
                if mine.buckets == bounds:
                    for i, bound in enumerate(mine.buckets):
                        mine.bucket_counts[i] += int(buckets.get(str(bound), 0))
                    mine.bucket_counts[-1] += int(buckets.get("+inf", 0))
                else:
                    mine.bucket_counts[-1] += count
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r} in snapshot")
        return self

    def merge(self, other):
        """Fold another registry into this one.

        Counters add, gauges take the other registry's value when it has
        one, histograms combine count/sum/min/max and (when the bucket
        bounds agree) the bucket counts; mismatched bounds fall back to
        this registry's overflow bucket.
        """
        for name, theirs in other._instruments.items():
            if name not in self._instruments:
                if theirs.kind == "counter":
                    self.counter(name).inc(theirs.value)
                elif theirs.kind == "gauge":
                    self.gauge(name).set(theirs.value)
                else:
                    mine = self.histogram(name, theirs.buckets)
                    mine.bucket_counts = list(theirs.bucket_counts)
                    mine.count, mine.sum = theirs.count, theirs.sum
                    mine.min, mine.max = theirs.min, theirs.max
                continue
            mine = self._get(name, lambda: None, theirs.kind)
            if theirs.kind == "counter":
                mine.value += theirs.value
            elif theirs.kind == "gauge":
                if theirs.value is not None:
                    mine.value = theirs.value
            else:
                mine.count += theirs.count
                mine.sum += theirs.sum
                mine.min = min(mine.min, theirs.min)
                mine.max = max(mine.max, theirs.max)
                if mine.buckets == theirs.buckets:
                    for i, c in enumerate(theirs.bucket_counts):
                        mine.bucket_counts[i] += c
                else:
                    mine.bucket_counts[-1] += theirs.count
        return self

    # -- export --------------------------------------------------------
    def as_dict(self):
        return {name: inst.as_dict() for name, inst in sorted(self._instruments.items())}

    def render_table(self, title="metrics"):
        if not self._instruments:
            return f"{title}: <no metrics recorded>"
        rows = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if inst.kind == "histogram":
                value = (
                    f"count={inst.count} mean={inst.mean:.6g} "
                    f"min={inst.min:.6g} max={inst.max:.6g}"
                    if inst.count
                    else "count=0"
                )
            else:
                value = f"{inst.value}"
            rows.append((name, inst.kind, value))
        widths = [max(len(r[i]) for r in rows + [("metric", "kind", "value")]) for i in range(3)]
        lines = [title]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(("metric", "kind", "value")))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(3)))
        return "\n".join(lines)
