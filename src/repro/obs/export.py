"""Trace export/import: JSONL trace files and CSV telemetry dumps.

Trace file format (JSON Lines, schema versioned by
:data:`~repro.obs.telemetry.TRACE_SCHEMA_VERSION`): one JSON object per
line, discriminated by ``"type"``:

``header``
    First line; carries ``schema_version`` and free-form ``meta``.
``run``
    One per solver call (engine, restart count, attributes).
``iteration``
    One per restart per descent iteration; the fields of
    :data:`~repro.obs.telemetry.ITERATION_FIELDS`.
``span``
    One per completed tracer span (path, start, duration, attrs).
``metrics``
    Single snapshot of the metrics registry
    (:meth:`~repro.obs.metrics.MetricsRegistry.as_dict`).

:func:`read_trace_jsonl` inverts :func:`write_trace_jsonl` section by
section, so a write→read round trip is lossless (modulo float
formatting, which ``json`` preserves exactly anyway).
"""

import csv
import json

from repro.obs.telemetry import ITERATION_FIELDS, TRACE_SCHEMA_VERSION


def write_trace_jsonl(path_or_file, tracer=None, metrics=None, telemetry=None, meta=None):
    """Write one JSONL trace file; returns the number of lines written.

    Any of ``tracer`` / ``metrics`` / ``telemetry`` may be ``None`` to
    omit that section; the header line is always written.
    """
    own = isinstance(path_or_file, str)
    handle = open(path_or_file, "w") if own else path_or_file
    lines = 0
    try:
        header = {"type": "header", "schema_version": TRACE_SCHEMA_VERSION}
        if meta:
            header["meta"] = meta
        handle.write(json.dumps(header) + "\n")
        lines += 1
        if telemetry is not None:
            for run in telemetry.runs:
                handle.write(json.dumps({"type": "run", **run}) + "\n")
                lines += 1
            for record in telemetry.records:
                handle.write(json.dumps({"type": "iteration", **record}) + "\n")
                lines += 1
        if tracer is not None:
            for event in tracer.events:
                handle.write(json.dumps({"type": "span", **event}) + "\n")
                lines += 1
        if metrics is not None and len(metrics):
            handle.write(json.dumps({"type": "metrics", "metrics": metrics.as_dict()}) + "\n")
            lines += 1
    finally:
        if own:
            handle.close()
    return lines


def read_trace_jsonl(path_or_file):
    """Parse a trace file back into its sections.

    Returns ``{"header": dict, "runs": [...], "iterations": [...],
    "spans": [...], "metrics": dict}`` (missing sections come back
    empty).  Raises ``ValueError`` on a malformed file or an unknown
    record type, so schema drift fails loudly.
    """
    own = isinstance(path_or_file, str)
    handle = open(path_or_file) if own else path_or_file
    out = {"header": None, "runs": [], "iterations": [], "spans": [], "metrics": {}}
    try:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if line_number == 1:
                if kind != "header":
                    raise ValueError("trace file must start with a header record")
                out["header"] = record
            elif kind == "run":
                out["runs"].append(record)
            elif kind == "iteration":
                out["iterations"].append(record)
            elif kind == "span":
                out["spans"].append(record)
            elif kind == "metrics":
                out["metrics"] = record["metrics"]
            else:
                raise ValueError(f"unknown trace record type {kind!r} on line {line_number}")
    finally:
        if own:
            handle.close()
    if out["header"] is None:
        raise ValueError("empty trace file (missing header)")
    return out


def write_telemetry_csv(path_or_file, telemetry):
    """Dump iteration records as CSV in :data:`ITERATION_FIELDS` order."""
    own = isinstance(path_or_file, str)
    handle = open(path_or_file, "w", newline="") if own else path_or_file
    try:
        writer = csv.writer(handle)
        writer.writerow(ITERATION_FIELDS)
        for record in telemetry.records:
            writer.writerow(["" if record[f] is None else record[f] for f in ITERATION_FIELDS])
    finally:
        if own:
            handle.close()
    return len(telemetry.records) + 1
