"""Trace context: request/trace/span identity that crosses processes.

A :class:`TraceContext` names *where in a request's span tree we are*:

* ``trace_id`` — one id per end-to-end request (32 hex chars);
* ``request_id`` — the human-facing correlation id the service echoes
  back to clients (16 hex chars; distinct from ``trace_id`` so a retry
  of the same logical request can reuse the trace while getting a fresh
  request id, or vice versa);
* ``span_id`` / ``parent_id`` — the current span and its parent (16 hex
  chars each), which is what links recorded span events into one tree.

Propagation is **deterministic**: a child span id is
``sha256(trace_id/span_id/salt/key)[:16]`` (:meth:`TraceContext.child`),
so two processes that independently derive the same child (e.g. a retry
of the same job attempt) agree on its id, and the id never depends on
wall clock or PRNG state.  Cross-worker uniqueness comes from
:meth:`TraceContext.namespaced`: the pool runner salts each worker's
context with ``job<index>/a<attempt>`` before deriving, so two jobs
fanned out under one parent span produce disjoint subtree ids that both
parent back to the same originating span.

Wire forms:

* ``X-Repro-Trace: <trace_id>-<span_id>-<request_id>`` — the HTTP
  header (:meth:`to_header` / :meth:`from_header`; a malformed header
  is *ignored*, never an error — the server then starts a fresh trace);
* :meth:`to_wire` / :meth:`from_wire` — a plain dict that survives
  JSON and pickle, used on :class:`~repro.harness.runner.SuiteJob` to
  carry the context into pool workers.

The ``REPRO_TRACE_CONTEXT`` knob (default **enabled**; set to
``0/off/false/no`` to disable) governs whether the service and CLI
attach contexts at all — with it off, spans record exactly as before
this module existed.
"""

import hashlib
import re
import uuid

from repro import envcfg

#: The HTTP header carrying a serialized context between client and server.
TRACE_HEADER = "X-Repro-Trace"

_ID_RE = re.compile(r"^[0-9a-f]{8,32}$")


def context_enabled(environ=None):
    """Whether trace-context propagation is on (``REPRO_TRACE_CONTEXT``)."""
    return not envcfg.flag_disabled("REPRO_TRACE_CONTEXT", environ)


def _derive(trace_id, span_id, salt, key):
    blob = f"{trace_id}/{span_id}/{salt}/{key}".encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class TraceContext:
    """One position in a request's span tree; see the module docstring."""

    __slots__ = ("trace_id", "request_id", "span_id", "parent_id", "salt",
                 "_children")

    def __init__(self, trace_id, request_id, span_id, parent_id=None, salt=""):
        self.trace_id = trace_id
        self.request_id = request_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.salt = salt
        self._children = 0

    @classmethod
    def new(cls, request_id=None, trace_id=None):
        """A fresh root context; its ``span_id`` is the tree's root span."""
        trace_id = trace_id or uuid.uuid4().hex
        request_id = request_id or uuid.uuid4().hex[:16]
        return cls(trace_id, request_id, _derive(trace_id, "", "", "root"))

    def child(self, key=None):
        """Derive the context of a child span (deterministic per key).

        Without ``key`` a per-context counter is used, so sequential
        anonymous children of one live span still get distinct ids.
        """
        if key is None:
            key = str(self._children)
            self._children += 1
        return TraceContext(
            self.trace_id,
            self.request_id,
            _derive(self.trace_id, self.span_id, self.salt, key),
            parent_id=self.span_id,
        )

    def namespaced(self, salt):
        """A copy whose future children derive under an extra salt.

        The position (span/parent ids) is unchanged — only derivation
        diverges, which is how parallel workers sharing one parent span
        avoid id collisions while still re-parenting under it.
        """
        combined = f"{self.salt}/{salt}" if self.salt else salt
        return TraceContext(self.trace_id, self.request_id, self.span_id,
                            parent_id=self.parent_id, salt=combined)

    # -- serialization -------------------------------------------------
    def to_wire(self):
        """Plain-dict form (JSON- and pickle-safe)."""
        out = {
            "trace": self.trace_id,
            "request": self.request_id,
            "span": self.span_id,
        }
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.salt:
            out["salt"] = self.salt
        return out

    @classmethod
    def from_wire(cls, data):
        """Rebuild from :meth:`to_wire`; ``None`` on malformed input."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace")
        request_id = data.get("request")
        span_id = data.get("span")
        if not (isinstance(trace_id, str) and isinstance(request_id, str)
                and isinstance(span_id, str)):
            return None
        return cls(trace_id, request_id, span_id,
                   parent_id=data.get("parent"), salt=data.get("salt") or "")

    def to_header(self):
        """The ``X-Repro-Trace`` header value of this context."""
        return f"{self.trace_id}-{self.span_id}-{self.request_id}"

    @classmethod
    def from_header(cls, value):
        """Parse an ``X-Repro-Trace`` header; ``None`` when absent/bad.

        A malformed header must never fail a request — the caller falls
        back to a fresh context.
        """
        if not value or not isinstance(value, str):
            return None
        parts = value.strip().split("-")
        if len(parts) != 3 or not all(_ID_RE.match(part) for part in parts):
            return None
        trace_id, span_id, request_id = parts
        return cls(trace_id, request_id, span_id)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"TraceContext(trace={self.trace_id[:8]}.., "
                f"request={self.request_id}, span={self.span_id}, "
                f"parent={self.parent_id})")
