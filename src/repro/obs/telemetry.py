"""Solver telemetry: per-iteration records of Algorithm 1's descent.

When observability is enabled, both solver engines
(:func:`repro.core.optimizer.minimize_assignment` and
:func:`~repro.core.optimizer.minimize_assignment_batch`) emit one
record per restart per iteration into the process-wide
:class:`SolverTelemetry`, and attach each restart's records to its
:class:`~repro.core.optimizer.GradientDescentTrace` (``trace.telemetry``).

A record is a plain dict with the fields of :data:`ITERATION_FIELDS`:

``run``
    Monotonic id of the solver call within the process (one
    ``partition()`` with the loop engine makes one run per restart; the
    batched engine makes a single run for the whole stack).
``restart``
    Restart index within the run.
``iteration``
    Zero-based gradient-descent iteration.
``f1, f2, f3, f4, total``
    The four cost terms of eqs. (4)-(9) and the weighted total
    (eq. (8)) evaluated at the start of the iteration.
``rel_change``
    ``|total / total_prev - 1|`` — the quantity the margin criterion
    tests; ``None`` on each restart's first iteration.
``grad_norm``
    Frobenius norm of the total weighted gradient; ``None`` on the
    final evaluation of a converged restart (Algorithm 1 stops before
    computing it).
``active_restarts``
    Restarts still descending when the record was taken (always 1 for
    the loop engine).

The schema of the exported trace file is versioned by
:data:`TRACE_SCHEMA_VERSION`; bump it whenever a field is added,
removed or re-interpreted, and update ``docs/observability.md`` in the
same change (CI cross-checks the two).
"""

#: Version of the JSONL/CSV trace schema. CI asserts that
#: docs/observability.md documents exactly this version.
#: v2: span records may carry ``start_unix`` and a ``ctx`` block
#: (trace/span/parent/request ids) when trace context is active; see
#: repro/obs/context.py.  v1 files remain readable (both fields are
#: simply absent).
TRACE_SCHEMA_VERSION = 2

#: Column order of iteration records in CSV export (and the full key
#: set of each JSONL iteration record).
ITERATION_FIELDS = (
    "run",
    "restart",
    "iteration",
    "f1",
    "f2",
    "f3",
    "f4",
    "total",
    "rel_change",
    "grad_norm",
    "active_restarts",
)


class SolverTelemetry:
    """Accumulates solver runs and their per-iteration records."""

    def __init__(self):
        self.records = []
        self.runs = []

    def begin_run(self, engine, restarts, **attrs):
        """Register a solver call; returns its run id."""
        run_id = len(self.runs)
        self.runs.append({"run": run_id, "engine": engine, "restarts": int(restarts), **attrs})
        return run_id

    def record(
        self,
        run,
        restart,
        iteration,
        f1,
        f2,
        f3,
        f4,
        total,
        rel_change,
        grad_norm,
        active_restarts,
    ):
        """Append one iteration record; returns the dict (so solver
        engines can also attach it to the restart's trace)."""
        entry = {
            "run": run,
            "restart": restart,
            "iteration": iteration,
            "f1": f1,
            "f2": f2,
            "f3": f3,
            "f4": f4,
            "total": total,
            "rel_change": rel_change,
            "grad_norm": grad_norm,
            "active_restarts": active_restarts,
        }
        self.records.append(entry)
        return entry

    def reset(self):
        self.records = []
        self.runs = []

    def __len__(self):
        return len(self.records)

    def run_records(self, run, restart=None):
        """Records of one run (optionally one restart), in order."""
        return [
            r
            for r in self.records
            if r["run"] == run and (restart is None or r["restart"] == restart)
        ]

    def summary(self):
        """Aggregate view: per-run iteration counts and restart counts."""
        per_run = {}
        for record in self.records:
            stats = per_run.setdefault(
                record["run"], {"iterations": 0, "restarts": set()}
            )
            stats["iterations"] = max(stats["iterations"], record["iteration"] + 1)
            stats["restarts"].add(record["restart"])
        return {
            "runs": len(self.runs),
            "records": len(self.records),
            "per_run": {
                run: {"iterations": s["iterations"], "restarts": len(s["restarts"])}
                for run, s in sorted(per_run.items())
            },
        }
