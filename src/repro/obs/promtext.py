"""Prometheus text exposition of the metrics registry and span tables.

:func:`render_metrics` turns a
:class:`~repro.obs.metrics.MetricsRegistry` into the Prometheus text
format (version 0.0.4): dot-separated repro names are sanitized to
``[a-zA-Z0-9_]`` and prefixed with a namespace, counters gain the
conventional ``_total`` suffix, and histograms emit **cumulative**
``_bucket{le="..."}`` series (the registry stores per-bucket counts, so
this module does the running sum), a ``+Inf`` bucket equal to
``_count``, plus ``_sum``/``_count`` samples.

:func:`render_exposition` is the ``GET /metrics`` body: registry
metrics plus the span aggregate table as two labeled families
(``<ns>_span_calls_total{path=...}`` / ``<ns>_span_seconds_total``) and
optional result-store stats.

:func:`lint_exposition` is the format check used by tests and the CI
service-smoke job: every sample must be preceded by a ``# TYPE`` line
of its family, histogram buckets must be cumulative (non-decreasing in
``le`` order) with ``+Inf`` present and equal to ``_count``, and names
must match the Prometheus grammar.  It returns a list of problem
strings (empty = clean) so callers can print them all, not just the
first.

Standard library only, like the rest of :mod:`repro.obs`.
"""

import math
import re

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Sample line: name, optional {labels}, value (no timestamps emitted).
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)


def metric_name(name, namespace="repro"):
    """Sanitize a dot-separated repro metric name for Prometheus."""
    cleaned = _SANITIZE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return f"{namespace}_{cleaned}" if namespace else cleaned


def _format_value(value):
    if value is None:
        return "NaN"
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound):
    return f"{bound:g}"


def escape_label(value):
    """Escape a label value per the exposition format grammar."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def render_metrics(registry, namespace="repro"):
    """The registry as exposition-format text (ends with a newline)."""
    lines = []
    for name, entry in sorted(registry.as_dict().items()):
        kind = entry["kind"]
        base = metric_name(name, namespace)
        if kind == "counter":
            if not base.endswith("_total"):
                base += "_total"
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base} {_format_value(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_format_value(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {base} histogram")
            buckets = entry.get("buckets", {})
            bounds = sorted(float(b) for b in buckets if b != "+inf")
            cumulative = 0
            for bound in bounds:
                cumulative += int(buckets.get(str(bound), 0))
                lines.append(
                    f'{base}_bucket{{le="{_format_bound(bound)}"}} {cumulative}'
                )
            count = int(entry.get("count", 0))
            lines.append(f'{base}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{base}_sum {_format_value(entry.get('sum', 0.0))}")
            lines.append(f"{base}_count {count}")
    return "\n".join(lines) + "\n" if lines else ""


def render_spans(tracer, namespace="repro"):
    """Span aggregates as two labeled counter families."""
    aggregates = tracer.as_dict()
    if not aggregates:
        return ""
    calls = metric_name("span.calls", namespace) + "_total"
    seconds = metric_name("span.seconds", namespace) + "_total"
    lines = [f"# TYPE {calls} counter"]
    for path, agg in sorted(aggregates.items()):
        lines.append(f'{calls}{{path="{escape_label(path)}"}} {agg["count"]}')
    lines.append(f"# TYPE {seconds} counter")
    for path, agg in sorted(aggregates.items()):
        lines.append(
            f'{seconds}{{path="{escape_label(path)}"}} '
            f"{_format_value(agg['total_s'])}"
        )
    return "\n".join(lines) + "\n"


def render_store_stats(stats, namespace="repro"):
    """Result-store session stats as counters (hits/misses/writes/...)."""
    if not stats:
        return ""
    lines = []
    for key, value in sorted(stats.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        base = metric_name(f"store.{key}", namespace) + "_total"
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def render_exposition(registry, tracer=None, store_stats=None, namespace="repro"):
    """The full ``GET /metrics`` text body."""
    parts = [render_metrics(registry, namespace)]
    if tracer is not None:
        parts.append(render_spans(tracer, namespace))
    if store_stats:
        parts.append(render_store_stats(store_stats, namespace))
    return "".join(part for part in parts if part)


def _parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def lint_exposition(text):
    """Format problems of an exposition body (empty list = clean)."""
    problems = []
    typed = {}          # family name -> declared type
    histograms = {}     # family -> {"buckets": [(le, value)], "count": v}
    seen_samples = False

    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {number}: malformed TYPE line {line!r}")
                continue
            _, _, family, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {number}: unknown metric type {kind!r}")
            if family in typed:
                problems.append(f"line {number}: duplicate TYPE for {family!r}")
            typed[family] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {number}: unparsable sample {line!r}")
            continue
        seen_samples = True
        name = match.group("name")
        if not _NAME_OK.match(name):
            problems.append(f"line {number}: bad metric name {name!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            problems.append(f"line {number}: bad sample value {line!r}")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            problems.append(f"line {number}: sample {name!r} has no # TYPE line")
            continue
        if typed.get(family) == "histogram":
            hist = histograms.setdefault(family, {"buckets": [], "count": None})
            if name == f"{family}_bucket":
                labels = match.group("labels") or ""
                le_match = re.search(r'le="([^"]*)"', labels)
                if le_match is None:
                    problems.append(
                        f"line {number}: histogram bucket of {family!r} "
                        "has no le label"
                    )
                    continue
                try:
                    bound = _parse_value(le_match.group(1))
                except ValueError:
                    problems.append(
                        f"line {number}: bad le value {le_match.group(1)!r}"
                    )
                    continue
                hist["buckets"].append((bound, value))
            elif name == f"{family}_count":
                hist["count"] = value

    if not seen_samples:
        problems.append("no samples found")

    for family, hist in sorted(histograms.items()):
        buckets = sorted(hist["buckets"], key=lambda item: item[0])
        if not buckets:
            problems.append(f"histogram {family!r} has no buckets")
            continue
        if not math.isinf(buckets[-1][0]):
            problems.append(f"histogram {family!r} is missing a +Inf bucket")
        previous = None
        for bound, value in buckets:
            if previous is not None and value < previous:
                problems.append(
                    f"histogram {family!r} buckets are not cumulative at "
                    f"le={_format_bound(bound) if not math.isinf(bound) else '+Inf'}"
                )
                break
            previous = value
        if hist["count"] is not None and math.isinf(buckets[-1][0]) \
                and buckets[-1][1] != hist["count"]:
            problems.append(
                f"histogram {family!r}: +Inf bucket {buckets[-1][1]:g} "
                f"!= count {hist['count']:g}"
            )
    return problems
