"""JSON wire serialization of :class:`~repro.harness.runner.SuiteJob`.

A :class:`SuiteJob` is the unit of work every execution path shares
(sequential loop, process pool, service job manager).  The distributed
fleet (:mod:`repro.fleet`) additionally has to ship jobs across
machines, so this module defines the one JSON form a job travels in —
the lease payload of ``POST /fleet/v1/lease``.

Guarantees:

* **lossless** — :func:`job_from_wire` rebuilds a job field-for-field
  equal to the one :func:`job_to_wire` serialized (dataclass equality),
  including the solver :class:`~repro.core.config.PartitionConfig` and
  the eco warm-start fields, so a remotely executed job is *the same
  job* and its payload is bitwise-identical to local execution;
* **versioned** — every wire dict carries :data:`JOB_WIRE_VERSION`;
  a coordinator/worker version skew fails loudly at deserialization
  instead of silently mis-executing;
* **JSON-only** — the dict round-trips through ``json.dumps`` /
  ``json.loads`` unchanged (tuples are normalized to lists on the wire
  and restored where :func:`repro.service.api.request_to_job` uses
  tuples, so equality holds after a real network hop).
"""

import dataclasses

from repro.core.config import PartitionConfig
from repro.harness.runner import SuiteJob
from repro.utils.errors import ReproError

#: Version of the job wire format.  Bump on any SuiteJob field change
#: so mixed-version fleets fail loudly instead of mis-executing.
JOB_WIRE_VERSION = 1


def job_to_wire(job):
    """The JSON-able wire dict of one :class:`SuiteJob`."""
    if not isinstance(job, SuiteJob):
        raise ReproError(f"job_to_wire needs a SuiteJob, got {type(job).__name__}")
    wire = {"version": JOB_WIRE_VERSION, "kind": job.kind, "circuit": job.circuit}
    if job.num_planes is not None:
        wire["num_planes"] = int(job.num_planes)
    wire["method"] = job.method
    if job.seed is not None:
        wire["seed"] = job.seed
    if job.config is not None:
        wire["config"] = dataclasses.asdict(job.config)
    wire["refine"] = bool(job.refine)
    wire["bias_limit_ma"] = float(job.bias_limit_ma)
    if job.netlist_json is not None:
        wire["netlist_json"] = job.netlist_json
    if job.pinned is not None:
        wire["pinned"] = dict(job.pinned)
    if job.trace_context is not None:
        wire["trace_context"] = dict(job.trace_context)
    if job.prev_labels is not None:
        wire["prev_labels"] = [int(label) for label in job.prev_labels]
    if job.eco is not None:
        wire["eco"] = job.eco
    return wire


def job_from_wire(wire):
    """Rebuild the :class:`SuiteJob` a wire dict describes.

    Raises :class:`ReproError` on a malformed dict or a version the
    running code does not speak.
    """
    if not isinstance(wire, dict):
        raise ReproError(f"job wire form must be a dict, got {type(wire).__name__}")
    version = wire.get("version")
    if version != JOB_WIRE_VERSION:
        raise ReproError(
            f"job wire version {version!r} is not the supported {JOB_WIRE_VERSION}"
        )
    for field in ("kind", "circuit"):
        if not isinstance(wire.get(field), str):
            raise ReproError(f"job wire dict is missing the {field!r} field")
    config = wire.get("config")
    if config is not None:
        try:
            config = PartitionConfig(**config)
        except TypeError as error:
            raise ReproError(f"bad job wire config: {error}") from None
    prev_labels = wire.get("prev_labels")
    return SuiteJob(
        kind=wire["kind"],
        circuit=wire["circuit"],
        num_planes=wire.get("num_planes"),
        method=wire.get("method", "gradient"),
        seed=wire.get("seed"),
        config=config,
        refine=bool(wire.get("refine", False)),
        bias_limit_ma=float(wire.get("bias_limit_ma", 100.0)),
        netlist_json=wire.get("netlist_json"),
        pinned=wire.get("pinned"),
        trace_context=wire.get("trace_context"),
        prev_labels=tuple(prev_labels) if prev_labels is not None else None,
        eco=wire.get("eco"),
    )
