"""JSON persistence for partitions and reports.

Lets a long Table-III search (or any partition) be saved and reloaded —
e.g. partition on a big machine, floorplan/verify elsewhere — and gives
downstream tooling a stable machine-readable format next to the ASCII
tables.
"""

import json

import numpy as np

from repro.core.config import PartitionConfig
from repro.core.partitioner import PartitionResult
from repro.utils.errors import ReproError

#: Format version written into every file; bump on breaking changes.
FORMAT_VERSION = 1


def partition_to_dict(result):
    """Serialize a :class:`PartitionResult` (without the netlist body;
    the netlist is referenced by name and validated on load)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "partition",
        "circuit": result.netlist.name,
        "num_gates": result.netlist.num_gates,
        "num_planes": result.num_planes,
        "labels": [int(label) for label in result.labels],
        "gate_names": [gate.name for gate in result.netlist.gates],
        "config": {
            "c1": result.config.c1,
            "c2": result.config.c2,
            "c3": result.config.c3,
            "c4": result.config.c4,
            "margin": result.config.margin,
            "learning_rate": result.config.learning_rate,
            "max_iterations": result.config.max_iterations,
            "restarts": result.config.restarts,
            "gradient_mode": result.config.gradient_mode,
            "renormalize_rows": result.config.renormalize_rows,
            "ensure_nonempty": result.config.ensure_nonempty,
            "seed": result.config.seed,
        },
        "restart_costs": [float(cost) for cost in result.restart_costs],
        "repaired_gates": int(result.repaired_gates),
    }


def save_partition(result, path):
    """Write a partition to a JSON file; returns the path."""
    with open(path, "w") as handle:
        json.dump(partition_to_dict(result), handle, indent=2)
    return path


def load_partition(path_or_dict, netlist):
    """Reload a partition against a (re)built netlist.

    The netlist must match the saved one: same name, same gate count,
    same gate-name sequence — otherwise :class:`ReproError` is raised
    (labels are positional, so any drift would silently mis-assign).
    """
    if isinstance(path_or_dict, dict):
        data = path_or_dict
    else:
        with open(path_or_dict) as handle:
            data = json.load(handle)

    if data.get("kind") != "partition":
        raise ReproError("not a partition file")
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported partition format {data.get('format')} "
            f"(this build reads {FORMAT_VERSION})"
        )
    if data["circuit"] != netlist.name:
        raise ReproError(
            f"partition was saved for circuit {data['circuit']!r}, "
            f"got netlist {netlist.name!r}"
        )
    if data["num_gates"] != netlist.num_gates:
        raise ReproError(
            f"gate count mismatch: saved {data['num_gates']}, "
            f"netlist has {netlist.num_gates}"
        )
    saved_names = data.get("gate_names")
    if saved_names is not None:
        current = [gate.name for gate in netlist.gates]
        if saved_names != current:
            raise ReproError("gate name sequence differs from the saved partition")

    config = PartitionConfig(**data["config"])
    return PartitionResult(
        netlist=netlist,
        num_planes=int(data["num_planes"]),
        labels=np.asarray(data["labels"], dtype=np.intp),
        config=config,
        restart_costs=list(data.get("restart_costs", [])),
        repaired_gates=int(data.get("repaired_gates", 0)),
    )


def report_to_dict(report):
    """Serialize a :class:`~repro.metrics.report.PartitionReport` with
    per-plane detail for downstream plotting."""
    data = report.as_dict()
    data["format"] = FORMAT_VERSION
    data["kind"] = "report"
    data["per_plane_bias_ma"] = [float(b) for b in report.bias.per_plane_ma]
    data["per_plane_area_mm2"] = [float(a) for a in report.area.per_plane_mm2]
    data["mean_distance"] = report.mean_distance
    data["coupling_pairs"] = report.coupling_pairs
    return data


def save_report(report, path):
    """Write a report to a JSON file; returns the path."""
    with open(path, "w") as handle:
        json.dump(report_to_dict(report), handle, indent=2)
    return path
