"""Plain-text table rendering for the harness and the CLI."""


def ascii_table(headers, rows, title=None):
    """Render a list-of-lists as an aligned ASCII table.

    Cells are stringified; numeric-looking cells are right-aligned,
    text cells left-aligned (decided per column from the data).
    """
    headers = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def _is_numeric(text):
        stripped = text.replace("%", "").replace("/", "").strip()
        if not stripped:
            return False
        try:
            float(stripped)
            return True
        except ValueError:
            return False

    numeric_column = [
        all(_is_numeric(row[c]) for row in text_rows) if text_rows else False
        for c in range(len(headers))
    ]

    def _format_row(cells):
        parts = []
        for column, cell in enumerate(cells):
            if numeric_column[column]:
                parts.append(cell.rjust(widths[column]))
            else:
                parts.append(cell.ljust(widths[column]))
        return "| " + " | ".join(parts) + " |"

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(_format_row(headers))
    lines.append(separator)
    for row in text_rows:
        lines.append(_format_row(row))
    lines.append(separator)
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def percent(fraction, digits=1):
    """Format a [0, 1] fraction as the paper's percent columns."""
    return f"{fraction * 100:.{digits}f}%"
