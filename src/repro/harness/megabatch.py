"""Mega-batch grouping and execution for the suite runner.

This is the harness-side half of cross-job kernel packing
(:mod:`repro.core.megabatch` is the solver-side half): it decides which
:class:`~repro.harness.runner.SuiteJob` items may share one packed
solve (:func:`job_pack_key`), chunks them into bounded groups
(:func:`find_groups`) and executes a group through the packer with
payloads shaped exactly like :func:`~repro.harness.runner.execute_job`
(:func:`execute_group`).

Packing is opt-in (``REPRO_MEGABATCH``; default off) and strictly an
execution strategy: per-job payloads are bitwise-identical to solo
solves, so checkpoints, caches and the service result store never see
the difference.  Only jobs that the packer can prove compatible are
grouped — ``kind="partition"``, the gradient method, the batched
engine, the same circuit/planes/refine/pinned and the same config up to
``restarts``/``seed``.  Everything else (plan jobs, the loop or
multilevel engines, mixed configs) falls through to the normal per-job
path untouched.
"""

import hashlib
import json

from repro import envcfg
from repro.cache.store import canonical_jsonable
from repro.core.config import PartitionConfig
from repro.core.megabatch import SolveSpec, partition_packed

#: Default maximum number of jobs packed into one group.
DEFAULT_MEGABATCH_LIMIT = 16

#: Config fields allowed to differ between packed jobs; must match
#: ``repro.core.megabatch._PACK_FREE_FIELDS``.
_PACK_FREE_FIELDS = ("restarts", "seed")


def megabatch_enabled(enabled=None, environ=None):
    """Effective packing switch: explicit > ``REPRO_MEGABATCH`` > off."""
    if enabled is not None:
        return bool(enabled)
    return envcfg.flag_enabled("REPRO_MEGABATCH", environ)


def resolve_megabatch_limit(limit=None, environ=None):
    """Group size cap: explicit > ``REPRO_MEGABATCH_LIMIT`` > 16."""
    if limit is not None:
        limit = int(limit)
    else:
        limit = envcfg.number(
            "REPRO_MEGABATCH_LIMIT", int, lambda v: v >= 1, "an integer >= 1", environ
        )
        if limit is None:
            limit = DEFAULT_MEGABATCH_LIMIT
    if limit < 1:
        limit = 1
    return limit


def _config_key(config):
    """Hashable view of a config with the pack-free fields dropped."""
    payload = canonical_jsonable(
        {
            name: getattr(config, name)
            for name in config.__dataclass_fields__
            if name not in _PACK_FREE_FIELDS + ("extra",)
        }
    )
    return json.dumps(payload, sort_keys=True)


def job_pack_key(job):
    """Hashable grouping key for ``job``, or ``None`` when unpackable.

    Two jobs with equal keys are guaranteed compatible for
    :func:`repro.core.megabatch.partition_packed`: identical problem
    identity (circuit name or inline-netlist content hash), plane
    count, refine flag, pinned constraints and solver config up to
    ``restarts``/``seed``.
    """
    if job.kind != "partition" or job.method != "gradient":
        return None
    if job.num_planes is None or int(job.num_planes) < 2:
        return None
    config = job.config if job.config is not None else PartitionConfig()
    if config.engine != "batched":
        return None
    if job.netlist_json is not None:
        blob = json.dumps(canonical_jsonable(job.netlist_json), sort_keys=True)
        circuit_key = ("netlist", hashlib.sha256(blob.encode()).hexdigest())
    else:
        circuit_key = ("circuit", job.circuit)
    pinned = job.pinned or {}
    pinned_key = tuple(sorted((repr(gate), int(plane)) for gate, plane in pinned.items()))
    return (
        circuit_key,
        int(job.num_planes),
        bool(job.refine),
        pinned_key,
        _config_key(config),
    )


def find_groups(job_list, pending, limit=None):
    """Packable groups (lists of >= 2 job indices) among ``pending``.

    Jobs keep their submission order within a group; groups larger than
    ``limit`` are chunked.  Indices not covered by any returned group
    (unpackable jobs, singleton keys) are simply not in the output and
    run through the normal per-job path.
    """
    limit = resolve_megabatch_limit(limit)
    by_key = {}
    for index in pending:
        key = job_pack_key(job_list[index])
        if key is not None:
            by_key.setdefault(key, []).append(index)
    groups = []
    for indices in by_key.values():
        if len(indices) < 2:
            continue
        for start in range(0, len(indices), limit):
            chunk = indices[start:start + limit]
            if len(chunk) >= 2:
                groups.append(chunk)
    return groups


def execute_group(jobs):
    """Execute a packable group; one payload per job, in order.

    Payloads are structurally and bitwise identical to what
    :func:`repro.harness.runner.execute_job` returns for each job solo:
    the netlist is built once, the solves run packed, and per-job
    refinement/evaluation happens on each job's own result.
    """
    from repro.circuits.suite import build_circuit
    from repro.core.refinement import refine_greedy
    from repro.metrics.report import evaluate_partition

    first = jobs[0]
    if first.netlist_json is not None:
        from repro.netlist.library import default_library
        from repro.netlist.serialize import netlist_from_dict

        netlist = netlist_from_dict(first.netlist_json, default_library())
    else:
        netlist = build_circuit(first.circuit)

    specs = [
        SolveSpec(
            netlist=netlist,
            num_planes=job.num_planes,
            config=job.config,
            seed=job.seed,
            pinned=job.pinned,
        )
        for job in jobs
    ]
    results = partition_packed(specs)

    payloads = []
    for job, result in zip(jobs, results):
        if job.refine:
            result = refine_greedy(result)
        payloads.append(
            {
                "circuit": job.circuit,
                "report": evaluate_partition(result),
                "labels": result.labels,
            }
        )
    return payloads
