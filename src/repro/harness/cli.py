"""``repro-gpp`` — command-line front end.

Subcommands::

    repro-gpp suite                      # list reconstructed benchmarks
    repro-gpp partition KSA8 -k 5        # partition one circuit
    repro-gpp partition my.def -k 5      # ... or any DEF file
    repro-gpp table1 [--method greedy]   # regenerate Table I
    repro-gpp table2                     # regenerate Table II
    repro-gpp table3                     # regenerate Table III
    repro-gpp figure1 KSA4 -k 5          # Fig. 1 floorplan
    repro-gpp convergence KSA8 -k 5      # convergence figure
"""

import argparse
import os
import sys

from repro.circuits.suite import PAPER_TABLE1, SUITE_NAMES, build_circuit
from repro.core.config import PartitionConfig
from repro.harness import figures, tables
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition
from repro.netlist.library import default_library
from repro.parsers.def_parser import parse_def
from repro.recycling.verify import plan_recycling, verify_recycling
from repro.utils.errors import ReproError


def _load_netlist(source):
    """Resolve a CLI circuit argument: suite name or DEF file path."""
    if source in SUITE_NAMES:
        return build_circuit(source)
    if os.path.exists(source):
        with open(source) as handle:
            return parse_def(handle.read(), default_library(), filename=source)
    raise ReproError(
        f"{source!r} is neither a benchmark name ({', '.join(SUITE_NAMES)}) "
        "nor an existing DEF file"
    )


def _add_common(parser):
    parser.add_argument("-k", "--planes", type=int, default=5, help="number of ground planes")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--method",
        choices=sorted(tables.PARTITION_METHODS),
        default="gradient",
        help="partitioning algorithm",
    )
    parser.add_argument("--refine", action="store_true", help="greedy post-refinement")


def _cmd_suite(_args):
    headers = ["Circuit", "Gates", "Conns", "B_cir mA", "A_cir mm2", "paper gates"]
    rows = []
    for name in SUITE_NAMES:
        netlist = build_circuit(name)
        rows.append([
            name, netlist.num_gates, netlist.num_connections,
            f"{netlist.total_bias_ma:.2f}", f"{netlist.total_area_mm2:.4f}",
            PAPER_TABLE1[name].gates,
        ])
    print(ascii_table(headers, rows, title="reconstructed benchmark suite"))
    return 0


def _cmd_partition(args):
    netlist = _load_netlist(args.circuit)
    result = tables._partition_with(
        args.method, netlist, args.planes, seed=args.seed, refine=args.refine
    )
    report = evaluate_partition(result)
    if getattr(args, "save", None):
        from repro.harness.io import save_partition

        save_partition(result, args.save)
        print(f"partition saved to {args.save}")
    if getattr(args, "json", False):
        import json

        from repro.harness.io import report_to_dict

        print(json.dumps(report_to_dict(report), indent=2))
        return 0
    headers = ["metric", "value"]
    rows = [
        ["circuit", report.circuit],
        ["planes", report.num_planes],
        ["gates", report.num_gates],
        ["connections", report.num_connections],
        ["d<=1", percent(report.frac_d_le_1)],
        ["d<=2", percent(report.frac_d_le_2)],
        ["d<=K/2", percent(report.frac_d_le_half_k)],
        ["B_cir", f"{report.b_cir_ma:.2f} mA"],
        ["B_max", f"{report.b_max_ma:.2f} mA"],
        ["I_comp", f"{report.i_comp_pct:.2f}%"],
        ["A_max", f"{report.a_max_mm2:.4f} mm2"],
        ["A_FS", f"{report.a_fs_pct:.2f}%"],
    ]
    print(ascii_table(headers, rows, title=f"partition ({args.method})"))
    plan = plan_recycling(result)
    violations = verify_recycling(plan)
    print()
    print(plan.summary())
    if violations:
        print("RECYCLING VIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("recycling plan verified: feasible")
    return 0


def _cmd_table1(args):
    rows = tables.run_table1(
        num_planes=args.planes, seed=args.seed, method=args.method, refine=args.refine
    )
    print(tables.format_table1(rows, compare_paper=not args.no_paper))
    return 0


def _cmd_table2(args):
    reports = tables.run_table2(
        circuit=args.circuit, seed=args.seed, method=args.method, refine=args.refine
    )
    print(tables.format_table2(reports, compare_paper=not args.no_paper))
    return 0


def _cmd_table3(args):
    rows = tables.run_table3(bias_limit_ma=args.limit, seed=args.seed)
    print(tables.format_table3(rows, compare_paper=not args.no_paper))
    return 0


def _cmd_figure1(args):
    text, _floorplan, _result = figures.figure1(args.circuit, args.planes, seed=args.seed)
    print(text)
    return 0


def _cmd_stats(args):
    netlist = _load_netlist(args.circuit)
    from repro.netlist.stats import netlist_stats

    stats = netlist_stats(netlist)
    rows = [
        ["gates", stats.num_gates],
        ["connections", stats.num_connections],
        ["connections/gate", f"{stats.connections_per_gate:.3f}"],
        ["avg bias", f"{stats.avg_bias_ma:.3f} mA"],
        ["avg area", f"{stats.avg_area_um2:.0f} um2"],
        ["splitter fraction", f"{stats.splitter_fraction * 100:.1f}%"],
        ["DFF fraction", f"{stats.dff_fraction * 100:.1f}%"],
        ["logic fraction", f"{stats.logic_fraction * 100:.1f}%"],
        ["pipeline depth", stats.pipeline_depth],
        ["max degree", stats.max_degree],
        ["locality index", f"{stats.locality:.3f}"],
    ]
    print(ascii_table(["metric", "value"], rows, title=f"netlist statistics: {netlist.name}"))
    mix = ", ".join(f"{name}:{count}" for name, count in sorted(stats.cell_mix.items()))
    print(f"cell mix: {mix}")
    return 0


def _cmd_latency(args):
    netlist = _load_netlist(args.circuit)
    result = tables._partition_with(
        args.method, netlist, args.planes, seed=args.seed, refine=args.refine
    )
    from repro.recycling.latency import analyze_latency

    report = analyze_latency(result)
    rows = [
        ["circuit", report.circuit],
        ["planes", report.num_planes],
        ["base clock", f"{report.base_frequency_ghz:.1f} GHz"],
        ["partitioned clock", f"{report.partitioned_frequency_ghz:.1f} GHz"],
        ["worst crossing", f"{report.worst_edge_distance} boundaries"],
        ["crossing connections", report.crossing_edges],
        ["frequency loss", f"{report.frequency_loss_pct:.1f}%"],
    ]
    print(ascii_table(["metric", "value"], rows, title="coupling latency impact"))
    return 0


def _cmd_simulate(args):
    netlist = _load_netlist(args.circuit)
    from repro.sim import PulseSimulator

    simulator = PulseSimulator(netlist)
    assignments = {}
    for pair in args.set or []:
        if "=" not in pair:
            raise ReproError(f"--set expects name=value, got {pair!r}")
        name, value = pair.split("=", 1)
        assignments[name] = int(value, 0)
    outputs = simulator.run_bus(
        assignments, args.outputs or [p.name for p in netlist.output_ports()]
    )
    rows = [[name, value] for name, value in sorted(outputs.items())]
    print(ascii_table(["output", "value"], rows,
                      title=f"pulse simulation ({simulator.pipeline_depth} cycles)"))
    return 0


def _cmd_convergence(args):
    history, result = figures.convergence_trace(args.circuit, args.planes, seed=args.seed)
    print(figures.render_convergence(history))
    print(
        f"iterations: {result.trace.iterations}, converged: {result.trace.converged}, "
        f"final cost: {history[-1]:.6f}"
    )
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-gpp",
        description="Ground plane partitioning for current recycling of "
        "superconducting circuits (DATE 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("suite", help="list the reconstructed benchmark suite")

    partition_parser = subparsers.add_parser("partition", help="partition a circuit or DEF file")
    partition_parser.add_argument("circuit", help="benchmark name or DEF path")
    _add_common(partition_parser)
    partition_parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    partition_parser.add_argument("--save", metavar="PATH", help="save the partition as JSON")

    stats_parser = subparsers.add_parser("stats", help="structural statistics of a circuit")
    stats_parser.add_argument("circuit", help="benchmark name or DEF path")

    latency_parser = subparsers.add_parser("latency", help="coupling latency impact of a partition")
    latency_parser.add_argument("circuit", help="benchmark name or DEF path")
    _add_common(latency_parser)

    simulate_parser = subparsers.add_parser("simulate", help="pulse-simulate a circuit")
    simulate_parser.add_argument("circuit", help="benchmark name or DEF path")
    simulate_parser.add_argument(
        "--set", action="append", metavar="BUS=VALUE",
        help="input bus/pin assignment, e.g. --set a=11 --set b=0x2f",
    )
    simulate_parser.add_argument(
        "--outputs", nargs="*", metavar="BUS", help="output buses to report (default: all pins)"
    )

    table1_parser = subparsers.add_parser("table1", help="regenerate Table I")
    _add_common(table1_parser)
    table1_parser.add_argument("--no-paper", action="store_true", help="omit paper rows")

    table2_parser = subparsers.add_parser("table2", help="regenerate Table II")
    table2_parser.add_argument("--circuit", default="KSA4")
    _add_common(table2_parser)
    table2_parser.add_argument("--no-paper", action="store_true")

    table3_parser = subparsers.add_parser("table3", help="regenerate Table III")
    table3_parser.add_argument("--limit", type=float, default=100.0, help="pad current limit (mA)")
    table3_parser.add_argument("--seed", type=int, default=None)
    table3_parser.add_argument("--no-paper", action="store_true")

    figure1_parser = subparsers.add_parser("figure1", help="render the Fig. 1 floorplan")
    figure1_parser.add_argument("circuit", nargs="?", default="KSA4")
    _add_common(figure1_parser)

    convergence_parser = subparsers.add_parser("convergence", help="convergence figure")
    convergence_parser.add_argument("circuit", nargs="?", default="KSA8")
    _add_common(convergence_parser)

    return parser


_COMMANDS = {
    "suite": _cmd_suite,
    "partition": _cmd_partition,
    "stats": _cmd_stats,
    "latency": _cmd_latency,
    "simulate": _cmd_simulate,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "figure1": _cmd_figure1,
    "convergence": _cmd_convergence,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
