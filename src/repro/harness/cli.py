"""``repro-gpp`` — command-line front end.

Subcommands::

    repro-gpp suite                      # list reconstructed benchmarks
    repro-gpp partition KSA8 -k 5        # partition one circuit
    repro-gpp partition my.def -k 5      # ... or any DEF file
    repro-gpp eco BASE EDITED -k 5       # incremental ECO re-partition
    repro-gpp sweep KSA8 -k 3,4,5        # K x weight Pareto sweep + energy
    repro-gpp table1 [--method greedy]   # regenerate Table I
    repro-gpp table2                     # regenerate Table II
    repro-gpp table3                     # regenerate Table III
    repro-gpp figure1 KSA4 -k 5          # Fig. 1 floorplan
    repro-gpp convergence KSA8 -k 5      # convergence figure
    repro-gpp convergence-report KSA8    # per-iteration F1..F4 telemetry
    repro-gpp cache info                 # on-disk artifact cache status
    repro-gpp cache clear                # drop the repro cache namespace
    repro-gpp serve --trace-requests     # HTTP service with deep tracing
    repro-gpp obs report TRACE.jsonl     # per-request span waterfall
    repro-gpp obs events events.jsonl    # pretty-print a job event log

The table subcommands accept ``--jobs N`` to fan the independent
per-circuit solves out over a process pool (results are
bitwise-identical to ``--jobs 1``; see docs/performance.md).

Observability (see docs/observability.md): every partitioning
subcommand accepts ``--trace FILE`` (write a JSONL trace with spans,
metrics and per-iteration solver telemetry) and ``--profile`` (print
span-timing and metrics tables after the command).  The ``REPRO_TRACE``
environment variable enables the same capture without flags; when its
value is a path, the trace is written there.
"""

import argparse
import os
import sys

from repro import obs
from repro.circuits.suite import PAPER_TABLE1, SUITE_NAMES, build_circuit
from repro.core.config import PartitionConfig
from repro.harness import figures, tables
from repro.harness.formatting import ascii_table, percent
from repro.metrics.report import evaluate_partition
from repro.netlist.library import default_library
from repro.parsers.def_parser import parse_def
from repro.recycling.verify import plan_recycling, verify_recycling
from repro.utils.errors import ReproError


def _load_netlist(source):
    """Resolve a CLI circuit argument: suite name, DEF or netlist JSON."""
    if source in SUITE_NAMES:
        return build_circuit(source)
    if os.path.exists(source):
        with open(source) as handle:
            text = handle.read()
        if text.lstrip().startswith("{"):
            import json

            from repro.netlist.serialize import netlist_from_dict

            try:
                data = json.loads(text)
            except ValueError as error:
                raise ReproError(f"{source}: invalid JSON: {error}") from None
            return netlist_from_dict(data, library=default_library())
        return parse_def(text, default_library(), filename=source)
    raise ReproError(
        f"{source!r} is neither a benchmark name ({', '.join(SUITE_NAMES)}) "
        "nor an existing DEF or netlist-JSON file"
    )


def _add_common(parser):
    parser.add_argument("-k", "--planes", type=int, default=5, help="number of ground planes")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--method",
        choices=sorted(tables.PARTITION_METHODS),
        default="gradient",
        help="partitioning algorithm",
    )
    parser.add_argument("--refine", action="store_true", help="greedy post-refinement")
    parser.add_argument(
        "--engine",
        choices=("batched", "loop", "multilevel"),
        default="batched",
        help="gradient solver engine (multilevel = coarse-to-fine warm start)",
    )
    _add_obs(parser)


def _positive_int(value):
    """argparse type for ``--jobs``/``--retries``-style counts.

    Rejecting bad values here (instead of deep inside the executor)
    turns ``--jobs 0`` into a one-line usage error.
    """
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"expected an integer >= 1, got {value!r}")
    return parsed


def _nonnegative_int(value):
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"expected an integer >= 0, got {value!r}")
    return parsed


def _positive_float(value):
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}") from None
    if not parsed > 0:
        raise argparse.ArgumentTypeError(f"expected a number > 0, got {value!r}")
    return parsed


def _int_list(value):
    """argparse type for comma-separated integer grids (``-k 3,4,5``)."""
    try:
        parsed = [int(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}"
        ) from None
    if not parsed:
        raise argparse.ArgumentTypeError(f"expected at least one integer, got {value!r}")
    return parsed


def _float_list(value):
    """argparse type for comma-separated number grids (``--ratios 0.2,1,4``)."""
    try:
        parsed = [float(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {value!r}"
        ) from None
    if not parsed:
        raise argparse.ArgumentTypeError(f"expected at least one number, got {value!r}")
    return parsed


def _add_jobs(parser):
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes (default: REPRO_JOBS env, else min(cpus, 8); "
        "1 = run inline; results identical for any value)",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock limit (default: REPRO_JOB_TIMEOUT env, else "
        "unlimited); a timed-out job is retried, see docs/robustness.md",
    )
    parser.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="retries per failed job with exponential backoff "
        "(default: REPRO_RETRIES env, else 2)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="stream completed job results to a JSONL checkpoint",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: skip jobs already completed in the "
        "checkpoint file (rows stay bitwise identical)",
    )


def _run_opts(args):
    """The run_jobs pass-through kwargs of a table subcommand."""
    if args.resume and not args.checkpoint:
        raise ReproError("--resume requires --checkpoint FILE")
    return {
        "timeout": args.timeout,
        "retries": args.retries,
        "checkpoint": args.checkpoint,
        "resume": args.resume,
    }


def _print_run_summary(file=None):
    """One stderr line when the run retried, resumed or skipped corrupt
    checkpoint lines — silent for a plain clean run."""
    from repro.harness.runner import last_report

    report = last_report()
    if report is None:
        return
    if report.retries or report.from_checkpoint or report.checkpoint_corrupt_lines:
        print(report.summary(), file=file if file is not None else sys.stderr)


def _add_obs(parser):
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL observability trace (spans, metrics, solver telemetry)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print span-timing and metrics tables after the command",
    )


def _cmd_suite(_args):
    headers = ["Circuit", "Gates", "Conns", "B_cir mA", "A_cir mm2", "paper gates"]
    rows = []
    for name in SUITE_NAMES:
        netlist = build_circuit(name)
        rows.append([
            name, netlist.num_gates, netlist.num_connections,
            f"{netlist.total_bias_ma:.2f}", f"{netlist.total_area_mm2:.4f}",
            PAPER_TABLE1[name].gates,
        ])
    print(ascii_table(headers, rows, title="reconstructed benchmark suite"))
    return 0


def _cmd_partition(args):
    netlist = _load_netlist(args.circuit)
    weights = {
        name: value
        for name, value in (("c1", getattr(args, "c1", None)), ("c2", getattr(args, "c2", None)),
                            ("c3", getattr(args, "c3", None)), ("c4", getattr(args, "c4", None)))
        if value is not None
    }
    result = tables._partition_with(
        args.method, netlist, args.planes,
        config=PartitionConfig(engine=args.engine, **weights),
        seed=args.seed, refine=args.refine,
    )
    report = evaluate_partition(result)
    if getattr(args, "save", None):
        from repro.harness.io import save_partition

        save_partition(result, args.save)
        print(f"partition saved to {args.save}")
    if getattr(args, "json", False):
        import json

        from repro.harness.io import report_to_dict

        print(json.dumps(report_to_dict(report), indent=2))
        return 0
    headers = ["metric", "value"]
    rows = [
        ["circuit", report.circuit],
        ["planes", report.num_planes],
        ["gates", report.num_gates],
        ["connections", report.num_connections],
        ["d<=1", percent(report.frac_d_le_1)],
        ["d<=2", percent(report.frac_d_le_2)],
        ["d<=K/2", percent(report.frac_d_le_half_k)],
        ["B_cir", f"{report.b_cir_ma:.2f} mA"],
        ["B_max", f"{report.b_max_ma:.2f} mA"],
        ["I_comp", f"{report.i_comp_pct:.2f}%"],
        ["A_max", f"{report.a_max_mm2:.4f} mm2"],
        ["A_FS", f"{report.a_fs_pct:.2f}%"],
    ]
    print(ascii_table(headers, rows, title=f"partition ({args.method})"))
    plan = plan_recycling(result)
    violations = verify_recycling(plan)
    print()
    print(plan.summary())
    if violations:
        print("RECYCLING VIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("recycling plan verified: feasible")
    return 0


def _cmd_eco(args):
    """Diff BASE vs EDITED, warm-start from the base solve, compare to cold."""
    import json
    import time

    from repro.core.incremental import align_labels, incremental_partition
    from repro.core.partitioner import partition
    from repro.netlist.diff import diff_key, diff_netlists, touched_gate_names

    base = _load_netlist(args.base)
    edited = _load_netlist(args.edited)
    diff = diff_netlists(base, edited)
    touched = touched_gate_names(diff)
    config = PartitionConfig(engine=args.engine)

    start = time.perf_counter()
    base_result = partition(base, args.planes, config, seed=args.seed)
    base_s = time.perf_counter() - start

    prev = align_labels([g.name for g in base.gates], base_result.labels, edited)
    start = time.perf_counter()
    warm_result, info = incremental_partition(
        edited, args.planes, prev, touched, config=config, seed=args.seed,
        halo=args.halo, threshold=args.threshold, quality_eps=args.eps,
    )
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    cold_result = partition(edited, args.planes, config, seed=args.seed)
    cold_s = time.perf_counter() - start
    cold_cost = float(cold_result.integer_cost())

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    delta_pct = (
        (info["cost"] - cold_cost) / cold_cost * 100.0 if cold_cost else 0.0
    )
    summary = {
        "base": base.name,
        "edited": edited.name,
        "diff_key": diff_key(diff),
        "added_gates": len(diff["added_gates"]),
        "removed_gates": len(diff["removed_gates"]),
        "modified_gates": len(diff["modified_gates"]),
        "added_connections": len(diff["added_connections"]),
        "removed_connections": len(diff["removed_connections"]),
        "touched_gates": len(touched),
        "eco": info,
        "base_solve_s": base_s,
        "warm_solve_s": warm_s,
        "cold_solve_s": cold_s,
        "speedup": speedup,
        "warm_cost": info["cost"],
        "cold_cost": cold_cost,
        "quality_delta_pct": delta_pct,
    }
    if getattr(args, "json", False):
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    rows = [
        ["base / edited", f"{base.name} -> {edited.name}"],
        ["edit", f"+{summary['added_gates']}g -{summary['removed_gates']}g "
                 f"~{summary['modified_gates']}g "
                 f"+{summary['added_connections']}c "
                 f"-{summary['removed_connections']}c"],
        ["touched gates", summary["touched_gates"]],
        ["mode", info["mode"] + (
            f" (fallback: {info['fallback_reason']})" if info["fallback_reason"] else ""
        )],
        ["region", f"{info.get('region_gates', 0)} gates "
                   f"({info.get('region_fraction', 0.0) * 100:.1f}%)"],
        ["warm solve", f"{warm_s * 1000:.1f} ms (cost {info['cost']:.6g})"],
        ["cold solve", f"{cold_s * 1000:.1f} ms (cost {cold_cost:.6g})"],
        ["speedup", f"{speedup:.1f}x"],
        ["quality delta", f"{delta_pct:+.2f}% vs cold"],
    ]
    print(ascii_table(["metric", "value"], rows, title="incremental ECO re-partition"))
    return 0


def _cmd_sweep(args):
    """K x weight-ratio Pareto sweep with the ASCII frontier render.

    Validates through the same :func:`repro.service.api.validate_request`
    path the service uses and runs the same
    :func:`repro.harness.pareto.execute_sweep`, so a local sweep's grid
    points are by construction bitwise-identical to served ones.
    """
    import json

    from repro.harness.pareto import execute_sweep, render_sweep
    from repro.service.api import validate_request
    from repro.service.errors import BadRequestError

    body = {
        "kind": "sweep",
        "k_values": args.k_values,
        "weight_ratios": args.ratios,
        "seed": args.seed,
        "engine": args.engine,
    }
    if args.clock_ghz is not None:
        body["clock_ghz"] = args.clock_ghz
    if args.circuit in SUITE_NAMES:
        body["circuit"] = args.circuit
    else:
        from repro.netlist.serialize import netlist_to_dict

        body["netlist"] = netlist_to_dict(_load_netlist(args.circuit))
    try:
        normalized = validate_request(body)
    except BadRequestError as error:
        raise ReproError(str(error)) from None

    payload, stats = execute_sweep(normalized, jobs=args.jobs, run_kwargs=_run_opts(args))

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    headers = ["K", "ratio", "c1", "d<=1", "I_comp", "A_FS",
               "P_rsfq uW", "P_ersfq uW", "saving", "front"]
    rows = []
    for point in payload["points"]:
        metrics, energy = point["metrics"], point["energy"]
        rows.append([
            point["num_planes"], f"{point['ratio']:g}", f"{point['weights']['c1']:g}",
            percent(metrics["frac_d_le_1"]), f"{metrics['i_comp_pct']:.2f}%",
            f"{metrics['a_fs_pct']:.2f}%", f"{energy['energy_uw_rsfq']:.2f}",
            f"{energy['energy_uw_ersfq']:.4f}", f"{energy['saving_pct']:.2f}%",
            "*" if point["on_frontier"] else "",
        ])
    print(ascii_table(
        headers, rows,
        title=f"Pareto sweep: {payload['circuit']} at {payload['clock_ghz']:g} GHz "
        f"({stats['points']} points, {stats['cache_hits']} cached)",
    ))
    print()
    print(render_sweep(payload, width=args.width))
    if payload["skipped_k"]:
        print(
            f"skipped infeasible K (more planes than the {payload['num_gates']} "
            "gates): " + ", ".join(str(k) for k in payload["skipped_k"])
        )
    _print_run_summary()
    return 0


def _cmd_table1(args):
    rows = tables.run_table1(
        num_planes=args.planes, config=PartitionConfig(engine=args.engine),
        seed=args.seed, method=args.method, refine=args.refine, jobs=args.jobs,
        **_run_opts(args),
    )
    print(tables.format_table1(rows, compare_paper=not args.no_paper))
    _print_run_summary()
    return 0


def _cmd_table2(args):
    reports = tables.run_table2(
        circuit=args.circuit, config=PartitionConfig(engine=args.engine),
        seed=args.seed, method=args.method, refine=args.refine, jobs=args.jobs,
        **_run_opts(args),
    )
    print(tables.format_table2(reports, compare_paper=not args.no_paper))
    _print_run_summary()
    return 0


def _cmd_table3(args):
    rows = tables.run_table3(
        bias_limit_ma=args.limit, seed=args.seed, jobs=args.jobs, **_run_opts(args)
    )
    print(tables.format_table3(rows, compare_paper=not args.no_paper))
    _print_run_summary()
    return 0


def _cmd_cache(args):
    from repro.cache import default_cache

    cache = default_cache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"cache cleared: {removed} entries removed from {cache.path}")
        return 0
    if args.action == "gc":
        from repro.service.gc import run_gc
        from repro.service.store import ResultStore

        store = ResultStore()
        summary = run_gc(
            store,
            max_age=args.max_age,
            keep_latest=args.keep_latest,
            dry_run=args.dry_run,
        )
        verb = "would remove" if summary["dry_run"] else "removed"
        print(
            f"result-store gc: scanned {summary['scanned']} entries, "
            f"kept {summary['kept']}, {verb} {summary['removed']} "
            f"({summary['freed_bytes'] / 1024:.1f} KiB) in {store.path}"
        )
        return 0
    info = cache.info()
    if getattr(args, "json", False):
        import json

        from repro.service.api import schema_versions

        info = dict(info)
        info["versions"] = schema_versions()
        print(json.dumps(info, indent=2))
        return 0
    rows = [
        ["path", info["path"]],
        ["enabled", "yes" if info["enabled"] else "no (REPRO_CACHE=0)"],
        ["entries", info["entries"]],
        ["size", f"{info['bytes'] / 1024:.1f} KiB"],
    ]
    for kind, count in sorted(info["kinds"].items()):
        rows.append([f"entries[{kind}]", count])
    for event, count in sorted(info["stats"].items()):
        rows.append([f"session {event}", count])
    print(ascii_table(["field", "value"], rows, title="on-disk artifact cache"))
    return 0


def _cmd_version(args):
    from repro.service.api import schema_versions

    versions = schema_versions()
    if getattr(args, "json", False):
        import json

        print(json.dumps(versions, indent=2))
        return 0
    rows = [[name, str(value)] for name, value in versions.items()]
    print(ascii_table(["component", "version"], rows, title="repro-gpp versions"))
    return 0


def _cmd_serve(args):
    from repro.service.server import serve

    serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        isolation=args.isolation,
        lease_ttl=args.lease_ttl,
        heartbeat=args.heartbeat,
        verbose=args.verbose,
        tracing=args.trace_requests,
    )
    return 0


def _cmd_worker(args):
    from repro.fleet.worker import FleetWorker

    worker = FleetWorker(
        args.coordinator,
        worker_id=args.id,
        max_inflight=args.max_inflight,
        poll=args.poll,
        verbose=args.verbose,
    )
    print(f"repro-gpp fleet worker {worker.worker_id} ready", flush=True)
    try:
        worker.run()
    except KeyboardInterrupt:
        worker.stop()
    return 0


def _cmd_obs(args):
    import json

    if args.obs_command == "report":
        from repro.obs.export import read_trace_jsonl
        from repro.obs.report import render_waterfall

        parsed = read_trace_jsonl(args.trace_file)
        print(render_waterfall(parsed, request=args.request, width=args.width))
        return 0
    if args.obs_command == "events":
        from repro.obs.events import read_events

        events, corrupt = read_events(args.events_file)
        if args.job:
            events = [e for e in events if e.get("job_id") == args.job]
        for event in events:
            print(json.dumps(event, sort_keys=True))
        if corrupt:
            print(f"({corrupt} corrupt line(s) skipped)", file=sys.stderr)
        return 0
    raise ReproError(f"unknown obs subcommand {args.obs_command!r}")


def _cmd_figure1(args):
    text, _floorplan, _result = figures.figure1(args.circuit, args.planes, seed=args.seed)
    print(text)
    return 0


def _cmd_stats(args):
    netlist = _load_netlist(args.circuit)
    from repro.netlist.stats import netlist_stats

    stats = netlist_stats(netlist)
    rows = [
        ["gates", stats.num_gates],
        ["connections", stats.num_connections],
        ["connections/gate", f"{stats.connections_per_gate:.3f}"],
        ["avg bias", f"{stats.avg_bias_ma:.3f} mA"],
        ["avg area", f"{stats.avg_area_um2:.0f} um2"],
        ["splitter fraction", f"{stats.splitter_fraction * 100:.1f}%"],
        ["DFF fraction", f"{stats.dff_fraction * 100:.1f}%"],
        ["logic fraction", f"{stats.logic_fraction * 100:.1f}%"],
        ["pipeline depth", stats.pipeline_depth],
        ["max degree", stats.max_degree],
        ["locality index", f"{stats.locality:.3f}"],
    ]
    print(ascii_table(["metric", "value"], rows, title=f"netlist statistics: {netlist.name}"))
    mix = ", ".join(f"{name}:{count}" for name, count in sorted(stats.cell_mix.items()))
    print(f"cell mix: {mix}")
    return 0


def _cmd_latency(args):
    netlist = _load_netlist(args.circuit)
    result = tables._partition_with(
        args.method, netlist, args.planes, seed=args.seed, refine=args.refine
    )
    from repro.recycling.latency import analyze_latency

    report = analyze_latency(result)
    rows = [
        ["circuit", report.circuit],
        ["planes", report.num_planes],
        ["base clock", f"{report.base_frequency_ghz:.1f} GHz"],
        ["partitioned clock", f"{report.partitioned_frequency_ghz:.1f} GHz"],
        ["worst crossing", f"{report.worst_edge_distance} boundaries"],
        ["crossing connections", report.crossing_edges],
        ["frequency loss", f"{report.frequency_loss_pct:.1f}%"],
    ]
    print(ascii_table(["metric", "value"], rows, title="coupling latency impact"))
    return 0


def _cmd_simulate(args):
    netlist = _load_netlist(args.circuit)
    from repro.sim import PulseSimulator

    simulator = PulseSimulator(netlist)
    assignments = {}
    for pair in args.set or []:
        if "=" not in pair:
            raise ReproError(f"--set expects name=value, got {pair!r}")
        name, value = pair.split("=", 1)
        assignments[name] = int(value, 0)
    outputs = simulator.run_bus(
        assignments, args.outputs or [p.name for p in netlist.output_ports()]
    )
    rows = [[name, value] for name, value in sorted(outputs.items())]
    print(ascii_table(["output", "value"], rows,
                      title=f"pulse simulation ({simulator.pipeline_depth} cycles)"))
    return 0


def _cmd_convergence(args):
    history, result = figures.convergence_trace(args.circuit, args.planes, seed=args.seed)
    print(figures.render_convergence(history))
    print(
        f"iterations: {result.trace.iterations}, converged: {result.trace.converged}, "
        f"final cost: {history[-1]:.6f}"
    )
    return 0


def _cmd_convergence_report(args):
    """Per-iteration cost-term telemetry of a partition run."""
    from repro.core.partitioner import partition
    from repro.obs import SolverTelemetry, write_telemetry_csv, write_trace_jsonl

    netlist = _load_netlist(args.circuit)
    was_enabled = obs.enabled()
    obs.enable()  # the report needs solver telemetry regardless of flags
    try:
        config = PartitionConfig(engine=args.engine)
        result = partition(netlist, args.planes, config=config, seed=args.seed)
        records = result.trace.telemetry or []
        if not records:
            raise ReproError("solver produced no telemetry (trivial K=1 partition?)")

        if args.output:
            # Export the full run (all restarts), not just the winner.
            run_id = records[0]["run"]
            subset = SolverTelemetry()
            subset.runs = [r for r in obs.OBS.telemetry.runs if r["run"] == run_id]
            subset.records = obs.OBS.telemetry.run_records(run_id)
            if args.format == "csv":
                write_telemetry_csv(args.output, subset)
            else:
                write_trace_jsonl(
                    args.output,
                    telemetry=subset,
                    meta={"command": "convergence-report", "circuit": netlist.name,
                          "planes": args.planes, "engine": args.engine},
                )
            print(f"telemetry written to {args.output} ({len(subset.records)} records)")

        def fmt(value, spec=".6f"):
            return "-" if value is None else format(value, spec)

        shown = records
        if len(records) > args.max_rows > 0:
            # Even subsample that always keeps the first and last iteration.
            step = (len(records) - 1) / (args.max_rows - 1)
            shown = [records[round(i * step)] for i in range(args.max_rows)]
        rows = [
            [
                r["iteration"], fmt(r["f1"]), fmt(r["f2"]), fmt(r["f3"]), fmt(r["f4"]),
                fmt(r["total"]), fmt(r["rel_change"], ".3e"), fmt(r["grad_norm"], ".4f"),
                r["active_restarts"],
            ]
            for r in shown
        ]
        print(
            ascii_table(
                ["iter", "F1", "F2", "F3", "F4", "total", "rel change", "|grad|", "active"],
                rows,
                title=f"convergence report: {netlist.name}, K={args.planes}, "
                f"engine={args.engine} (winning restart)",
            )
        )
        converged = sum(1 for s in result.restart_stats if s["converged"])
        total = len(result.restart_stats)
        print(
            f"winning restart: {records[0]['restart']} | "
            f"iterations: {result.trace.iterations}, converged: {result.trace.converged}"
        )
        print(
            f"restarts: {total}, converged: {converged}/{total} "
            f"({100.0 * converged / total:.0f}%), iterations per restart: "
            + ", ".join(str(s["iterations"]) for s in result.restart_stats)
        )
        return 0
    finally:
        if not was_enabled:
            obs.disable(reset=True)


_JOBS_EPILOG = (
    "Parallelism: --jobs N runs the independent per-circuit solves in N "
    "worker processes (default: the REPRO_JOBS environment variable, else "
    "min(cpus, 8)).  Every jobs value produces bitwise-identical results; "
    "workers share the on-disk artifact cache (REPRO_CACHE_DIR / "
    "REPRO_CACHE=0) and their observability data is merged into the "
    "parent trace.  See docs/performance.md.  Robustness: failed or "
    "timed-out jobs are retried with exponential backoff (--retries / "
    "--timeout, or REPRO_RETRIES / REPRO_JOB_TIMEOUT); --checkpoint FILE "
    "streams completed rows to a JSONL checkpoint and --resume skips them "
    "on a rerun.  See docs/robustness.md."
)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-gpp",
        description="Ground plane partitioning for current recycling of "
        "superconducting circuits (DATE 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("suite", help="list the reconstructed benchmark suite")

    partition_parser = subparsers.add_parser("partition", help="partition a circuit or DEF file")
    partition_parser.add_argument("circuit", help="benchmark name or DEF path")
    _add_common(partition_parser)
    partition_parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    partition_parser.add_argument("--save", metavar="PATH", help="save the partition as JSON")
    for weight, role in (("c1", "interconnect (d<=1)"), ("c2", "bias balance"),
                         ("c3", "area balance"), ("c4", "plane emptiness")):
        partition_parser.add_argument(
            f"--{weight}", type=float, default=None, metavar="W",
            help=f"eq. (8) {role} weight override (gradient method)",
        )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="K x weight-ratio Pareto sweep with per-point energy estimates",
        epilog="Environment: REPRO_SWEEP_CLOCK_GHZ/JOBS/MAX_POINTS set the "
        "sweep knobs (flags win); see docs/planning.md for the sweep "
        "schema, energy model and frontier semantics.",
    )
    sweep_parser.add_argument("circuit", help="benchmark name or DEF path")
    sweep_parser.add_argument(
        "-k", "--k-values", type=_int_list, default=[2, 3, 4, 5], metavar="K1,K2,...",
        help="comma-separated plane counts (default 2,3,4,5); K beyond the "
        "gate count is reported as skipped, not an error",
    )
    sweep_parser.add_argument(
        "--ratios", type=_float_list, default=[0.2, 1.0, 4.0, 16.0], metavar="R1,R2,...",
        help="comma-separated c1 weight multipliers (default 0.2,1,4,16)",
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed (default 0; sweeps are content-addressed, so the "
        "seed must be pinned)",
    )
    sweep_parser.add_argument(
        "--engine", choices=("batched", "loop", "multilevel"), default="batched",
        help="gradient solver engine",
    )
    sweep_parser.add_argument(
        "--clock-ghz", type=_positive_float, default=None, metavar="GHZ",
        help="ERSFQ energy-model clock (default REPRO_SWEEP_CLOCK_GHZ, else 20)",
    )
    sweep_parser.add_argument(
        "--width", type=_positive_int, default=52,
        help="character width of the frontier render (default 52)",
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="emit the sweep payload as JSON"
    )
    _add_jobs(sweep_parser)
    _add_obs(sweep_parser)

    eco_parser = subparsers.add_parser(
        "eco",
        help="incremental re-partition of an edited netlist (warm start)",
        epilog="Environment: REPRO_ECO_HALO/THRESHOLD/QUALITY_EPS set the "
        "incremental-solver knobs (flags win); see docs/eco.md.",
    )
    eco_parser.add_argument("base", help="base circuit: benchmark name, DEF or netlist JSON")
    eco_parser.add_argument("edited", help="edited circuit: benchmark name, DEF or netlist JSON")
    eco_parser.add_argument("-k", "--planes", type=int, default=5, help="number of ground planes")
    eco_parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    eco_parser.add_argument(
        "--engine", choices=("batched", "loop", "multilevel"), default="batched",
        help="gradient solver engine for the cold solves",
    )
    eco_parser.add_argument(
        "--halo", type=_nonnegative_int, default=None,
        help="BFS hops around touched gates to re-solve (default 2)",
    )
    eco_parser.add_argument(
        "--threshold", type=float, default=None,
        help="region fraction above which to fall back to a cold solve (default 0.25)",
    )
    eco_parser.add_argument(
        "--eps", type=float, default=None,
        help="quality guard: warm cost may exceed carried cost by this fraction (default 0.05)",
    )
    eco_parser.add_argument("--json", action="store_true", help="emit the comparison as JSON")
    _add_obs(eco_parser)

    stats_parser = subparsers.add_parser("stats", help="structural statistics of a circuit")
    stats_parser.add_argument("circuit", help="benchmark name or DEF path")

    latency_parser = subparsers.add_parser("latency", help="coupling latency impact of a partition")
    latency_parser.add_argument("circuit", help="benchmark name or DEF path")
    _add_common(latency_parser)

    simulate_parser = subparsers.add_parser("simulate", help="pulse-simulate a circuit")
    simulate_parser.add_argument("circuit", help="benchmark name or DEF path")
    simulate_parser.add_argument(
        "--set", action="append", metavar="BUS=VALUE",
        help="input bus/pin assignment, e.g. --set a=11 --set b=0x2f",
    )
    simulate_parser.add_argument(
        "--outputs", nargs="*", metavar="BUS", help="output buses to report (default: all pins)"
    )

    table1_parser = subparsers.add_parser(
        "table1", help="regenerate Table I", epilog=_JOBS_EPILOG
    )
    _add_common(table1_parser)
    _add_jobs(table1_parser)
    table1_parser.add_argument("--no-paper", action="store_true", help="omit paper rows")

    table2_parser = subparsers.add_parser(
        "table2", help="regenerate Table II", epilog=_JOBS_EPILOG
    )
    table2_parser.add_argument("--circuit", default="KSA4")
    _add_common(table2_parser)
    _add_jobs(table2_parser)
    table2_parser.add_argument("--no-paper", action="store_true")

    table3_parser = subparsers.add_parser(
        "table3", help="regenerate Table III", epilog=_JOBS_EPILOG
    )
    table3_parser.add_argument("--limit", type=float, default=100.0, help="pad current limit (mA)")
    table3_parser.add_argument("--seed", type=int, default=None)
    _add_jobs(table3_parser)
    table3_parser.add_argument("--no-paper", action="store_true")

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or clear the on-disk artifact cache",
        epilog="Environment: REPRO_CACHE_DIR overrides the cache root "
        "(default ~/.cache/repro-gpp); REPRO_CACHE=0 disables the cache "
        "entirely.  'clear' only removes the repro namespace directory, "
        "never anything else under the root.  'gc' walks the *service "
        "result store* namespace and drops entries that are neither "
        "live (per --max-age / --keep-latest) nor a base_key ancestor "
        "of a live ECO chain entry.",
    )
    cache_parser.add_argument(
        "action", choices=("info", "clear", "gc"), help="what to do"
    )
    cache_parser.add_argument(
        "--json", action="store_true",
        help="emit 'info' as JSON (includes every data-format schema version)",
    )
    cache_parser.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="gc: entries younger than this stay live",
    )
    cache_parser.add_argument(
        "--keep-latest", type=int, default=None, metavar="N",
        help="gc: the N newest entries of each ECO chain stay live",
    )
    cache_parser.add_argument(
        "--dry-run", action="store_true",
        help="gc: report what would be removed without deleting",
    )

    version_parser = subparsers.add_parser(
        "version", help="package version and data-format schema versions"
    )
    version_parser.add_argument("--json", action="store_true", help="emit as JSON")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the partitioning HTTP service",
        epilog="Environment: REPRO_SERVICE_HOST/PORT/WORKERS/QUEUE/"
        "RETRY_AFTER/STORE/ISOLATION configure the service (flags win); "
        "see docs/service.md for the API and the full knob table.",
    )
    serve_parser.add_argument("--host", default=None, help="bind address (default 127.0.0.1)")
    serve_parser.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default 8731; 0 = pick a free port)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None,
        help="job-executing worker threads (default min(cpus, 4))",
    )
    serve_parser.add_argument(
        "--queue-size", type=int, default=None,
        help="max queued jobs before 429 backpressure (default 64)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-job-attempt wall-clock limit in seconds "
        "(enforced in --isolation process mode)",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=None,
        help="retries per failed job (default REPRO_RETRIES, else 2)",
    )
    serve_parser.add_argument(
        "--backoff", type=float, default=None,
        help="base seconds of exponential retry backoff "
        "(default REPRO_RETRY_BACKOFF)",
    )
    serve_parser.add_argument(
        "--lease-ttl", type=float, default=None,
        help="fleet lease deadline in seconds; an unheartbeated lease "
        "expires and requeues after this long "
        "(default REPRO_FLEET_LEASE_TTL, else 30)",
    )
    serve_parser.add_argument(
        "--heartbeat", type=float, default=None,
        help="fleet heartbeat period handed to workers "
        "(default REPRO_FLEET_HEARTBEAT, else lease-ttl/3)",
    )
    serve_parser.add_argument(
        "--isolation", choices=("inline", "process", "fleet"), default=None,
        help="run solves in the worker thread (inline), a worker "
        "process (crash isolation + hard deadlines), or dispatch them "
        "to fleet worker nodes over /fleet/v1 (see 'worker')",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_parser.add_argument(
        "--trace-requests", action="store_true",
        help="record per-job phase spans and solver spans under each "
        "request's trace context (serializes solves; debugging aid)",
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help="run a fleet worker node against a coordinator",
        epilog="Environment: REPRO_FLEET_WORKER_ID/MAX_INFLIGHT/POLL "
        "configure the node (flags win); REPRO_FLEET_LEASE_TTL/"
        "HEARTBEAT are coordinator-side.  The coordinator is a 'serve' "
        "instance started with --isolation fleet; see docs/fleet.md.",
    )
    worker_parser.add_argument(
        "--coordinator", required=True, metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8731",
    )
    worker_parser.add_argument(
        "--id", default=None,
        help="worker id (default REPRO_FLEET_WORKER_ID, else <hostname>-<pid>)",
    )
    worker_parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="jobs leased per round trip (default 2)",
    )
    worker_parser.add_argument(
        "--poll", type=float, default=None,
        help="idle lease long-poll seconds (default 2)",
    )
    worker_parser.add_argument(
        "--verbose", action="store_true", help="log every lease and completion"
    )

    obs_parser = subparsers.add_parser(
        "obs",
        help="inspect exported observability artifacts",
        epilog="See docs/observability.md for the trace-file and "
        "event-log schemas.",
    )
    obs_subparsers = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report_parser = obs_subparsers.add_parser(
        "report", help="render per-request span waterfalls from a JSONL trace"
    )
    obs_report_parser.add_argument("trace_file", help="JSONL trace path")
    obs_report_parser.add_argument(
        "--request", default=None, metavar="ID",
        help="only render this request id",
    )
    obs_report_parser.add_argument(
        "--width", type=_positive_int, default=48,
        help="character width of the time axis (default 48)",
    )
    obs_events_parser = obs_subparsers.add_parser(
        "events", help="pretty-print a JSONL job event log"
    )
    obs_events_parser.add_argument("events_file", help="JSONL event-log path")
    obs_events_parser.add_argument(
        "--job", default=None, metavar="ID", help="only print this job's events"
    )

    figure1_parser = subparsers.add_parser("figure1", help="render the Fig. 1 floorplan")
    figure1_parser.add_argument("circuit", nargs="?", default="KSA4")
    _add_common(figure1_parser)

    convergence_parser = subparsers.add_parser("convergence", help="convergence figure")
    convergence_parser.add_argument("circuit", nargs="?", default="KSA8")
    _add_common(convergence_parser)

    report_parser = subparsers.add_parser(
        "convergence-report",
        help="per-iteration F1..F4 solver telemetry of a partition run",
    )
    report_parser.add_argument("circuit", nargs="?", default="KSA8")
    report_parser.add_argument("-k", "--planes", type=int, default=5)
    report_parser.add_argument("--seed", type=int, default=None)
    report_parser.add_argument(
        "--engine", choices=("batched", "loop", "multilevel"), default="batched",
        help="solver engine",
    )
    report_parser.add_argument(
        "--format", choices=("jsonl", "csv"), default="jsonl", help="--output file format"
    )
    report_parser.add_argument(
        "--output", metavar="FILE", default=None, help="write full telemetry (all restarts)"
    )
    report_parser.add_argument(
        "--max-rows", type=int, default=24,
        help="cap on printed iteration rows (0 = print all)",
    )
    _add_obs(report_parser)

    return parser


_COMMANDS = {
    "suite": _cmd_suite,
    "partition": _cmd_partition,
    "eco": _cmd_eco,
    "sweep": _cmd_sweep,
    "stats": _cmd_stats,
    "latency": _cmd_latency,
    "simulate": _cmd_simulate,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "cache": _cmd_cache,
    "version": _cmd_version,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "obs": _cmd_obs,
    "figure1": _cmd_figure1,
    "convergence": _cmd_convergence,
    "convergence-report": _cmd_convergence_report,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None) or obs.env_trace_path()
    profile = getattr(args, "profile", False)
    capture = bool(trace_path) or profile or obs.apply_env()
    if capture:
        obs.enable()
        if obs.context_enabled() and obs.OBS.trace.context is None:
            # Root every span of this invocation in one trace so the
            # exported JSONL replays as a single connected tree.
            obs.OBS.trace.context = obs.TraceContext.new()
    try:
        code = _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        if args.command.startswith("table"):
            _print_run_summary()
        code = 2
    finally:
        if capture:
            if profile:
                print()
                print(obs.OBS.trace.render_table())
                print()
                print(obs.OBS.metrics.render_table())
            if trace_path:
                lines = obs.write_trace_jsonl(
                    trace_path,
                    tracer=obs.OBS.trace,
                    metrics=obs.OBS.metrics,
                    telemetry=obs.OBS.telemetry,
                    meta={"command": args.command, "circuit": getattr(args, "circuit", None)},
                )
                print(f"trace written to {trace_path} ({lines} records)")
            obs.disable(reset=True)
    return code


if __name__ == "__main__":
    sys.exit(main())
