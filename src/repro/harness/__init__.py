"""Reproduction harness: regenerate every table and figure of the paper.

* :mod:`repro.harness.tables` — Tables I, II and III;
* :mod:`repro.harness.figures` — the Fig. 1 floorplan and the
  gradient-descent convergence figure;
* :mod:`repro.harness.formatting` — ASCII table rendering;
* :mod:`repro.harness.cli` — the ``repro-gpp`` command-line tool.
"""

from repro.harness.tables import (
    Table1Row,
    Table3Row,
    run_table1,
    run_table2,
    run_table3,
    format_table1,
    format_table2,
    format_table3,
    PARTITION_METHODS,
)
from repro.harness.figures import figure1, convergence_trace, render_convergence, distance_histogram_figure
from repro.harness.formatting import ascii_table

__all__ = [
    "Table1Row",
    "Table3Row",
    "run_table1",
    "run_table2",
    "run_table3",
    "format_table1",
    "format_table2",
    "format_table3",
    "PARTITION_METHODS",
    "figure1",
    "convergence_trace",
    "render_convergence",
    "distance_histogram_figure",
    "ascii_table",
]
