"""Process-parallel suite runner.

The table/benchmark drivers all share one shape of work: a list of
independent ``(circuit, K, method, seed)`` solves whose outputs are
deterministic functions of their inputs (every solve builds a fresh RNG
from its seed; no state crosses items).  This module decomposes that
shape into :class:`SuiteJob` descriptions and fans them out over a
``ProcessPoolExecutor``:

* **bitwise determinism** — a worker executes *exactly* the code the
  sequential loop runs (:func:`execute_job` is the single
  implementation; ``--jobs 1`` calls it inline, ``--jobs N`` calls it in
  a pool), so reports and labels are bit-identical for any jobs count.
  The CI determinism job and ``tests/test_runner.py`` enforce this.
* **observability across processes** — when capture is on, each worker
  resets the process-local :data:`repro.obs.OBS` singleton, records the
  job, and ships a :func:`repro.obs.snapshot` back with its payload; the
  parent folds snapshots in job-index order via
  :func:`repro.obs.merge_snapshot` (exactly-once per origin, so retries
  or repeated merges never double-count).
* **caching synergy** — workers build netlists through
  :func:`repro.circuits.suite.build_circuit`, so they share the on-disk
  artifact cache (:mod:`repro.cache`); a warm cache turns each worker's
  synthesis step into a cheap load.

The jobs count resolves as: explicit argument > ``REPRO_JOBS``
environment variable > ``min(os.cpu_count(), 8)``.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial

from repro.obs import OBS, merge_snapshot
from repro.utils.errors import ReproError

#: Upper bound of the automatic jobs default; beyond this the suite is
#: typically cache/IO bound and extra workers only add startup cost.
DEFAULT_MAX_JOBS = 8


def resolve_jobs(jobs=None, environ=None):
    """Resolve an effective worker count (always >= 1).

    ``jobs=None`` (or 0) consults the ``REPRO_JOBS`` environment
    variable, then falls back to ``min(os.cpu_count(), 8)``.
    """
    if jobs in (None, 0):
        value = (environ if environ is not None else os.environ).get(
            "REPRO_JOBS", ""
        ).strip()
        if value:
            try:
                jobs = int(value)
            except ValueError:
                raise ReproError(f"REPRO_JOBS must be an integer, got {value!r}") from None
        else:
            jobs = min(os.cpu_count() or 1, DEFAULT_MAX_JOBS)
    jobs = int(jobs)
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class SuiteJob:
    """One independent unit of suite work.

    ``kind="partition"`` partitions ``circuit`` into ``num_planes``
    planes with ``method`` (the table1/table2 item);
    ``kind="plan"`` searches the smallest feasible K under
    ``bias_limit_ma`` (the table3 item).
    """

    kind: str
    circuit: str
    num_planes: int = None
    method: str = "gradient"
    seed: object = None
    config: object = None
    refine: bool = False
    bias_limit_ma: float = 100.0

    def __post_init__(self):
        if self.kind not in ("partition", "plan"):
            raise ReproError(f"unknown job kind {self.kind!r}")
        if self.kind == "partition" and self.num_planes is None:
            raise ReproError("partition jobs need num_planes")


def execute_job(job):
    """Run one job in this process; returns a plain payload dict.

    This is the *only* implementation of a job — the sequential path and
    the pool workers both call it, which is what makes ``--jobs N``
    bitwise-identical to ``--jobs 1``.
    """
    # Deferred imports: keep worker startup light and avoid an import
    # cycle (tables imports this module for run_jobs).
    from repro.circuits.suite import build_circuit
    from repro.metrics.report import evaluate_partition

    netlist = build_circuit(job.circuit)
    if job.kind == "plan":
        from repro.core.planner import plan_bias_limited

        plan = plan_bias_limited(
            netlist,
            bias_limit_ma=job.bias_limit_ma,
            config=job.config,
            seed=job.seed,
        )
        return {
            "circuit": job.circuit,
            "report": evaluate_partition(plan.result),
            "labels": plan.result.labels,
            "k_lb": plan.k_lb,
            "k_res": plan.k_res,
            "bias_lines_saved": plan.bias_lines_saved,
        }

    from repro.harness.tables import _partition_with

    result = _partition_with(
        job.method,
        netlist,
        job.num_planes,
        config=job.config,
        seed=job.seed,
        refine=job.refine,
    )
    return {
        "circuit": job.circuit,
        "report": evaluate_partition(result),
        "labels": result.labels,
    }


def _worker_run(capture, job):
    """Pool entry point: execute one job with a fresh obs window."""
    OBS.reset()
    if capture:
        OBS.enable()
    payload = execute_job(job)
    snap = OBS.snapshot() if capture else None
    return payload, snap


def run_jobs(job_list, jobs=None):
    """Execute jobs (inline or in a process pool); payloads in job order.

    With an effective worker count of 1 — or a single job — everything
    runs inline in this process and observability flows straight into
    the live singleton.  Otherwise a ``ProcessPoolExecutor`` runs
    :func:`execute_job` per job and worker obs snapshots are merged into
    the parent registry in job-index order.
    """
    job_list = list(job_list)
    jobs = resolve_jobs(jobs)
    if OBS.enabled:
        OBS.metrics.counter("runner.jobs_submitted").inc(len(job_list))
        OBS.metrics.gauge("runner.workers").set(min(jobs, max(len(job_list), 1)))
    if jobs == 1 or len(job_list) <= 1:
        return [execute_job(job) for job in job_list]

    capture = OBS.enabled
    with OBS.trace.span("runner.pool", jobs=min(jobs, len(job_list)), items=len(job_list)):
        with ProcessPoolExecutor(max_workers=min(jobs, len(job_list))) as pool:
            # map() preserves submission order, so payloads line up with
            # job_list and snapshots merge deterministically.
            results = list(pool.map(partial(_worker_run, capture), job_list, chunksize=1))
    payloads = []
    for payload, snap in results:
        payloads.append(payload)
        if snap is not None:
            merge_snapshot(snap)
    return payloads
