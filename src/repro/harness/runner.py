"""Process-parallel suite runner with fault tolerance.

The table/benchmark drivers all share one shape of work: a list of
independent ``(circuit, K, method, seed)`` solves whose outputs are
deterministic functions of their inputs (every solve builds a fresh RNG
from its seed; no state crosses items).  This module decomposes that
shape into :class:`SuiteJob` descriptions and fans them out over a
``ProcessPoolExecutor``:

* **bitwise determinism** — a worker executes *exactly* the code the
  sequential loop runs (:func:`execute_job` is the single
  implementation; ``--jobs 1`` calls it inline, ``--jobs N`` calls it in
  a pool), so reports and labels are bit-identical for any jobs count.
  The CI determinism job and ``tests/test_runner.py`` enforce this.
* **fault tolerance** — a production-scale suite is thousands of jobs;
  a single crashed, hung or corrupted worker must degrade the run, not
  destroy it.  Every job attempt is classified into a structured error
  taxonomy (:data:`JOB_ERROR_KINDS`: ``crashed`` / ``timed-out`` /
  ``invalid-result`` / ``cache-corrupt``), retried up to ``retries``
  times with exponential backoff, and recorded in the
  :class:`RunReport` plus the obs metrics registry
  (``runner.failures.*``, ``runner.retries``).  A per-job ``timeout``
  tears the pool down (terminating the hung worker) and resubmits the
  survivors; only jobs that exhaust their retries raise
  :class:`JobError`.  See docs/robustness.md.
* **checkpoint/resume** — validated payloads stream to a JSONL
  checkpoint (:mod:`repro.harness.checkpoint`, content-keyed like the
  artifact cache) as they complete, so an interrupted run resumed with
  ``--resume`` re-executes only the missing jobs and assembles rows
  bitwise identical to an uninterrupted run.
* **deterministic fault injection** — the ``REPRO_FAULT`` environment
  variable / the :class:`~repro.harness.faults.FaultPlan` test API
  make chosen job attempts crash, hang, hard-exit or return corrupt
  payloads, so the recovery paths above are exercised by tests and the
  CI chaos job, not just by real failures.
* **observability across processes** — when capture is on, each worker
  resets the process-local :data:`repro.obs.OBS` singleton, records the
  job, and ships a :func:`repro.obs.snapshot` back with its payload; the
  parent folds the snapshot of each job's *successful* attempt in
  job-index order via :func:`repro.obs.merge_snapshot` (exactly-once
  per origin, so retries or repeated merges never double-count).
* **caching synergy** — workers build netlists through
  :func:`repro.circuits.suite.build_circuit`, so they share the on-disk
  artifact cache (:mod:`repro.cache`); a warm cache turns each worker's
  synthesis step into a cheap load.

The jobs count resolves as: explicit argument > ``REPRO_JOBS``
environment variable > ``min(os.cpu_count(), 8)``.  Retry/timeout knobs
resolve the same way: explicit argument > ``REPRO_RETRIES`` /
``REPRO_JOB_TIMEOUT`` / ``REPRO_RETRY_BACKOFF`` > defaults (2 retries,
no timeout, 0.05 s backoff base).
"""

import os
import time
import uuid
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro import envcfg
from repro.harness import faults as fault_mod
from repro.harness.checkpoint import SuiteCheckpoint, job_key
from repro.obs import OBS, TraceContext, merge_snapshot
from repro.obs import events as obs_events
from repro.utils.errors import CacheCorruptError, ReproError

#: Upper bound of the automatic jobs default; beyond this the suite is
#: typically cache/IO bound and extra workers only add startup cost.
DEFAULT_MAX_JOBS = 8

#: Default number of retries per job (additional attempts after the first).
DEFAULT_RETRIES = 2

#: Default exponential-backoff base delay in seconds: a job's n-th retry
#: waits ``backoff * 2**(n-1)`` before resubmission.
DEFAULT_BACKOFF = 0.05

#: The structured error taxonomy of job-attempt failures.
JOB_ERROR_KINDS = ("crashed", "timed-out", "invalid-result", "cache-corrupt")


def resolve_jobs(jobs=None, environ=None):
    """Resolve an effective worker count (always >= 1).

    ``jobs=None`` (or 0) consults the ``REPRO_JOBS`` environment
    variable, then falls back to ``min(os.cpu_count(), 8)``.
    """
    if jobs in (None, 0):
        value = envcfg.number(
            "REPRO_JOBS", int, lambda v: v >= 1, "an integer >= 1", environ
        )
        jobs = value if value is not None else min(os.cpu_count() or 1, DEFAULT_MAX_JOBS)
    jobs = int(jobs)
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_timeout(timeout=None, environ=None):
    """Per-job timeout in seconds: explicit > ``REPRO_JOB_TIMEOUT`` > None."""
    if timeout is not None:
        timeout = float(timeout)
        if not timeout > 0:
            raise ReproError(f"timeout must be > 0 seconds, got {timeout}")
        return timeout
    return envcfg.number(
        "REPRO_JOB_TIMEOUT", float, lambda v: v > 0, "a number of seconds > 0", environ
    )


def resolve_retries(retries=None, environ=None):
    """Retries per job: explicit > ``REPRO_RETRIES`` > ``DEFAULT_RETRIES``."""
    if retries is not None:
        retries = int(retries)
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        return retries
    value = envcfg.number(
        "REPRO_RETRIES", int, lambda v: v >= 0, "an integer >= 0", environ
    )
    return DEFAULT_RETRIES if value is None else value


def resolve_backoff(backoff=None, environ=None):
    """Backoff base seconds: explicit > ``REPRO_RETRY_BACKOFF`` > default."""
    if backoff is not None:
        backoff = float(backoff)
        if backoff < 0:
            raise ReproError(f"backoff must be >= 0 seconds, got {backoff}")
        return backoff
    value = envcfg.number(
        "REPRO_RETRY_BACKOFF", float, lambda v: v >= 0, "a number of seconds >= 0", environ
    )
    return DEFAULT_BACKOFF if value is None else value


@dataclass(frozen=True)
class SuiteJob:
    """One independent unit of suite work.

    ``kind="partition"`` partitions ``circuit`` into ``num_planes``
    planes with ``method`` (the table1/table2 item);
    ``kind="plan"`` searches the smallest feasible K under
    ``bias_limit_ma`` (the table3 item); ``kind="eco"`` re-partitions an
    edited netlist warm-started from a previous assignment
    (:func:`repro.core.incremental.incremental_partition`) — it requires
    ``netlist_json`` (the edited netlist), ``prev_labels`` (previous
    plane per gate in edited gate order, ``-1`` for new gates) and an
    ``eco`` dict carrying ``touched`` gate names plus optional
    ``halo``/``threshold``/``quality_eps`` knob overrides.

    ``circuit`` normally names a suite generator (resolved through
    :func:`repro.circuits.suite.build_circuit`); a job may instead carry
    a whole serialized netlist in ``netlist_json`` (the
    :func:`repro.netlist.serialize.netlist_to_dict` form, rebuilt
    against the default library) — the partitioning service uses this
    for inline-netlist submissions.  ``circuit`` must then equal the
    serialized netlist's name.

    ``pinned`` optionally maps gate names to plane indices (hard
    constraints; gradient method only).

    ``trace_context`` optionally carries a
    :meth:`repro.obs.context.TraceContext.to_wire` dict into the pool
    worker executing this job, so worker-side spans re-parent under the
    originating request's span tree (the partitioning service sets it).
    It never participates in content keys (checkpoint ``job_key`` and
    mega-batch ``job_pack_key`` enumerate their fields explicitly) and
    never influences the produced payload.
    """

    kind: str
    circuit: str
    num_planes: int = None
    method: str = "gradient"
    seed: object = None
    config: object = None
    refine: bool = False
    bias_limit_ma: float = 100.0
    netlist_json: object = None
    pinned: object = None
    trace_context: object = None
    prev_labels: object = None
    eco: object = None

    def __post_init__(self):
        if self.kind not in ("partition", "plan", "eco"):
            raise ReproError(f"unknown job kind {self.kind!r}")
        if self.kind in ("partition", "eco") and self.num_planes is None:
            raise ReproError(f"{self.kind} jobs need num_planes")
        if self.pinned is not None and self.kind not in ("partition", "eco"):
            raise ReproError("pinned gates only apply to partition jobs")
        if self.kind == "eco":
            if self.netlist_json is None:
                raise ReproError("eco jobs need the edited netlist in netlist_json")
            if self.prev_labels is None:
                raise ReproError("eco jobs need prev_labels")
            if not isinstance(self.eco, dict):
                raise ReproError("eco jobs need an eco parameter dict")
        elif self.prev_labels is not None or self.eco is not None:
            raise ReproError("prev_labels/eco only apply to eco jobs")
        if self.netlist_json is not None:
            name = self.netlist_json.get("name") if isinstance(self.netlist_json, dict) else None
            if name != self.circuit:
                raise ReproError(
                    f"job circuit {self.circuit!r} != inline netlist name {name!r}"
                )


@dataclass(frozen=True)
class JobFailure:
    """One failed attempt of one job, classified into the taxonomy.

    ``index`` is the job's position in the submitted list (``-1`` for
    failures not attributable to a job, e.g. corrupt checkpoint lines);
    ``attempt`` is 1-based.
    """

    index: int
    kind: str
    attempt: int
    message: str

    def __post_init__(self):
        if self.kind not in JOB_ERROR_KINDS:
            raise ReproError(
                f"unknown failure kind {self.kind!r}; expected one of {JOB_ERROR_KINDS}"
            )


class JobError(ReproError):
    """Raised when at least one job exhausted its retries.

    ``failures`` carries every recorded :class:`JobFailure` of the run
    (including those of jobs that eventually recovered), so callers can
    inspect the full history.
    """

    def __init__(self, message, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)


@dataclass
class RunReport:
    """Outcome summary of one :func:`run_jobs` call.

    ``failures`` lists every failed attempt (recovered or not);
    ``failed_jobs`` the indices that exhausted retries (empty on a
    successful run — :func:`run_jobs` raises before returning
    otherwise).
    """

    total: int = 0
    executed: int = 0
    from_checkpoint: int = 0
    retries: int = 0
    failures: list = field(default_factory=list)
    failed_jobs: list = field(default_factory=list)
    checkpoint_path: str = None
    checkpoint_corrupt_lines: int = 0

    def failure_counts(self):
        """``{kind: count}`` over :attr:`failures`."""
        counts = {}
        for failure in self.failures:
            counts[failure.kind] = counts.get(failure.kind, 0) + 1
        return counts

    def summary(self):
        """One human line: totals, checkpoint reuse, retry/failure mix."""
        parts = [f"{self.total} jobs"]
        if self.from_checkpoint:
            parts.append(f"{self.from_checkpoint} from checkpoint")
        if self.retries:
            mix = ", ".join(
                f"{kind} x{count}" for kind, count in sorted(self.failure_counts().items())
            )
            parts.append(f"{self.retries} retried ({mix})")
        if self.checkpoint_corrupt_lines:
            parts.append(f"{self.checkpoint_corrupt_lines} corrupt checkpoint lines skipped")
        if self.failed_jobs:
            parts.append(f"{len(self.failed_jobs)} FAILED")
        return "suite run: " + ", ".join(parts)


#: The report of the most recent :func:`run_jobs` call in this process
#: (successful or not); the CLI uses it to print a run summary.
_LAST_REPORT = None


def last_report():
    """The :class:`RunReport` of the most recent run, or ``None``."""
    return _LAST_REPORT


def execute_job(job):
    """Run one job in this process; returns a plain payload dict.

    This is the *only* implementation of a job — the sequential path and
    the pool workers both call it, which is what makes ``--jobs N``
    bitwise-identical to ``--jobs 1``.
    """
    # Deferred imports: keep worker startup light and avoid an import
    # cycle (tables imports this module for run_jobs).
    from repro.circuits.suite import build_circuit
    from repro.metrics.report import evaluate_partition

    if job.netlist_json is not None:
        from repro.netlist.library import default_library
        from repro.netlist.serialize import netlist_from_dict

        # validate=False: every netlist_json reaching a job was already
        # structurally validated at its entry boundary (the service API
        # validates POST bodies; PATCH edits come out of apply_diff).
        netlist = netlist_from_dict(
            job.netlist_json, default_library(), validate=False
        )
    else:
        netlist = build_circuit(job.circuit)
    if job.kind == "plan":
        from repro.core.planner import plan_bias_limited

        plan = plan_bias_limited(
            netlist,
            bias_limit_ma=job.bias_limit_ma,
            config=job.config,
            seed=job.seed,
        )
        return {
            "circuit": job.circuit,
            "report": evaluate_partition(plan.result),
            "labels": plan.result.labels,
            "k_lb": plan.k_lb,
            "k_res": plan.k_res,
            "bias_lines_saved": plan.bias_lines_saved,
        }

    if job.kind == "eco":
        from repro.core.incremental import incremental_partition

        params = job.eco
        result, info = incremental_partition(
            netlist,
            job.num_planes,
            prev_labels=np.asarray(job.prev_labels, dtype=np.intp),
            touched=params.get("touched", ()),
            config=job.config,
            seed=job.seed,
            pinned=job.pinned,
            halo=params.get("halo"),
            threshold=params.get("threshold"),
            quality_eps=params.get("quality_eps"),
        )
        return {
            "circuit": job.circuit,
            "report": evaluate_partition(result),
            "labels": result.labels,
            "eco": info,
        }

    from repro.harness.tables import _partition_with

    result = _partition_with(
        job.method,
        netlist,
        job.num_planes,
        config=job.config,
        seed=job.seed,
        refine=job.refine,
        pinned=job.pinned,
    )
    return {
        "circuit": job.circuit,
        "report": evaluate_partition(result),
        "labels": result.labels,
    }


def validate_payload(job, payload):
    """Why ``payload`` is structurally invalid for ``job``, or ``None``.

    A worker returning garbage (bit-flip, fault injection, version
    skew) must surface as an ``invalid-result`` failure — and be
    retried — rather than crash the table assembly later.
    """
    if not isinstance(payload, dict):
        return f"payload is {type(payload).__name__}, not a dict"
    if payload.get("circuit") != job.circuit:
        return f"payload circuit {payload.get('circuit')!r} != job circuit {job.circuit!r}"
    report = payload.get("report")
    if report is None:
        return "payload has no report"
    try:
        labels = np.asarray(payload.get("labels"), dtype=np.intp)
    except (TypeError, ValueError):
        return "payload labels are not an integer array"
    num_gates = getattr(report, "num_gates", None)
    if labels.ndim != 1 or labels.shape[0] != num_gates:
        return f"payload labels shape {labels.shape} does not match report gates {num_gates}"
    if job.kind == "plan":
        for name in ("k_lb", "k_res", "bias_lines_saved"):
            if not isinstance(payload.get(name), (int, np.integer)):
                return f"plan payload field {name!r} missing or not an integer"
    if job.kind == "eco":
        info = payload.get("eco")
        if not isinstance(info, dict):
            return "eco payload has no eco info dict"
        if info.get("mode") not in ("warm", "cold"):
            return f"eco payload mode {info.get('mode')!r} is not warm|cold"
    return None


def _classify_exception(exc):
    """Map a worker exception onto the error taxonomy."""
    if isinstance(exc, CacheCorruptError):
        return "cache-corrupt"
    return "crashed"


def _worker_run(capture, plan, run_id, index, attempt, job, base_ctx=None):
    """Pool entry point: execute one job attempt with a fresh obs window.

    ``base_ctx`` is the parent process's trace-context wire dict (when
    it had one); a job's own ``trace_context`` wins over it.  An active
    context is namespaced by ``job<index>/a<attempt>`` so concurrent
    workers (and retried attempts) derive disjoint span ids that all
    parent back to the carried span — and it force-enables capture even
    when the parent had tracing off, because a context is only ever
    attached by a caller that wants the worker's spans back.
    """
    OBS.reset()
    wire = job.trace_context if job.trace_context is not None else base_ctx
    ctx = TraceContext.from_wire(wire) if wire is not None else None
    if ctx is not None:
        ctx = ctx.namespaced(f"job{index}/a{attempt}")
    if capture or ctx is not None:
        OBS.enable()
        if ctx is not None:
            OBS.trace.context = ctx
    else:
        OBS.disable()
    kind = plan.fault_for(index, attempt) if plan is not None else None
    if kind is not None and kind != "corrupt":
        fault_mod.raise_fault(kind)
    payload = execute_job(job)
    if kind == "corrupt":
        payload = fault_mod.corrupt_payload(payload)
    snap = (
        OBS.snapshot(origin=f"{run_id}/job{index}/a{attempt}")
        if OBS.enabled
        else None
    )
    return payload, snap


def _shutdown_pool(pool, kill=False):
    """Shut a pool down without waiting; optionally terminate its workers.

    ``cancel_futures=True`` drops everything still queued, so a
    ``KeyboardInterrupt`` (or a timeout teardown) never leaves orphaned
    work behind; ``kill=True`` additionally terminates the worker
    processes — the only way to stop a hung worker.
    """
    if not kill:
        pool.shutdown(wait=True, cancel_futures=True)
        return
    # ProcessPoolExecutor offers no public kill switch; terminating the
    # private process table is the accepted escape hatch for abandoning
    # hung workers.  Grab it before shutdown() — which nulls the
    # attribute — and the short join reaps them so no zombies linger.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=5)
        except Exception:
            pass


class _RunState:
    """Mutable bookkeeping of one :func:`run_jobs` call."""

    def __init__(self, job_list, retries, backoff, report):
        self.job_list = job_list
        self.retries = retries
        self.backoff = backoff
        self.report = report
        self.results = {}      # index -> validated payload
        self.snaps = {}        # index -> obs snapshot of the successful attempt
        self.attempts = {}     # index -> failed-attempt count so far
        self.keys = None       # index -> job key (when checkpointing)
        self.checkpoint = None

    def record_failure(self, index, kind, message):
        """Charge one failed attempt; returns the backoff delay for a
        retry, or ``None`` when the job just exhausted its retries."""
        attempt = self.attempts.get(index, 0) + 1
        self.attempts[index] = attempt
        self.report.failures.append(
            JobFailure(index=index, kind=kind, attempt=attempt, message=str(message))
        )
        if OBS.enabled:
            OBS.metrics.counter(
                "runner.failures." + kind.replace("-", "_")
            ).inc()
        log = obs_events.default_events()
        retrying = attempt <= self.retries
        if log.enabled:
            log.emit(
                "runner.attempt_failed" if retrying else "runner.job_failed",
                circuit=self.job_list[index].circuit,
                index=index, kind=kind, attempt=attempt,
            )
        if retrying:
            self.report.retries += 1
            if OBS.enabled:
                OBS.metrics.counter("runner.retries").inc()
            return self.backoff * (2.0 ** (attempt - 1))
        self.report.failed_jobs.append(index)
        return None

    def accept(self, index, payload, snap=None):
        """Record a validated payload (and checkpoint it)."""
        self.results[index] = payload
        if snap is not None:
            self.snaps[index] = snap
        self.report.executed += 1
        log = obs_events.default_events()
        if log.enabled:
            log.emit(
                "runner.job_completed",
                circuit=self.job_list[index].circuit,
                index=index, attempt=self.attempts.get(index, 0) + 1,
            )
        if self.checkpoint is not None:
            self.checkpoint.append(self.keys[index], payload)
            if OBS.enabled:
                OBS.metrics.counter("runner.checkpoint.appended").inc()

    def next_attempt(self, index):
        return self.attempts.get(index, 0) + 1


def _run_inline(state, pending, plan):
    """Sequential execution with the same retry/validation semantics.

    Timeouts are not enforced inline (there is no second process to
    watch the clock); an injected ``hang`` is recorded as a
    ``timed-out`` failure without sleeping so inline fault tests stay
    fast, and ``kill`` degrades to ``crash`` (hard-exiting the caller's
    process would be worse than the fault being simulated).
    """
    for index in pending:
        job = state.job_list[index]
        while True:
            attempt = state.next_attempt(index)
            kind = plan.fault_for(index, attempt) if plan is not None else None
            delay = None
            if kind in ("hang",):
                delay = state.record_failure(index, "timed-out", "injected hang (inline)")
            else:
                try:
                    if kind in ("crash", "kill"):
                        raise fault_mod.InjectedFault(f"injected {kind} (inline)")
                    if kind == "interrupt":
                        raise KeyboardInterrupt("injected interrupt")
                    payload = execute_job(job)
                    if kind == "corrupt":
                        payload = fault_mod.corrupt_payload(payload)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    delay = state.record_failure(index, _classify_exception(exc), exc)
                else:
                    reason = validate_payload(job, payload)
                    if reason is None:
                        state.accept(index, payload)
                        break
                    delay = state.record_failure(index, "invalid-result", reason)
            if delay is None:
                break  # retries exhausted; finalization raises
            if delay > 0:
                time.sleep(delay)


def _run_pool(state, pending, max_workers, capture, timeout, plan, base_ctx=None):
    """The fault-tolerant pool loop.

    Invariants: with a per-job ``timeout``, at most ``max_workers``
    futures are in flight, so a submitted job starts immediately and
    its deadline is honest (without one, every due job is queued on the
    executor up front and workers pull work with no per-job round-trip
    through this loop); a failure charges exactly one attempt to
    exactly one job, except for a broken pool, which charges every
    in-flight job (the culprit is indistinguishable); innocent jobs
    displaced by a teardown are resubmitted without being charged.
    """
    run_id = uuid.uuid4().hex
    ready = deque((index, 0.0) for index in pending)  # (index, not-before)
    in_flight = {}  # future -> (index, deadline or None)
    pool = None

    def ensure_pool():
        nonlocal pool
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        return pool

    def kill_pool():
        nonlocal pool
        if pool is not None:
            _shutdown_pool(pool, kill=True)
            pool = None
            if OBS.enabled:
                OBS.metrics.counter("runner.pool_rebuilds").inc()

    def schedule(index, delay):
        if delay is not None:
            ready.append((index, time.monotonic() + delay))

    try:
        while ready or in_flight:
            now = time.monotonic()
            # Submit every due job; the in-flight cap only exists to
            # keep deadlines honest, so it only applies with a timeout.
            deferred = deque()
            while ready and (not timeout or len(in_flight) < max_workers):
                index, not_before = ready.popleft()
                if not_before > now:
                    deferred.append((index, not_before))
                    continue
                job = state.job_list[index]
                attempt = state.next_attempt(index)
                future = ensure_pool().submit(
                    _worker_run, capture, plan, run_id, index, attempt, job,
                    base_ctx,
                )
                in_flight[future] = (index, now + timeout if timeout else None)
            ready.extendleft(reversed(deferred))

            if not in_flight:
                # Everything is waiting out a backoff delay.
                wake = min(not_before for _, not_before in ready)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            wait_for = None
            deadlines = [dl for _, dl in in_flight.values() if dl is not None]
            if deadlines:
                wait_for = max(0.0, min(deadlines) - time.monotonic())
            if ready:
                wake = max(0.0, min(nb for _, nb in ready) - time.monotonic())
                wait_for = wake if wait_for is None else min(wait_for, wake)
            done, _ = futures_wait(
                set(in_flight), timeout=wait_for, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            for future in done:
                index, _deadline = in_flight.pop(future)
                job = state.job_list[index]
                try:
                    payload, snap = future.result()
                except KeyboardInterrupt:
                    raise
                except BrokenProcessPool as exc:
                    pool_broken = True
                    schedule(index, state.record_failure(index, "crashed", exc))
                except Exception as exc:
                    schedule(index, state.record_failure(index, _classify_exception(exc), exc))
                else:
                    reason = validate_payload(job, payload)
                    if reason is None:
                        state.accept(index, payload, snap)
                    else:
                        schedule(index, state.record_failure(index, "invalid-result", reason))

            if pool_broken:
                # The surviving in-flight futures are doomed with the
                # pool; resubmit them without charging an attempt.
                for future, (index, _deadline) in in_flight.items():
                    ready.append((index, 0.0))
                in_flight.clear()
                kill_pool()
                continue

            if timeout:
                now = time.monotonic()
                expired = [
                    (future, index)
                    for future, (index, deadline) in in_flight.items()
                    if deadline is not None and deadline <= now
                ]
                if expired:
                    expired_futures = {future for future, _ in expired}
                    for future, index in expired:
                        schedule(
                            index,
                            state.record_failure(
                                index, "timed-out", f"no result within {timeout} s"
                            ),
                        )
                    # Innocent bystanders ride along in the teardown.
                    for future, (index, _deadline) in in_flight.items():
                        if future not in expired_futures:
                            ready.append((index, 0.0))
                    in_flight.clear()
                    kill_pool()
    finally:
        if pool is not None:
            _shutdown_pool(pool, kill=bool(in_flight))


def _run_megabatch(state, pending, megabatch_mod):
    """Execute packable groups inline before normal dispatch.

    Strictly best-effort: a group whose packed solve or validation
    fails is abandoned wholesale — its jobs stay pending for the
    retrying per-job path and are not charged an attempt, because the
    failure belongs to the packing optimization, not to any job.
    Accepted payloads flow through :meth:`_RunState.accept`, so they
    checkpoint and count exactly like per-job results.
    """
    groups = megabatch_mod.find_groups(state.job_list, pending)
    if not groups:
        return
    with OBS.trace.span("runner.megabatch", groups=len(groups)):
        for group in groups:
            jobs = [state.job_list[index] for index in group]
            try:
                payloads = megabatch_mod.execute_group(jobs)
            except KeyboardInterrupt:
                raise
            except Exception:
                if OBS.enabled:
                    OBS.metrics.counter("runner.megabatch.fallbacks").inc()
                continue
            if any(
                validate_payload(job, payload) is not None
                for job, payload in zip(jobs, payloads)
            ):
                if OBS.enabled:
                    OBS.metrics.counter("runner.megabatch.fallbacks").inc()
                continue
            for index, payload in zip(group, payloads):
                state.accept(index, payload)
            if OBS.enabled:
                OBS.metrics.counter("runner.megabatch.groups").inc()
                OBS.metrics.counter("runner.megabatch.packed_jobs").inc(len(group))


def run_jobs(job_list, jobs=None, timeout=None, retries=None, backoff=None,
             checkpoint=None, resume=False, fault_plan=None, return_report=False,
             force_pool=False, megabatch=None, snapshot_sink=None):
    """Execute jobs (inline or in a process pool); payloads in job order.

    With an effective worker count of 1 — or a single job — everything
    runs inline in this process and observability flows straight into
    the live singleton.  Otherwise a ``ProcessPoolExecutor`` runs
    :func:`execute_job` per job and worker obs snapshots are merged into
    the parent registry in job-index order.

    Parameters
    ----------
    jobs:
        Worker count (``None``/0 = ``REPRO_JOBS`` env, else
        ``min(cpus, 8)``).
    timeout:
        Per-job-attempt wall-clock limit in seconds (pool mode only;
        default ``REPRO_JOB_TIMEOUT`` env, else unlimited).  A timed-out
        attempt terminates the worker pool — the only way to stop a hung
        worker — and resubmits the unaffected in-flight jobs without
        charging them an attempt.
    retries:
        Failed attempts are retried up to this many times per job with
        exponential backoff (``backoff * 2**(n-1)`` before the n-th
        retry).  Default ``REPRO_RETRIES`` env, else 2.
    checkpoint / resume:
        Path of a JSONL checkpoint (:mod:`repro.harness.checkpoint`).
        Completed payloads are appended as they arrive; with
        ``resume=True`` previously completed jobs are loaded instead of
        re-executed.  Rows are bitwise identical either way.
    fault_plan:
        A :class:`~repro.harness.faults.FaultPlan` for deterministic
        fault injection (default: parsed from ``REPRO_FAULT``).
    return_report:
        When true, return ``(payloads, RunReport)`` instead of just the
        payload list.  The report of the latest run is also available
        via :func:`last_report`.
    force_pool:
        Run through the process pool even for a single job / single
        worker.  The pool path is what provides crash isolation and
        enforceable per-job deadlines (a hung inline job cannot be
        interrupted), so the partitioning service uses this for its
        ``REPRO_SERVICE_ISOLATION=process`` mode.
    megabatch:
        Pack compatible partition jobs into shared kernel invocations
        before normal dispatch (:mod:`repro.harness.megabatch`).
        ``None`` consults ``REPRO_MEGABATCH`` (default off).  Packed
        payloads are bitwise-identical to solo execution; a group that
        fails for any reason falls back to the per-job path without
        charging attempts.  Skipped entirely when a fault plan is
        active — chaos semantics are defined per job attempt.
    snapshot_sink:
        A callable receiving each worker obs snapshot (in job-index
        order) *instead of* merging it into the process-wide ``OBS``
        singleton.  The partitioning service uses this to route worker
        spans into its private per-server tracer without touching the
        singleton.

    Raises
    ------
    JobError
        When any job exhausted its retries; every completed payload is
        still in the checkpoint (when one was given), so a rerun with
        ``resume=True`` picks up from there.
    """
    global _LAST_REPORT
    job_list = list(job_list)
    jobs = resolve_jobs(jobs)
    timeout = resolve_timeout(timeout)
    retries = resolve_retries(retries)
    backoff = resolve_backoff(backoff)
    if fault_plan is None:
        fault_plan = fault_mod.plan_from_env()

    report = RunReport(total=len(job_list), checkpoint_path=checkpoint)
    _LAST_REPORT = report
    state = _RunState(job_list, retries, backoff, report)

    if checkpoint:
        state.checkpoint = SuiteCheckpoint(checkpoint)
        state.keys = [job_key(job) for job in job_list]
        if resume:
            stored = state.checkpoint.load()
            report.checkpoint_corrupt_lines = state.checkpoint.corrupt_lines
            if state.checkpoint.corrupt_lines:
                for _ in range(state.checkpoint.corrupt_lines):
                    report.failures.append(JobFailure(
                        index=-1, kind="cache-corrupt", attempt=1,
                        message="corrupt checkpoint line skipped",
                    ))
                if OBS.enabled:
                    OBS.metrics.counter("runner.failures.cache_corrupt").inc(
                        state.checkpoint.corrupt_lines
                    )
            for index, key in enumerate(state.keys):
                if key in stored:
                    payload = stored[key]
                    if validate_payload(job_list[index], payload) is None:
                        state.results[index] = payload
                        report.from_checkpoint += 1
            if OBS.enabled and report.from_checkpoint:
                OBS.metrics.counter("runner.checkpoint.loaded").inc(report.from_checkpoint)

    pending = [index for index in range(len(job_list)) if index not in state.results]

    if pending and fault_plan is None:
        from repro.harness import megabatch as megabatch_mod

        if megabatch_mod.megabatch_enabled(megabatch):
            _run_megabatch(state, pending, megabatch_mod)
            pending = [index for index in pending if index not in state.results]

    if OBS.enabled:
        OBS.metrics.counter("runner.jobs_submitted").inc(len(job_list))
        OBS.metrics.gauge("runner.workers").set(min(jobs, max(len(pending), 1)))

    if pending:
        use_pool = force_pool or (jobs > 1 and len(pending) > 1)
        if not use_pool:
            _run_inline(state, pending, fault_plan)
        else:
            capture = OBS.enabled
            # The parent's live trace context (when capture is on)
            # rides into every worker that doesn't carry its own, so a
            # CLI `--trace --jobs N` run still yields one connected
            # span tree.
            base_ctx = None
            if capture and OBS.trace.context is not None:
                base_ctx = OBS.trace.context.to_wire()
            max_workers = max(1, min(jobs, len(pending)))
            with OBS.trace.span("runner.pool", jobs=max_workers, items=len(pending)):
                _run_pool(state, pending, max_workers, capture, timeout,
                          fault_plan, base_ctx)

    # Snapshots merge after the run, in job-index order, so parallel
    # completion order never changes the aggregated metrics.
    for index in sorted(state.snaps):
        if snapshot_sink is not None:
            snapshot_sink(state.snaps[index])
        else:
            merge_snapshot(state.snaps[index])

    if report.failed_jobs:
        details = []
        for index in sorted(set(report.failed_jobs)):
            job_failures = [f for f in report.failures if f.index == index]
            detail = (
                f"job {index} ({job_list[index].circuit}): "
                + ", ".join(f.kind for f in job_failures)
            )
            if job_failures and job_failures[-1].message:
                detail += f" [{job_failures[-1].message}]"
            details.append(detail)
        raise JobError(
            f"{len(set(report.failed_jobs))} of {len(job_list)} suite jobs failed "
            f"after {retries} retries — " + "; ".join(details),
            failures=report.failures,
        )

    payloads = [state.results[index] for index in range(len(job_list))]
    return (payloads, report) if return_report else payloads
