"""JSONL checkpoint of completed suite jobs — interrupt-safe resume.

A table regeneration is a list of independent deterministic jobs
(:class:`~repro.harness.runner.SuiteJob`); once one completes, its
payload never changes.  The checkpoint exploits that: the runner streams
every validated payload to a JSONL file as it completes, and a resumed
run (``--resume``) loads the file, skips jobs whose key is present, and
re-executes only the missing ones.  Because payloads round-trip through
JSON exactly (finite floats serialize via ``repr`` and parse back to
the identical double; all other fields are ints/strings), the assembled
rows of a resumed run are bitwise identical to an uninterrupted run.

File format (one JSON object per line, schema below)::

    {"v": 1, "key": "<sha256>", "checksum": "<sha256>", "payload": {...}}

* ``key`` is a content key over the full job description — kind,
  circuit, planes, method, seed, config, refine, bias limit — computed
  like a cache key (:func:`job_key`), so a checkpoint written with one
  seed or config can never satisfy a run with another;
* ``checksum`` is a sha256 over the canonical payload JSON; a line
  whose checksum (or schema, or JSON syntax) does not match is counted
  as corrupt and ignored — the job simply re-executes;
* appends are atomic at the line level: each entry is written with a
  single ``write`` of one ``\\n``-terminated line and flushed, so a run
  killed mid-write leaves at most one torn trailing line (which the
  loader skips as corrupt).

The file is append-only; re-running with the same checkpoint path adds
duplicate keys (last one wins on load, and duplicates are identical by
construction).  Delete the file to start over.
"""

import dataclasses
import hashlib
import json
import os

import numpy as np

from repro.cache.store import canonical_jsonable
from repro.metrics.bias import BiasMetrics
from repro.metrics.area import AreaMetrics
from repro.metrics.report import PartitionReport
from repro.utils.errors import CacheCorruptError, ReproError

#: Version of the checkpoint line layout; part of every job key, so a
#: schema change silently invalidates old checkpoints (jobs re-execute).
CHECKPOINT_SCHEMA_VERSION = 1


def job_key(job):
    """Content key of one :class:`~repro.harness.runner.SuiteJob`.

    Covers every field that influences the job's payload plus the
    checkpoint schema version, canonicalized exactly like a cache key
    (numpy scalars in seeds/config collapse to their Python values).
    """
    config = job.config
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config = dataclasses.asdict(config)
    fields = {
        "v": CHECKPOINT_SCHEMA_VERSION,
        "kind": job.kind,
        "circuit": job.circuit,
        "num_planes": job.num_planes,
        "method": job.method,
        "seed": job.seed,
        "config": config,
        "refine": job.refine,
        "bias_limit_ma": job.bias_limit_ma,
    }
    # Only present when set, so keys of classic suite jobs are unchanged
    # across the schema's life (old checkpoints stay resumable).
    netlist_json = getattr(job, "netlist_json", None)
    if netlist_json is not None:
        fields["netlist"] = netlist_json
    pinned = getattr(job, "pinned", None)
    if pinned:
        fields["pinned"] = pinned
    prev_labels = getattr(job, "prev_labels", None)
    if prev_labels is not None:
        fields["prev_labels"] = list(prev_labels)
    eco = getattr(job, "eco", None)
    if eco is not None:
        fields["eco"] = eco
    blob = json.dumps(canonical_jsonable(fields), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Payload (de)serialization
# ----------------------------------------------------------------------
def _report_to_jsonable(report):
    data = dataclasses.asdict(report)
    return canonical_jsonable(data)


def _report_from_jsonable(data):
    bias = BiasMetrics(
        per_plane_ma=np.asarray(data["bias"]["per_plane_ma"], dtype=float),
        total_ma=data["bias"]["total_ma"],
        b_max_ma=data["bias"]["b_max_ma"],
        i_comp_ma=data["bias"]["i_comp_ma"],
        i_comp_pct=data["bias"]["i_comp_pct"],
    )
    area = AreaMetrics(
        per_plane_mm2=np.asarray(data["area"]["per_plane_mm2"], dtype=float),
        total_mm2=data["area"]["total_mm2"],
        a_max_mm2=data["area"]["a_max_mm2"],
        free_space_mm2=data["area"]["free_space_mm2"],
        free_space_pct=data["area"]["free_space_pct"],
    )
    fields = {f.name: data[f.name] for f in dataclasses.fields(PartitionReport)
              if f.name not in ("bias", "area")}
    return PartitionReport(bias=bias, area=area, **fields)


def payload_to_jsonable(payload):
    """Plain-JSON form of an ``execute_job`` payload dict."""
    out = {}
    for name, value in payload.items():
        if name == "report":
            out[name] = _report_to_jsonable(value)
        elif name == "labels":
            out[name] = [int(label) for label in np.asarray(value)]
        else:
            out[name] = canonical_jsonable(value)
    return out


def payload_from_jsonable(data):
    """Inverse of :func:`payload_to_jsonable` (numpy labels, live report)."""
    out = dict(data)
    if out.get("report") is not None:
        out["report"] = _report_from_jsonable(out["report"])
    if out.get("labels") is not None:
        out["labels"] = np.asarray(out["labels"], dtype=np.intp)
    return out


def _payload_checksum(jsonable_payload):
    return hashlib.sha256(
        json.dumps(jsonable_payload, sort_keys=True).encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# The checkpoint store
# ----------------------------------------------------------------------
class SuiteCheckpoint:
    """Append-only JSONL store of completed job payloads, keyed by job.

    ``corrupt_lines`` counts entries the last :meth:`load` skipped
    (truncated/garbled JSON, schema drift, checksum mismatch); the
    runner folds it into its ``cache-corrupt`` failure statistics.
    """

    def __init__(self, path):
        if not path:
            raise ReproError("checkpoint path must be a non-empty string")
        self.path = str(path)
        self.corrupt_lines = 0

    def exists(self):
        return os.path.exists(self.path)

    def load(self):
        """Read ``{job key: payload}``; silently skips corrupt lines.

        Returns an empty mapping when the file does not exist (a fresh
        ``--resume`` run is a plain run).
        """
        self.corrupt_lines = 0
        entries = {}
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return entries
        for line in lines:
            if not line.strip():
                continue
            try:
                entries.update([self._parse_line(line)])
            except CacheCorruptError:
                self.corrupt_lines += 1
        return entries

    def _parse_line(self, line):
        try:
            entry = json.loads(line)
        except ValueError:
            raise CacheCorruptError("checkpoint line is not valid JSON") from None
        if not isinstance(entry, dict) or entry.get("v") != CHECKPOINT_SCHEMA_VERSION:
            raise CacheCorruptError("checkpoint schema drift")
        key, checksum, payload = entry.get("key"), entry.get("checksum"), entry.get("payload")
        if not key or payload is None:
            raise CacheCorruptError("checkpoint line missing key/payload")
        if checksum != _payload_checksum(payload):
            raise CacheCorruptError("checkpoint payload checksum mismatch")
        try:
            return key, payload_from_jsonable(payload)
        except (KeyError, TypeError, ValueError):
            raise CacheCorruptError("checkpoint payload is structurally invalid") from None

    def append(self, key, payload):
        """Record one completed job; atomic at the line level."""
        jsonable = payload_to_jsonable(payload)
        line = json.dumps(
            {
                "v": CHECKPOINT_SCHEMA_VERSION,
                "key": key,
                "checksum": _payload_checksum(jsonable),
                "payload": jsonable,
            },
            sort_keys=True,
        ) + "\n"
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line)
            handle.flush()
        return key
