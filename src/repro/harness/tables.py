"""Regenerate Tables I, II and III of the paper.

Each ``run_table*`` function builds the reconstructed benchmark
netlists, partitions them (with the paper's gradient method by default,
or any baseline via ``method=``) and returns structured rows; the
``format_table*`` companions render them next to the paper's published
numbers so the reproduction gap is visible at a glance.

Every row is an independent deterministic solve, so all three drivers
decompose into :class:`~repro.harness.runner.SuiteJob` items and run
through :func:`~repro.harness.runner.run_jobs` — pass ``jobs=N`` to fan
out over a process pool (results are bitwise-identical to ``jobs=1``;
see :mod:`repro.harness.runner`).
"""

from dataclasses import dataclass

from repro.baselines import (
    annealing_partition,
    fm_partition,
    greedy_partition,
    multilevel_partition,
    random_partition,
    spectral_partition,
)
from repro.circuits.suite import PAPER_TABLE1, SUITE_NAMES
from repro.core.partitioner import partition
from repro.core.refinement import refine_greedy
from repro.harness.formatting import ascii_table, percent
from repro.harness.runner import SuiteJob, run_jobs
from repro.utils.errors import ReproError

#: method name -> callable(netlist, K, seed=..., config=...) -> PartitionResult
PARTITION_METHODS = {
    "gradient": partition,
    "random": random_partition,
    "greedy": greedy_partition,
    "spectral": spectral_partition,
    "fm": fm_partition,
    "annealing": annealing_partition,
    "multilevel": multilevel_partition,
}


def _partition_with(method, netlist, num_planes, config=None, seed=None, refine=False,
                    pinned=None):
    try:
        runner = PARTITION_METHODS[method]
    except KeyError:
        raise ReproError(
            f"unknown partition method {method!r}; available: {sorted(PARTITION_METHODS)}"
        ) from None
    if pinned:
        if method != "gradient":
            raise ReproError(
                f"pinned gates are only supported by the 'gradient' method, not {method!r}"
            )
        result = runner(netlist, num_planes, config=config, seed=seed, pinned=pinned)
    else:
        result = runner(netlist, num_planes, config=config, seed=seed)
    if refine:
        result = refine_greedy(result)
    return result


@dataclass(frozen=True)
class Table1Row:
    """One measured row of Table I plus the paper's reference row."""

    report: object  # PartitionReport
    paper: object  # PaperRow or None


@dataclass(frozen=True)
class Table3Row:
    """One measured row of Table III."""

    circuit: str
    k_lb: int
    k_res: int
    report: object
    bias_lines_saved: int
    paper_k_lb: int = None
    paper_k_res: int = None


# ----------------------------------------------------------------------
# Table I — full suite at K = 5
# ----------------------------------------------------------------------
def run_table1(circuits=None, num_planes=5, config=None, seed=None, method="gradient",
               refine=False, jobs=1, **run_opts):
    """Partition every suite circuit at K=5 and report Table I columns.

    ``jobs`` fans the per-circuit solves out over a process pool
    (``None`` = auto: ``REPRO_JOBS`` env, else ``min(cpus, 8)``); the
    rows are bitwise-identical for every jobs value.  Extra keyword
    arguments (``timeout``, ``retries``, ``backoff``, ``checkpoint``,
    ``resume``, ``fault_plan``) pass through to
    :func:`~repro.harness.runner.run_jobs`.
    """
    names = list(circuits or SUITE_NAMES)
    payloads = run_jobs(
        [
            SuiteJob(
                kind="partition", circuit=name, num_planes=num_planes,
                method=method, seed=seed, config=config, refine=refine,
            )
            for name in names
        ],
        jobs=jobs,
        **run_opts,
    )
    return [
        Table1Row(report=payload["report"], paper=PAPER_TABLE1.get(name))
        for name, payload in zip(names, payloads)
    ]


def format_table1(rows, compare_paper=True):
    headers = [
        "Circuit", "Gates", "Conns", "d<=1", "d<=2",
        "B_cir mA", "B_max mA", "I_comp", "A_cir mm2", "A_max mm2", "A_FS",
    ]
    body = []
    for row in rows:
        r = row.report
        body.append([
            r.circuit, r.num_gates, r.num_connections,
            percent(r.frac_d_le_1), percent(r.frac_d_le_2),
            f"{r.b_cir_ma:.2f}", f"{r.b_max_ma:.2f}", f"{r.i_comp_pct:.2f}%",
            f"{r.a_cir_mm2:.4f}", f"{r.a_max_mm2:.4f}", f"{r.a_fs_pct:.2f}%",
        ])
        if compare_paper and row.paper is not None:
            p = row.paper
            body.append([
                "  (paper)", p.gates, p.connections,
                percent(p.d_le_1), percent(p.d_le_2),
                f"{p.b_cir_ma:.2f}", f"{p.b_max_ma:.2f}", f"{p.i_comp_pct:.2f}%",
                f"{p.a_cir_mm2:.4f}", f"{p.a_max_mm2:.4f}", f"{p.a_fs_pct:.2f}%",
            ])
    title = "Table I - partition results of benchmark circuits with K = 5"
    return ascii_table(headers, body, title=title)


# ----------------------------------------------------------------------
# Table II — KSA4 swept over K
# ----------------------------------------------------------------------
#: Table II of the paper, transcribed: K -> (d<=1, d<=K/2, B_max, I_comp%, A_max, A_FS%)
PAPER_TABLE2 = {
    5: (0.746, 0.975, 17.50, 9.24, 0.0972, 7.71),
    6: (0.644, 0.949, 14.40, 7.88, 0.0840, 11.70),
    7: (0.534, 0.898, 12.45, 8.79, 0.0696, 7.98),
    8: (0.458, 0.958, 11.16, 11.49, 0.0648, 14.89),
    9: (0.381, 0.839, 10.24, 15.12, 0.0576, 14.89),
    10: (0.381, 0.907, 9.69, 21.64, 0.0552, 22.34),
}


def run_table2(circuit="KSA4", k_values=tuple(range(5, 11)), config=None, seed=None,
               method="gradient", refine=False, jobs=1, **run_opts):
    """Sweep the plane count on one circuit (paper: KSA4, K = 5..10).

    ``jobs`` parallelizes over the K values (see :func:`run_table1`);
    extra keyword arguments pass through to ``run_jobs``.
    """
    payloads = run_jobs(
        [
            SuiteJob(
                kind="partition", circuit=circuit, num_planes=k,
                method=method, seed=seed, config=config, refine=refine,
            )
            for k in k_values
        ],
        jobs=jobs,
        **run_opts,
    )
    return [payload["report"] for payload in payloads]


def format_table2(reports, compare_paper=True):
    headers = ["K", "d<=1", "d<=K/2", "B_max mA", "I_comp", "A_max mm2", "A_FS"]
    body = []
    for r in reports:
        body.append([
            r.num_planes, percent(r.frac_d_le_1), percent(r.frac_d_le_half_k),
            f"{r.b_max_ma:.2f}", f"{r.i_comp_pct:.2f}%",
            f"{r.a_max_mm2:.4f}", f"{r.a_fs_pct:.2f}%",
        ])
        if compare_paper and r.num_planes in PAPER_TABLE2 and r.circuit == "KSA4":
            d1, dk2, bmax, icomp, amax, afs = PAPER_TABLE2[r.num_planes]
            body.append([
                "(paper)", percent(d1), percent(dk2),
                f"{bmax:.2f}", f"{icomp:.2f}%", f"{amax:.4f}", f"{afs:.2f}%",
            ])
    title = "Table II - partition results of KSA4 for different K values"
    return ascii_table(headers, body, title=title)


# ----------------------------------------------------------------------
# Table III — smallest K under a 100 mA supply limit
# ----------------------------------------------------------------------
#: Table III of the paper: circuit -> (K_LB, K_res)
PAPER_TABLE3 = {
    "KSA8": (3, 3), "KSA16": (6, 7), "KSA32": (14, 17),
    "MULT4": (3, 3), "MULT8": (13, 15),
    "ID4": (5, 6), "ID8": (28, 40),
    "C432": (11, 14), "C499": (9, 11), "C1355": (9, 11),
    "C1908": (15, 17), "C3540": (32, 50),
}

#: Table III circuit list (Table I minus KSA4, whose B_cir < 100 mA).
TABLE3_CIRCUITS = tuple(name for name in SUITE_NAMES if name != "KSA4")


def run_table3(circuits=None, bias_limit_ma=100.0, config=None, seed=None, jobs=1,
               **run_opts):
    """Find K_res under the pad-current limit for each circuit.

    ``jobs`` parallelizes over the circuits (see :func:`run_table1`);
    extra keyword arguments pass through to ``run_jobs``.
    """
    names = list(circuits or TABLE3_CIRCUITS)
    payloads = run_jobs(
        [
            SuiteJob(
                kind="plan", circuit=name, bias_limit_ma=bias_limit_ma,
                seed=seed, config=config,
            )
            for name in names
        ],
        jobs=jobs,
        **run_opts,
    )
    rows = []
    for name, payload in zip(names, payloads):
        paper = PAPER_TABLE3.get(name)
        rows.append(
            Table3Row(
                circuit=name,
                k_lb=payload["k_lb"],
                k_res=payload["k_res"],
                report=payload["report"],
                bias_lines_saved=payload["bias_lines_saved"],
                paper_k_lb=paper[0] if paper else None,
                paper_k_res=paper[1] if paper else None,
            )
        )
    return rows


def format_table3(rows, compare_paper=True):
    headers = [
        "Circuit", "K_LB/K_res", "d<=K/2", "B_max mA", "I_comp", "A_max mm2", "A_FS", "lines saved",
    ]
    body = []
    for row in rows:
        r = row.report
        body.append([
            row.circuit, f"{row.k_lb}/{row.k_res}", percent(r.frac_d_le_half_k),
            f"{r.b_max_ma:.2f}", f"{r.i_comp_pct:.2f}%",
            f"{r.a_max_mm2:.4f}", f"{r.a_fs_pct:.2f}%", row.bias_lines_saved,
        ])
        if compare_paper and row.paper_k_lb is not None:
            body.append([
                "  (paper)", f"{row.paper_k_lb}/{row.paper_k_res}", "", "", "", "", "", "",
            ])
    title = "Table III - partition results for 100 mA of maximum supplied current"
    return ascii_table(headers, body, title=title)
