"""Cost-weight Pareto exploration.

The paper's eq. (8) weights ``c1..c4`` trade interconnect quality
(d <= 1) against bias/area balance (I_comp / A_FS) but are left
"constants which can be tuned".  :func:`sweep_weights` maps that
trade-off: it sweeps the interconnect-to-balance weight ratio, runs the
partitioner at every point, and extracts the Pareto-efficient frontier
between ``1 - d<=1`` (crossing fraction) and ``I_comp %``.

:func:`render_frontier` draws the cloud + frontier as an ASCII scatter
for the bench artifact.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.partitioner import partition
from repro.metrics.report import evaluate_partition

#: default weight-ratio ladder (c1 multiplier over the balance weights)
DEFAULT_RATIOS = (0.2, 1.0, 4.0, 16.0, 64.0)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated weight setting."""

    c1: float
    c23: float
    crossing_fraction: float  # 1 - d<=1
    i_comp_pct: float
    a_fs_pct: float
    report: object

    @property
    def objectives(self):
        return (self.crossing_fraction, self.i_comp_pct)


def pareto_front(points):
    """Non-dominated subset (minimizing both objectives), sorted by the
    first objective."""
    front = []
    for point in points:
        dominated = any(
            other.objectives[0] <= point.objectives[0]
            and other.objectives[1] <= point.objectives[1]
            and other.objectives != point.objectives
            for other in points
        )
        if not dominated:
            front.append(point)
    return sorted(front, key=lambda p: p.objectives)


def sweep_weights(netlist, num_planes, base_config, ratios=DEFAULT_RATIOS, seed=None):
    """Partition at each weight ratio; returns ``(points, front)``.

    Each ratio ``r`` scales the default interconnect weight ``c1`` by
    ``r`` while keeping the balance weights at their defaults, so the
    sweep walks the d<=1 / I_comp trade-off curve.
    """
    points = []
    for ratio in ratios:
        config = base_config.with_(c1=base_config.c1 * ratio)
        report = evaluate_partition(
            partition(netlist, num_planes, config=config, seed=seed)
        )
        points.append(
            SweepPoint(
                c1=config.c1,
                c23=config.c2,
                crossing_fraction=1.0 - report.frac_d_le_1,
                i_comp_pct=report.i_comp_pct,
                a_fs_pct=report.a_fs_pct,
                report=report,
            )
        )
    return points, pareto_front(points)


def render_frontier(points, front, width=52, height=14, title="weight-sweep Pareto frontier"):
    """ASCII scatter: '.' = dominated point, 'O' = frontier point."""
    if not points:
        return f"{title}: <no points>"
    xs = np.array([p.crossing_fraction for p in points])
    ys = np.array([p.i_comp_pct for p in points])
    x_low, x_high = float(xs.min()), float(xs.max())
    y_low, y_high = float(ys.min()), float(ys.max())
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    front_set = {id(p) for p in front}

    def plot(point, marker):
        column = int((point.crossing_fraction - x_low) / x_span * (width - 1))
        row = int((point.i_comp_pct - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = marker

    for point in points:
        if id(point) not in front_set:
            plot(point, ".")
    for point in front:  # frontier on top
        plot(point, "O")

    lines = [f"{title}  (x: crossing fraction, y: I_comp %)"]
    lines.append(f"{y_high:7.1f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 7 + "|" + "".join(row))
    lines.append(f"{y_low:7.1f} +" + "".join(grid[-1]))
    lines.append(" " * 8 + f"{x_low:.2f}" + " " * (width - 10) + f"{x_high:.2f}")
    return "\n".join(lines)
