"""K x cost-weight Pareto sweeps with a per-point energy estimate.

The paper's eq. (8) weights ``c1..c4`` trade interconnect quality
(d <= 1) against bias/area balance (I_comp / A_FS) but are left
"constants which can be tuned", and Table III reports a single plane
count per circuit.  A designer wants the whole trade surface: this
module sweeps a grid of plane counts K and weight ratios, evaluates
every point, and extracts the Pareto-efficient frontier over four
objectives (all minimized):

1. ``1 - d<=1`` — the crossing fraction;
2. ``I_comp %`` — worst-plane bias compensation;
3. ``A_FS %`` — free space consumed by dummies;
4. ``-(K - 1)`` — bias-line saving (more planes = fewer bias lines,
   so the saving is maximized by negating it).

Every point also carries the RSFQ-resistive vs ERSFQ-recycled bias
power estimate from :func:`repro.recycling.ersfq.estimate_bias_power`,
so the frontier answers "what does this trade-off cost in energy".

Entry points
------------
* :func:`sweep_weights` — the original in-process ratio sweep at a
  fixed K (kept for figures and quick exploration);
* :func:`execute_sweep` — the service/CLI sweep executor: fans a
  validated ``kind="sweep"`` request's (K x ratio) grid through
  :func:`repro.harness.runner.run_jobs`, deduping each grid point
  through the result store under its own solo-partition request key;
* :func:`render_frontier` / :func:`render_sweep` — ASCII scatter of
  the cloud + frontier for bench artifacts and the CLI.

Sweep knobs (``REPRO_SWEEP_*``) are declared in :mod:`repro.envcfg`.
"""

from dataclasses import dataclass

import numpy as np

from repro import envcfg
from repro.core.partitioner import partition
from repro.metrics.report import evaluate_partition
from repro.recycling.ersfq import DEFAULT_CLOCK_GHZ, estimate_bias_power

#: default weight-ratio ladder (c1 multiplier over the balance weights)
DEFAULT_RATIOS = (0.2, 1.0, 4.0, 16.0, 64.0)

#: default grid-point fan-out of :func:`execute_sweep` (overridden by
#: REPRO_SWEEP_JOBS or the request's runner options)
DEFAULT_SWEEP_JOBS = 1

#: default cap on K x ratio grid points per sweep request
DEFAULT_SWEEP_MAX_POINTS = 256


def resolve_sweep_clock(clock_ghz=None, environ=None):
    """Sweep energy-model clock: explicit > REPRO_SWEEP_CLOCK_GHZ > 20."""
    if clock_ghz is not None:
        return float(clock_ghz)
    value = envcfg.number(
        "REPRO_SWEEP_CLOCK_GHZ",
        float,
        lambda v: v > 0 and np.isfinite(v),
        "a positive number",
        environ=environ,
    )
    return DEFAULT_CLOCK_GHZ if value is None else float(value)


def resolve_sweep_jobs(jobs=None, environ=None):
    """Sweep fan-out: explicit > REPRO_SWEEP_JOBS > 1."""
    if jobs is not None:
        return int(jobs)
    value = envcfg.number(
        "REPRO_SWEEP_JOBS", int, lambda v: v >= 1, "an integer >= 1", environ=environ
    )
    return DEFAULT_SWEEP_JOBS if value is None else value


def resolve_sweep_max_points(max_points=None, environ=None):
    """Grid-size cap: explicit > REPRO_SWEEP_MAX_POINTS > 256."""
    if max_points is not None:
        return int(max_points)
    value = envcfg.number(
        "REPRO_SWEEP_MAX_POINTS", int, lambda v: v >= 1, "an integer >= 1", environ=environ
    )
    return DEFAULT_SWEEP_MAX_POINTS if value is None else value


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated (K, weights) grid point."""

    num_planes: int
    c1: float
    c2: float
    c3: float
    c4: float
    crossing_fraction: float  # 1 - d<=1
    i_comp_pct: float
    a_fs_pct: float
    bias_lines_saved: int  # K - 1 serial-chain merges
    energy: dict
    report: object

    @property
    def weights(self):
        return {"c1": self.c1, "c2": self.c2, "c3": self.c3, "c4": self.c4}

    @property
    def objectives(self):
        """Minimization tuple; the saving enters negated so that more
        recycled bias lines dominates fewer, all else equal."""
        return (
            self.crossing_fraction,
            self.i_comp_pct,
            self.a_fs_pct,
            -float(self.bias_lines_saved),
        )


def point_from_report(report, weights, clock_ghz=DEFAULT_CLOCK_GHZ):
    """Build a :class:`SweepPoint` from an evaluated partition report.

    ``weights`` is a full ``{"c1": ..., "c2": ..., "c3": ..., "c4": ...}``
    mapping — the sweep records the complete tuple so every artifact is
    reproducible from its own metadata.
    """
    energy = estimate_bias_power(report.bias.per_plane_ma, clock_ghz=clock_ghz)
    return SweepPoint(
        num_planes=int(report.num_planes),
        c1=float(weights["c1"]),
        c2=float(weights["c2"]),
        c3=float(weights["c3"]),
        c4=float(weights["c4"]),
        crossing_fraction=1.0 - report.frac_d_le_1,
        i_comp_pct=float(report.i_comp_pct),
        a_fs_pct=float(report.a_fs_pct),
        bias_lines_saved=int(report.num_planes) - 1,
        energy=energy.as_dict(),
        report=report,
    )


def pareto_front(points):
    """Non-dominated subset under weak N-objective dominance.

    ``other`` dominates ``point`` iff it is no worse in every objective
    and strictly better in at least one; points with identical
    objective tuples never dominate each other, so duplicates are all
    retained.  Sorted by the objective tuple.
    """
    front = []
    for point in points:
        dominated = any(
            all(o <= p for o, p in zip(other.objectives, point.objectives))
            and other.objectives != point.objectives
            for other in points
        )
        if not dominated:
            front.append(point)
    return sorted(front, key=lambda p: p.objectives)


def sweep_weights(netlist, num_planes, base_config, ratios=DEFAULT_RATIOS, seed=None):
    """Partition at each weight ratio; returns ``(points, front)``.

    Each ratio ``r`` scales the interconnect weight ``c1`` by ``r``
    while keeping the balance weights at their base values, so the
    sweep walks the d<=1 / I_comp trade-off curve at a fixed K.
    """
    points = []
    for ratio in ratios:
        config = base_config.with_(c1=base_config.c1 * ratio)
        report = evaluate_partition(
            partition(netlist, num_planes, config=config, seed=seed)
        )
        points.append(
            point_from_report(
                report,
                {"c1": config.c1, "c2": config.c2, "c3": config.c3, "c4": config.c4},
            )
        )
    return points, pareto_front(points)


def sweep_grid(normalized):
    """Expand a validated sweep request into solvable grid points.

    Returns ``(grid, skipped_k, num_gates)`` where each grid entry is a
    dict with ``num_planes``/``ratio``/``weights``/``request``/``key``.
    K values beyond the gate count cannot host one gate per plane and
    are recorded in ``skipped_k`` instead of failing the sweep.
    """
    from repro.circuits.suite import build_circuit
    from repro.service.api import request_key, resolve_weights, sweep_point_request

    if "netlist" in normalized:
        num_gates = len(normalized["netlist"]["gates"])
    else:
        num_gates = len(build_circuit(normalized["circuit"]).gates)
    grid, skipped = [], []
    for k in normalized["k_values"]:
        if k > num_gates:
            skipped.append(int(k))
            continue
        for ratio in normalized["weight_ratios"]:
            request = sweep_point_request(normalized, k, ratio)
            grid.append(
                {
                    "num_planes": int(k),
                    "ratio": float(ratio),
                    "weights": resolve_weights(request),
                    "request": request,
                    "key": request_key(request),
                }
            )
    return grid, skipped, num_gates


def execute_sweep(normalized, store=None, jobs=None, run_kwargs=None):
    """Run a validated ``kind="sweep"`` request; returns ``(payload, stats)``.

    Every grid point is the *exact* solo partition request a client
    could POST on its own: points already present in ``store`` are
    reused, the misses fan through :func:`run_jobs`, and fresh payloads
    are stored under the point's own request key — so sweeps and solo
    jobs dedupe against each other bitwise in both directions.
    """
    from repro.cache.store import canonical_jsonable
    from repro.harness.checkpoint import payload_from_jsonable, payload_to_jsonable
    from repro.harness.runner import run_jobs
    from repro.service.api import request_to_job

    grid, skipped, num_gates = sweep_grid(normalized)
    for entry in grid:
        stored = store.get(entry["key"]) if store is not None else None
        entry["payload"] = payload_from_jsonable(stored) if stored is not None else None
        entry["cached"] = entry["payload"] is not None

    misses = [entry for entry in grid if entry["payload"] is None]
    if misses:
        payloads = run_jobs(
            [request_to_job(entry["request"]) for entry in misses],
            jobs=resolve_sweep_jobs(jobs),
            **(run_kwargs or {}),
        )
        for entry, payload in zip(misses, payloads):
            entry["payload"] = payload
            if store is not None:
                store.put(entry["key"], payload, meta={"request": entry["request"]})

    clock_ghz = normalized.get("clock_ghz", DEFAULT_CLOCK_GHZ)
    points = [
        point_from_report(entry["payload"]["report"], entry["weights"], clock_ghz)
        for entry in grid
    ]
    front_ids = {id(p) for p in pareto_front(points)}
    payload = {
        "kind": "sweep",
        "circuit": normalized.get("circuit") or normalized["netlist"].get("name"),
        "num_gates": int(num_gates),
        "clock_ghz": float(clock_ghz),
        "k_values": list(normalized["k_values"]),
        "weight_ratios": list(normalized["weight_ratios"]),
        "skipped_k": skipped,
        "points": [
            {
                "num_planes": entry["num_planes"],
                "ratio": entry["ratio"],
                "weights": entry["weights"],
                "request_key": entry["key"],
                "cached": entry["cached"],
                "metrics": {
                    "crossing_fraction": point.crossing_fraction,
                    "frac_d_le_1": point.report.frac_d_le_1,
                    "i_comp_pct": point.i_comp_pct,
                    "a_fs_pct": point.a_fs_pct,
                    "bias_lines_saved": point.bias_lines_saved,
                    "b_cir_ma": point.report.b_cir_ma,
                    "b_max_ma": point.report.b_max_ma,
                },
                "energy": point.energy,
                "on_frontier": id(point) in front_ids,
            }
            for entry, point in zip(grid, points)
        ],
        "frontier": [i for i, point in enumerate(points) if id(point) in front_ids],
    }
    stats = {
        "points": len(grid),
        "cache_hits": sum(1 for entry in grid if entry["cached"]),
        "solved": len(misses),
        "skipped_k": len(skipped),
    }
    return canonical_jsonable(payload), stats


def render_frontier(points, front, width=52, height=14, title="weight-sweep Pareto frontier"):
    """ASCII scatter: '.' = dominated point, 'O' = frontier point."""
    if not points:
        return f"{title}: <no points>"
    width = max(int(width), 2)
    height = max(int(height), 2)
    xs = np.array([p.crossing_fraction for p in points])
    ys = np.array([p.i_comp_pct for p in points])
    x_low, x_high = float(xs.min()), float(xs.max())
    y_low, y_high = float(ys.min()), float(ys.max())
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    front_set = {id(p) for p in front}

    def plot(point, marker):
        column = int((point.crossing_fraction - x_low) / x_span * (width - 1))
        row = int((point.i_comp_pct - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = marker

    for point in points:
        if id(point) not in front_set:
            plot(point, ".")
    for point in front:  # frontier on top
        plot(point, "O")

    lines = [f"{title}  (x: crossing fraction, y: I_comp %)"]
    lines.append(f"{y_high:7.1f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 7 + "|" + "".join(row))
    lines.append(f"{y_low:7.1f} +" + "".join(grid[-1]))
    label_low, label_high = f"{x_low:.2f}", f"{x_high:.2f}"
    pad = max(1, width - len(label_low) - len(label_high))
    lines.append(" " * 8 + label_low + " " * pad + label_high)
    return "\n".join(lines)


class _RenderPoint:
    """Minimal shim so stored sweep payload dicts render like points."""

    __slots__ = ("crossing_fraction", "i_comp_pct")

    def __init__(self, metrics):
        self.crossing_fraction = metrics["crossing_fraction"]
        self.i_comp_pct = metrics["i_comp_pct"]


def render_sweep(payload, width=52, height=14):
    """Render a sweep payload's frontier (works on stored JSON dicts)."""
    points = [_RenderPoint(p["metrics"]) for p in payload["points"]]
    front = [points[i] for i in payload["frontier"]]
    title = f"sweep Pareto frontier ({payload['circuit']})"
    return render_frontier(points, front, width=width, height=height, title=title)
