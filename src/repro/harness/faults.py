"""Deterministic fault injection for the suite runner.

The fault-tolerance machinery in :mod:`repro.harness.runner` (retries,
timeouts, checkpoint/resume) is only trustworthy if the failure paths
are exercised on every CI run, not just when real hardware misbehaves.
This module provides a small, fully deterministic fault plan that the
runner consults before executing each job attempt:

* ``crash``     — the worker raises :class:`InjectedFault` (a job-level
  crash; the worker process survives);
* ``kill``      — the worker process hard-exits (``os._exit``), breaking
  the whole pool (exercises the ``BrokenProcessPool`` recovery path);
* ``hang``      — the worker sleeps for :func:`hang_seconds` (default
  3600 s, override with ``REPRO_FAULT_HANG_SECONDS``) so the parent's
  per-job timeout fires;
* ``corrupt``   — the job runs normally but its payload is mangled
  before being returned (exercises result validation);
* ``interrupt`` — the worker raises ``KeyboardInterrupt`` (exercises
  the abort/cleanup path; never retried).

A plan is a set of rules ``<kind>@<job index>[xN]``; the rule fires on
the first ``N`` attempts of that job (default 1) and the job behaves
normally afterwards, so a bounded retry always recovers.  Plans come
from the ``REPRO_FAULT`` environment variable (comma-separated spec,
read once per run by the parent and shipped to workers explicitly) or
from the :class:`FaultPlan` test API::

    REPRO_FAULT="crash@1,hang@3x2" repro-gpp table2 --jobs 2

    plan = FaultPlan.parse("corrupt@0")
    run_jobs(jobs, jobs=2, fault_plan=plan)

Faults address jobs by their zero-based index in the submitted job
list, so the same spec injects the same failures on every run — the CI
chaos job relies on this to assert that a faulted run's rows are
bitwise identical to a clean run's.
"""

import os
import re
import time
from dataclasses import dataclass

from repro import envcfg
from repro.utils.errors import ReproError

#: Recognized fault kinds (``timeout`` is accepted as an alias of ``hang``).
FAULT_KINDS = ("crash", "kill", "hang", "corrupt", "interrupt")

_RULE_RE = re.compile(r"^(?P<kind>[a-z]+)@(?P<index>\d+)(?:x(?P<times>\d+))?$")

#: Default sleep of an injected hang — far beyond any sane job timeout.
DEFAULT_HANG_SECONDS = 3600.0


class InjectedFault(ReproError):
    """Raised by a worker executing a ``crash`` fault rule."""


@dataclass(frozen=True)
class FaultRule:
    """One fault: job ``index`` misbehaves on its first ``times`` attempts."""

    kind: str
    index: int
    times: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of :class:`FaultRule` entries."""

    rules: tuple = ()

    @classmethod
    def parse(cls, spec):
        """Parse a ``REPRO_FAULT`` spec string into a plan.

        The spec is a comma-separated list of ``kind@index`` rules with
        an optional ``xN`` repeat count, e.g. ``"crash@1,hang@3x2"``.
        """
        rules = []
        for chunk in str(spec).split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            match = _RULE_RE.match(chunk)
            if not match:
                raise ReproError(
                    f"bad REPRO_FAULT rule {chunk!r}; expected <kind>@<job index>[xN]"
                )
            kind = match.group("kind")
            if kind == "timeout":
                kind = "hang"
            if kind not in FAULT_KINDS:
                raise ReproError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            times = int(match.group("times") or 1)
            if times < 1:
                raise ReproError(f"fault rule {chunk!r}: repeat count must be >= 1")
            rules.append(FaultRule(kind=kind, index=int(match.group("index")), times=times))
        return cls(rules=tuple(rules))

    def fault_for(self, index, attempt):
        """The fault kind job ``index`` suffers on ``attempt`` (1-based), or None."""
        for rule in self.rules:
            if rule.index == index and attempt <= rule.times:
                return rule.kind
        return None

    def __bool__(self):
        return bool(self.rules)


def plan_from_env(environ=None):
    """The :class:`FaultPlan` described by ``REPRO_FAULT``, or ``None``."""
    value = envcfg.raw("REPRO_FAULT", environ)
    if not value:
        return None
    plan = FaultPlan.parse(value)
    return plan or None


def hang_seconds(environ=None):
    """Sleep length of an injected hang (``REPRO_FAULT_HANG_SECONDS``)."""
    value = envcfg.raw("REPRO_FAULT_HANG_SECONDS", environ)
    if not value:
        return DEFAULT_HANG_SECONDS
    try:
        seconds = float(value)
    except ValueError:
        raise ReproError(
            f"REPRO_FAULT_HANG_SECONDS must be a number, got {value!r}"
        ) from None
    if seconds < 0:
        raise ReproError(f"REPRO_FAULT_HANG_SECONDS must be >= 0, got {seconds}")
    return seconds


def corrupt_payload(payload):
    """A structurally broken version of ``payload`` (fails validation)."""
    return {"circuit": payload.get("circuit") if isinstance(payload, dict) else None,
            "report": None, "labels": "corrupt"}


def raise_fault(kind):
    """Execute the pre-job part of a fault rule inside a worker.

    ``corrupt`` is a post-job fault and is applied by the caller after
    the job runs; this helper only handles the kinds that fire *instead*
    of (or before) the job.
    """
    if kind == "crash":
        raise InjectedFault("injected worker crash")
    if kind == "interrupt":
        raise KeyboardInterrupt("injected interrupt")
    if kind == "kill":
        os._exit(17)
    if kind == "hang":
        time.sleep(hang_seconds())
