"""Regenerate the paper's figures.

* :func:`figure1` — the current-recycling floorplan illustration
  (Fig. 1), rendered from a real partition instead of a cartoon;
* :func:`convergence_trace` / :func:`render_convergence` — the
  gradient-descent cost-vs-iteration curve implied by Algorithm 1's
  margin-based stopping rule;
* :func:`distance_histogram_figure` — the connection-distance
  distribution underlying the d <= 1 / d <= 2 columns.
"""

import numpy as np

from repro.circuits.suite import build_circuit
from repro.core.partitioner import partition
from repro.metrics.distance import distance_histogram
from repro.recycling.floorplan import build_floorplan


def figure1(circuit="KSA4", num_planes=5, config=None, seed=None, utilization=0.72):
    """Render the Fig. 1 stacked-ground-plane diagram for a circuit.

    Returns ``(text, floorplan, result)``.
    """
    netlist = build_circuit(circuit)
    result = partition(netlist, num_planes, config=config, seed=seed)
    floorplan = build_floorplan(result, utilization=utilization)
    return floorplan.render(), floorplan, result


def convergence_trace(circuit="KSA8", num_planes=5, config=None, seed=None):
    """Cost history of the winning gradient-descent restart.

    Returns ``(cost_history, result)``.
    """
    netlist = build_circuit(circuit)
    result = partition(netlist, num_planes, config=config, seed=seed)
    return list(result.trace.cost_history), result


def render_convergence(cost_history, width=64, height=16, title="gradient descent convergence"):
    """ASCII line plot of a cost trace (log-free, linear axes)."""
    if not cost_history:
        return f"{title}: <empty trace>"
    values = np.asarray(cost_history, dtype=float)
    low, high = float(values.min()), float(values.max())
    span = high - low or 1.0
    columns = np.linspace(0, len(values) - 1, num=min(width, len(values))).astype(int)
    sampled = values[columns]
    rows = []
    for level in range(height, -1, -1):
        threshold = low + span * level / height
        line = "".join("*" if value >= threshold else " " for value in sampled)
        rows.append(f"{threshold:10.4f} |{line}")
    axis = " " * 11 + "+" + "-" * len(sampled)
    footer = f"{'':11}0 iterations {len(values) - 1}"
    return "\n".join([title] + rows + [axis, footer])


def distance_histogram_figure(circuit="KSA8", num_planes=5, config=None, seed=None):
    """ASCII bar chart of the connection-distance histogram.

    Returns ``(text, histogram, result)``.
    """
    netlist = build_circuit(circuit)
    result = partition(netlist, num_planes, config=config, seed=seed)
    histogram = distance_histogram(result.labels, netlist.edge_array(), num_planes)
    total = max(int(histogram.sum()), 1)
    lines = [f"connection distance histogram: {circuit}, K={num_planes}"]
    for distance, count in enumerate(histogram):
        share = count / total
        bar = "#" * int(round(share * 50))
        lines.append(f"d={distance}: {count:6d} ({share * 100:5.1f}%) {bar}")
    return "\n".join(lines), histogram, result
