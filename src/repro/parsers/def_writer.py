"""DEF writer.

Serializes a :class:`~repro.netlist.netlist.Netlist` to the DEF 5.8
subset the suite uses: DESIGN / UNITS / DIEAREA / COMPONENTS / PINS /
NETS.  Every connection is a 2-pin net (SFQ netlists are point-to-point
after splitter insertion); input pins of multi-input cells are assigned
to incoming edges in edge order.
"""

import numpy as np

from repro.utils.errors import NetlistError

#: Database units per micron used by the writer.
DBU_PER_MICRON = 1000


def _dbu(value_um):
    return int(round(value_um * DBU_PER_MICRON))


def write_def(netlist, path=None, design_name=None):
    """Serialize ``netlist`` to DEF text.

    Parameters
    ----------
    netlist:
        Netlist to write; unplaced gates get coordinates (0, 0) with
        placement status UNPLACED.
    path:
        Optional file path; when given the text is also written there.
    design_name:
        DEF DESIGN name; defaults to the netlist name.

    Returns
    -------
    The DEF text (str).
    """
    design = design_name or netlist.name
    lines = [
        "VERSION 5.8 ;",
        'DIVIDERCHAR "/" ;',
        'BUSBITCHARS "[]" ;',
        f"DESIGN {design} ;",
        f"UNITS DISTANCE MICRONS {DBU_PER_MICRON} ;",
    ]

    placed = [g for g in netlist.gates if g.placed]
    if placed:
        x_max = max(g.x_um + g.cell.width_um for g in placed)
        y_max = max(g.y_um + g.cell.height_um for g in placed)
        lines.append(f"DIEAREA ( 0 0 ) ( {_dbu(x_max)} {_dbu(y_max)} ) ;")

    # ------------------------------------------------------------- COMPONENTS
    lines.append(f"COMPONENTS {netlist.num_gates} ;")
    for gate in netlist.gates:
        if gate.placed:
            lines.append(
                f"- {gate.name} {gate.cell.name} + PLACED "
                f"( {_dbu(gate.x_um)} {_dbu(gate.y_um)} ) N ;"
            )
        else:
            lines.append(f"- {gate.name} {gate.cell.name} + UNPLACED ;")
    lines.append("END COMPONENTS")

    # ------------------------------------------------------------------ PINS
    ports = list(netlist.ports.values())
    lines.append(f"PINS {len(ports)} ;")
    for port in ports:
        direction = "INPUT" if port.direction.value == "input" else "OUTPUT"
        lines.append(f"- {port.name} + NET {port.name} + DIRECTION {direction} + USE SIGNAL ;")
    lines.append("END PINS")

    # ------------------------------------------------------------------ NETS
    # Assign input pins per gate in incoming-edge order, output pins in
    # outgoing-edge order (splitters expose q0/q1).
    in_seen = np.zeros(netlist.num_gates, dtype=int)
    out_seen = np.zeros(netlist.num_gates, dtype=int)
    gates = netlist.gates

    net_lines = []
    for number, (u, v) in enumerate(netlist.edges):
        driver, sink = gates[u], gates[v]
        out_pins = driver.cell.outputs
        in_pins = sink.cell.inputs
        if out_seen[u] >= len(out_pins):
            raise NetlistError(
                f"gate {driver.name!r} drives more connections than its "
                f"cell {driver.cell.name!r} has output pins"
            )
        if in_seen[v] >= len(in_pins):
            raise NetlistError(
                f"gate {sink.name!r} receives more connections than its "
                f"cell {sink.cell.name!r} has input pins"
            )
        out_pin = out_pins[out_seen[u]]
        in_pin = in_pins[in_seen[v]]
        out_seen[u] += 1
        in_seen[v] += 1
        net_lines.append(
            f"- net{number} ( {driver.name} {out_pin} ) ( {sink.name} {in_pin} ) ;"
        )
    # Port nets connect a PIN to its bound gate.
    port_net_lines = []
    for port in ports:
        if port.gate is None:
            continue
        gate = gates[port.gate]
        if port.direction.value == "input":
            pin_index = in_seen[port.gate]
            pins = gate.cell.inputs
            pin = pins[pin_index] if pin_index < len(pins) else pins[-1] if pins else "a"
            in_seen[port.gate] += 1
        else:
            pin_index = out_seen[port.gate]
            pins = gate.cell.outputs
            pin = pins[pin_index] if pin_index < len(pins) else pins[-1]
            out_seen[port.gate] += 1
        port_net_lines.append(f"- {port.name} ( PIN {port.name} ) ( {gate.name} {pin} ) ;")

    lines.append(f"NETS {len(net_lines) + len(port_net_lines)} ;")
    lines.extend(net_lines)
    lines.extend(port_net_lines)
    lines.append("END NETS")
    lines.append("END DESIGN")
    text = "\n".join(lines) + "\n"

    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
