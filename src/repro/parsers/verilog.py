"""Structural Verilog netlist reader/writer.

A second industry-standard exchange path next to DEF (academic SFQ
flows commonly hand netlists around as flat structural Verilog).  The
subset handled: one flat module, scalar ports, ``wire`` declarations,
and named-port-association cell instances::

    module ksa4 (a_0, b_0, sum_0, ...);
      input a_0; output sum_0;
      wire n1, n2;
      AND2 g0 (.a(a_0), .b(b_0), .q(n1));
      ...
    endmodule

Direction is inferred exactly as in the DEF reader: the endpoint whose
pin is an output pin of its cell drives the net.
"""

import re

from repro.netlist.netlist import Netlist
from repro.obs import traced
from repro.utils.errors import ParseError

_IDENT = r"[A-Za-z_][A-Za-z0-9_$\[\]]*"
_MODULE_RE = re.compile(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_DECL_RE = re.compile(rf"(input|output|wire)\s+(.*?);", re.S)
_INSTANCE_RE = re.compile(rf"({_IDENT})\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_PORT_CONN_RE = re.compile(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)")


def _sanitize(name):
    """Make a netlist name Verilog-identifier safe."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def write_verilog(netlist, path=None, module_name=None):
    """Serialize a netlist to flat structural Verilog text."""
    module = _sanitize(module_name or netlist.name)
    gates = netlist.gates

    # Wire per connection; port nets named after the port.
    edge_wire = {edge: f"n{i}" for i, edge in enumerate(netlist.edges)}
    input_ports = [p for p in netlist.ports.values() if p.direction.value == "input"]
    output_ports = [p for p in netlist.ports.values() if p.direction.value == "output"]

    # pin assignment mirrors the DEF writer: in/out pins in edge order
    incoming = {}
    outgoing = {}
    for u, v in netlist.edges:
        outgoing.setdefault(u, []).append((u, v))
        incoming.setdefault(v, []).append((u, v))

    port_names = [_sanitize(p.name) for p in input_ports + output_ports]
    lines = [f"module {module} ({', '.join(port_names)});"]
    for port in input_ports:
        lines.append(f"  input {_sanitize(port.name)};")
    for port in output_ports:
        lines.append(f"  output {_sanitize(port.name)};")
    if edge_wire:
        lines.append(f"  wire {', '.join(edge_wire.values())};")

    input_of_gate = {}
    for port in input_ports:
        if port.gate is not None:
            input_of_gate.setdefault(port.gate, []).append(_sanitize(port.name))
    output_of_gate = {}
    for port in output_ports:
        if port.gate is not None:
            output_of_gate.setdefault(port.gate, []).append(_sanitize(port.name))

    for gate in gates:
        connections = []
        in_pins = list(gate.cell.inputs)
        position = 0
        for edge in incoming.get(gate.index, []):
            connections.append(f".{in_pins[position]}({edge_wire[edge]})")
            position += 1
        for port_net in input_of_gate.get(gate.index, []):
            if position < len(in_pins):
                connections.append(f".{in_pins[position]}({port_net})")
                position += 1
        out_pins = list(gate.cell.outputs)
        position = 0
        for edge in outgoing.get(gate.index, []):
            connections.append(f".{out_pins[position]}({edge_wire[edge]})")
            position += 1
        for port_net in output_of_gate.get(gate.index, []):
            pin = out_pins[position] if position < len(out_pins) else out_pins[-1]
            connections.append(f".{pin}({port_net})")
            position += 1
        lines.append(f"  {gate.cell.name} {_sanitize(gate.name)} ({', '.join(connections)});")
    lines.append("endmodule")
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


@traced("parse_verilog", result_attrs=lambda n: {"gates": n.num_gates, "connections": n.num_connections})
def parse_verilog(text, library, filename="<verilog>"):
    """Parse flat structural Verilog into a Netlist.

    Multi-sink nets are rejected (SFQ netlists are point-to-point); a
    net may connect at most one driver pin, one sink pin, and module
    ports.
    """
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)

    module_match = _MODULE_RE.search(text)
    if not module_match:
        raise ParseError("no module declaration found", filename)
    module_name = module_match.group(1)
    body = text[module_match.end():]
    end_index = body.find("endmodule")
    if end_index == -1:
        raise ParseError(f"module {module_name!r} missing endmodule", filename)
    body = body[:end_index]

    directions = {}
    for kind, names in _DECL_RE.findall(body):
        for name in names.replace("\n", " ").split(","):
            name = name.strip()
            if name:
                directions[name] = kind

    netlist = Netlist(module_name, library=library)
    # net name -> list of (gate name, pin, is_output)
    net_endpoints = {}
    for match in _INSTANCE_RE.finditer(body):
        cell_name, instance_name, connection_text = match.groups()
        if cell_name in ("input", "output", "wire", "module"):
            continue
        if cell_name not in library:
            raise ParseError(f"instance {instance_name!r} uses unknown cell {cell_name!r}", filename)
        cell = library[cell_name]
        netlist.add_gate(instance_name, cell)
        for pin, net in _PORT_CONN_RE.findall(connection_text):
            if pin in cell.outputs:
                is_output = True
            elif pin in cell.inputs:
                is_output = False
            else:
                raise ParseError(
                    f"instance {instance_name!r}: pin {pin!r} not on cell {cell_name!r}", filename
                )
            net_endpoints.setdefault(net, []).append((instance_name, pin, is_output))

    for net, endpoints in net_endpoints.items():
        drivers = [e for e in endpoints if e[2]]
        sinks = [e for e in endpoints if not e[2]]
        declared = directions.get(net)
        if declared == "input":
            if drivers:
                raise ParseError(f"input port {net!r} is driven inside the module", filename)
            if len(sinks) > 1:
                raise ParseError(f"input port {net!r} fans out to {len(sinks)} pins", filename)
            continue  # bound below
        if declared == "output":
            if len(drivers) != 1 or sinks:
                raise ParseError(f"output port {net!r} must have exactly one driver", filename)
            continue
        if len(drivers) != 1 or len(sinks) != 1:
            raise ParseError(
                f"net {net!r} has {len(drivers)} drivers / {len(sinks)} sinks; "
                "SFQ nets are point-to-point", filename
            )
        netlist.connect(drivers[0][0], sinks[0][0])

    for net, kind in directions.items():
        if kind == "wire":
            continue
        endpoints = net_endpoints.get(net, [])
        gate = endpoints[0][0] if endpoints else None
        netlist.add_port(net, kind, gate)
    return netlist
