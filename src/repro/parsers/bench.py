"""ISCAS ``.bench`` format reader/writer.

The classic ISCAS85/89 distribution format::

    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

Parsing yields a :class:`~repro.synth.logic.LogicCircuit`, so any
``.bench`` file (including real ISCAS85 sources, if the user has them)
can be pushed straight through the SFQ synthesis flow and partitioned —
the exact pipeline the paper describes.  NAND/NOR are legalized into
AND/OR + NOT; ``DFF`` is accepted for ISCAS89-style inputs.
"""

import re

from repro.obs import traced
from repro.synth.logic import LogicCircuit, LogicOp
from repro.utils.errors import ParseError

_INPUT_RE = re.compile(r"INPUT\s*\(\s*([^)\s]+)\s*\)", re.I)
_OUTPUT_RE = re.compile(r"OUTPUT\s*\(\s*([^)\s]+)\s*\)", re.I)
_ASSIGN_RE = re.compile(r"([^\s=]+)\s*=\s*([A-Za-z][A-Za-z0-9]*)\s*\(\s*([^)]*)\)")

_OPS = {
    "AND": LogicOp.AND,
    "OR": LogicOp.OR,
    "XOR": LogicOp.XOR,
    "NOT": LogicOp.NOT,
    "BUF": LogicOp.BUF,
    "BUFF": LogicOp.BUF,
    "DFF": LogicOp.DFF,
}
_NEGATED = {"NAND": LogicOp.AND, "NOR": LogicOp.OR, "XNOR": LogicOp.XOR}


@traced("parse_bench")
def parse_bench(text, name="bench", filename="<bench>"):
    """Parse ``.bench`` text into a :class:`LogicCircuit`."""
    inputs = []
    outputs = []
    assignments = []  # (line, target, op, [operands])
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        input_match = _INPUT_RE.fullmatch(line)
        if input_match:
            inputs.append(input_match.group(1))
            continue
        output_match = _OUTPUT_RE.fullmatch(line)
        if output_match:
            outputs.append(output_match.group(1))
            continue
        assign_match = _ASSIGN_RE.fullmatch(line)
        if not assign_match:
            raise ParseError(f"unrecognized line {line!r}", filename, line_number)
        target, op_name, operand_text = assign_match.groups()
        operands = [o.strip() for o in operand_text.split(",") if o.strip()]
        if not operands:
            raise ParseError(f"gate {target!r} has no operands", filename, line_number)
        assignments.append((line_number, target, op_name.upper(), operands))

    circuit = LogicCircuit(name)
    signal = {}
    for input_name in inputs:
        if input_name in signal:
            raise ParseError(f"duplicate INPUT({input_name})", filename)
        signal[input_name] = circuit.add_input(input_name)

    # .bench gates may be declared in any order: iterate until resolved.
    remaining = list(assignments)
    while remaining:
        progressed = False
        deferred = []
        for line_number, target, op_name, operands in remaining:
            if any(op not in signal for op in operands):
                deferred.append((line_number, target, op_name, operands))
                continue
            resolved = [signal[op] for op in operands]
            if op_name in _OPS:
                op = _OPS[op_name]
                if op.is_unary:
                    if len(resolved) != 1:
                        raise ParseError(
                            f"{op_name} takes one operand, got {len(resolved)}", filename, line_number
                        )
                    node = circuit.gate(op, resolved[0])
                elif len(resolved) == 1:
                    node = circuit.buf(resolved[0])
                else:
                    node = circuit.gate(op, *resolved)
            elif op_name in _NEGATED:
                if len(resolved) == 1:
                    node = circuit.not_(resolved[0])
                else:
                    node = circuit.not_(circuit.gate(_NEGATED[op_name], *resolved))
            else:
                raise ParseError(f"unknown gate type {op_name!r}", filename, line_number)
            if target in signal:
                raise ParseError(f"signal {target!r} assigned twice", filename, line_number)
            signal[target] = node
            progressed = True
        if not progressed:
            unresolved = ", ".join(t for _, t, _, _ in deferred[:5])
            raise ParseError(
                f"unresolvable (cyclic or undefined) signals: {unresolved}", filename
            )
        remaining = deferred

    for output_name in outputs:
        if output_name not in signal:
            raise ParseError(f"OUTPUT({output_name}) never defined", filename)
        node = signal[output_name]
        if circuit.node(node).op is LogicOp.INPUT:
            node = circuit.buf(node)
        circuit.set_output(output_name, node)
    return circuit


def write_bench(circuit, path=None):
    """Serialize a :class:`LogicCircuit` to ``.bench`` text.

    n-ary gates are emitted natively (the format allows any arity);
    node names are synthesized as ``N<id>`` unless the node is a named
    input.
    """
    lines = [f"# {circuit.name}"]
    names = {}
    for node in circuit.nodes():
        if node.op is LogicOp.INPUT:
            names[node.id] = node.name
            lines.append(f"INPUT({node.name})")
        else:
            names[node.id] = f"N{node.id}"
    for output_name in circuit.outputs:
        lines.append(f"OUTPUT({output_name})")

    op_names = {
        LogicOp.AND: "AND",
        LogicOp.OR: "OR",
        LogicOp.XOR: "XOR",
        LogicOp.NOT: "NOT",
        LogicOp.BUF: "BUFF",
        LogicOp.DFF: "DFF",
    }
    for node in circuit.nodes():
        if node.op.is_source:
            if node.op is not LogicOp.INPUT:
                raise ParseError(f"{circuit.name}: .bench cannot express constants (node {node.id})")
            continue
        operand_names = ", ".join(names[f] for f in node.fanins)
        lines.append(f"{names[node.id]} = {op_names[node.op]}({operand_names})")
    # OUTPUT() lines reference internal names: alias outputs at the end.
    alias_lines = []
    for output_name, node_id in circuit.outputs.items():
        if names[node_id] != output_name:
            alias_lines.append(f"{output_name} = BUFF({names[node_id]})")
    lines.extend(alias_lines)
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
