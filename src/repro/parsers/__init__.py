"""Netlist exchange formats.

The paper's benchmark suite is distributed as post-routing **DEF**
files and the paper's implementation "includes the parser for
DEF-format circuits" — so does this one:

* :mod:`repro.parsers.def_parser` / :mod:`repro.parsers.def_writer` —
  DEF 5.8 subset (DESIGN/UNITS/DIEAREA/COMPONENTS/PINS/NETS);
* :mod:`repro.parsers.lef_parser` — LEF macro reader/writer carrying the
  SFQ-specific cell properties (bias current, JJ count) so a library
  can round-trip;
* :mod:`repro.parsers.verilog` — structural Verilog netlists;
* :mod:`repro.parsers.bench` — ISCAS ``.bench`` logic format (parses to
  a :class:`~repro.synth.logic.LogicCircuit`, ready for the SFQ flow).
"""

from repro.parsers.def_writer import write_def
from repro.parsers.def_parser import parse_def
from repro.parsers.lef_parser import parse_lef, write_lef
from repro.parsers.verilog import parse_verilog, write_verilog
from repro.parsers.bench import parse_bench, write_bench

__all__ = [
    "write_def",
    "parse_def",
    "parse_lef",
    "write_lef",
    "parse_verilog",
    "write_verilog",
    "parse_bench",
    "write_bench",
]
