"""LEF reader/writer for SFQ cell libraries.

LEF carries the physical view of a cell library (macro footprints and
pins).  Standard LEF has no notion of bias current or Josephson-junction
count, so the writer emits them as LEF ``PROPERTY`` statements
(``biasCurrentMA``, ``jjCount``, ``sfqKind``, ``clocked``) and the
reader understands the same — giving the whole cell library a lossless
round-trip through an industry-standard container.
"""

from repro.netlist.cell import CellKind, CellType
from repro.netlist.library import CellLibrary
from repro.obs import traced
from repro.utils.errors import ParseError


def write_lef(library, path=None):
    """Serialize a :class:`~repro.netlist.library.CellLibrary` to LEF text."""
    lines = [
        "VERSION 5.8 ;",
        'BUSBITCHARS "[]" ;',
        'DIVIDERCHAR "/" ;',
        "UNITS",
        "  DATABASE MICRONS 1000 ;",
        "END UNITS",
    ]
    for cell in sorted(library, key=lambda c: c.name):
        lines.append(f"MACRO {cell.name}")
        lines.append("  CLASS CORE ;")
        lines.append(f"  SIZE {cell.width_um:g} BY {cell.height_um:g} ;")
        lines.append(f"  PROPERTY biasCurrentMA {cell.bias_ma:g} ;")
        lines.append(f"  PROPERTY jjCount {cell.jj_count} ;")
        lines.append(f"  PROPERTY sfqKind {cell.kind.value} ;")
        lines.append(f"  PROPERTY clocked {int(cell.clocked)} ;")
        for pin in cell.inputs:
            lines.append(f"  PIN {pin}")
            lines.append("    DIRECTION INPUT ;")
            lines.append(f"  END {pin}")
        for pin in cell.outputs:
            lines.append(f"  PIN {pin}")
            lines.append("    DIRECTION OUTPUT ;")
            lines.append(f"  END {pin}")
        lines.append(f"END {cell.name}")
    lines.append("END LIBRARY")
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


@traced("parse_lef", result_attrs=lambda lib: {"cells": len(lib)})
def parse_lef(text, library_name="lef-library", filename="<lef>"):
    """Parse LEF text into a :class:`~repro.netlist.library.CellLibrary`.

    Macros missing the SFQ property extensions get defaults (zero bias,
    zero JJs, ``logic`` kind, unclocked) so plain physical LEF still
    loads — with a :class:`ParseError` only for structural problems.
    """
    cells = []
    macro = None  # dict accumulating the current MACRO
    pin = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.replace(";", " ;").split()
        head = tokens[0]

        if head == "MACRO":
            if macro is not None:
                raise ParseError(f"nested MACRO {tokens[1]!r}", filename, line_number)
            if len(tokens) < 2:
                raise ParseError("MACRO without a name", filename, line_number)
            macro = {
                "name": tokens[1],
                "width": None,
                "height": None,
                "bias": 0.0,
                "jj": 0,
                "kind": "logic",
                "clocked": False,
                "inputs": [],
                "outputs": [],
            }
            continue
        if macro is None:
            continue  # header statements outside macros

        if head == "SIZE":
            try:
                by = tokens.index("BY")
                macro["width"] = float(tokens[1])
                macro["height"] = float(tokens[by + 1])
            except (ValueError, IndexError):
                raise ParseError(f"malformed SIZE in macro {macro['name']!r}", filename, line_number)
        elif head == "PROPERTY" and len(tokens) >= 3:
            key, value = tokens[1], tokens[2]
            if key == "biasCurrentMA":
                macro["bias"] = float(value)
            elif key == "jjCount":
                macro["jj"] = int(value)
            elif key == "sfqKind":
                macro["kind"] = value
            elif key == "clocked":
                macro["clocked"] = bool(int(value))
        elif head == "PIN":
            pin = tokens[1]
        elif head == "DIRECTION" and pin is not None:
            direction = tokens[1].upper()
            if direction == "INPUT":
                macro["inputs"].append(pin)
            elif direction == "OUTPUT":
                macro["outputs"].append(pin)
        elif head == "END":
            if len(tokens) >= 2 and pin is not None and tokens[1] == pin:
                pin = None
            elif len(tokens) >= 2 and tokens[1] == macro["name"]:
                if macro["width"] is None or macro["height"] is None:
                    raise ParseError(f"macro {macro['name']!r} has no SIZE", filename, line_number)
                try:
                    kind = CellKind(macro["kind"])
                except ValueError:
                    raise ParseError(
                        f"macro {macro['name']!r}: unknown sfqKind {macro['kind']!r}",
                        filename,
                        line_number,
                    )
                cells.append(
                    CellType(
                        name=macro["name"],
                        kind=kind,
                        bias_ma=macro["bias"],
                        width_um=macro["width"],
                        height_um=macro["height"],
                        jj_count=macro["jj"],
                        inputs=tuple(macro["inputs"]),
                        outputs=tuple(macro["outputs"]) or ("q",),
                        clocked=macro["clocked"],
                    )
                )
                macro = None
    if macro is not None:
        raise ParseError(f"unterminated MACRO {macro['name']!r}", filename)
    return CellLibrary(library_name, cells)
