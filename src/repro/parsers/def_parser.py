"""DEF parser.

Reads the DEF 5.8 subset produced by :mod:`repro.parsers.def_writer`
(and by typical academic SFQ flows): DESIGN, UNITS, DIEAREA,
COMPONENTS with PLACED/UNPLACED coordinates, PINS with NET/DIRECTION,
and 2-pin NETS.  Connection direction is inferred from pin names: the
endpoint whose pin is one of its cell's *output* pins is the driver.

The paper states its implementation "includes the parser for DEF-format
circuits"; this module is that substrate.
"""

from repro.netlist.netlist import Netlist
from repro.obs import traced
from repro.utils.errors import ParseError


def _tokenize_statements(text):
    """Yield ``(line_number, [tokens])`` per ``;``-terminated statement.

    DEF statements may span lines; comments (``#``) run to end of line.
    """
    statement = []
    start_line = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0]
        if not line.strip():
            continue
        for token in line.replace("(", " ( ").replace(")", " ) ").split():
            if start_line is None:
                start_line = line_number
            if token == ";":
                yield start_line, statement
                statement = []
                start_line = None
            else:
                statement.append(token)
        # END <section> markers have no ';'
        if statement and statement[0] == "END":
            yield start_line, statement
            statement = []
            start_line = None
    if statement:
        yield start_line, statement


def _parse_point_pairs(tokens):
    """Extract ``( x y )`` pairs from a token stream."""
    points = []
    i = 0
    while i < len(tokens):
        if tokens[i] == "(" and i + 3 < len(tokens) and tokens[i + 3] == ")":
            points.append((int(tokens[i + 1]), int(tokens[i + 2])))
            i += 4
        else:
            i += 1
    return points


def _parse_groups(tokens):
    """Extract ``( a b )`` name groups (strings) from a token stream."""
    groups = []
    i = 0
    while i < len(tokens):
        if tokens[i] == "(" and i + 3 < len(tokens) and tokens[i + 3] == ")":
            groups.append((tokens[i + 1], tokens[i + 2]))
            i += 4
        else:
            i += 1
    return groups


@traced("parse_def", result_attrs=lambda n: {"gates": n.num_gates, "connections": n.num_connections})
def parse_def(text, library, filename="<def>"):
    """Parse DEF text into a :class:`~repro.netlist.netlist.Netlist`.

    Parameters
    ----------
    text:
        DEF source (str) — pass file contents, not a path.
    library:
        :class:`~repro.netlist.library.CellLibrary` resolving component
        cell names.
    filename:
        Name used in error messages.

    Raises
    ------
    ParseError
        On malformed input, unknown cells, or nets whose direction
        cannot be inferred.
    """
    design_name = None
    dbu_per_micron = 1000
    section = None
    pending = []  # (line, tokens) statements for the current section

    netlist = None
    pin_decls = []  # (line, name, net, direction)
    net_decls = []  # (line, name, [(comp, pin)])

    for line, tokens in _tokenize_statements(text):
        head = tokens[0]
        if section is None:
            if head == "DESIGN" and len(tokens) >= 2 and design_name is None:
                design_name = tokens[1]
            elif head == "UNITS":
                try:
                    dbu_per_micron = int(tokens[tokens.index("MICRONS") + 1])
                except (ValueError, IndexError):
                    raise ParseError("malformed UNITS statement", filename, line)
            elif head in ("COMPONENTS", "PINS", "NETS"):
                section = head
                if netlist is None:
                    netlist = Netlist(design_name or "def_design", library=library)
            # VERSION / DIVIDERCHAR / BUSBITCHARS / DIEAREA / END DESIGN: ignored
            continue

        if head == "END":
            if len(tokens) >= 2 and tokens[1] == section:
                section = None
                continue
            raise ParseError(f"unexpected END in section {section}", filename, line)

        if head != "-":
            raise ParseError(f"unexpected statement {' '.join(tokens[:3])!r}", filename, line)

        body = tokens[1:]
        if section == "COMPONENTS":
            if len(body) < 2:
                raise ParseError("component needs a name and a cell", filename, line)
            comp_name, cell_name = body[0], body[1]
            if cell_name not in library:
                raise ParseError(
                    f"component {comp_name!r} uses unknown cell {cell_name!r}", filename, line
                )
            x_um = y_um = float("nan")
            if "PLACED" in body or "FIXED" in body:
                points = _parse_point_pairs(body)
                if not points:
                    raise ParseError(f"component {comp_name!r} PLACED without coordinates", filename, line)
                x_um = points[0][0] / dbu_per_micron
                y_um = points[0][1] / dbu_per_micron
            netlist.add_gate(comp_name, library[cell_name], x_um=x_um, y_um=y_um)
        elif section == "PINS":
            name = body[0]
            net = name
            direction = None
            for i, token in enumerate(body):
                if token == "NET" and i + 1 < len(body):
                    net = body[i + 1]
                if token == "DIRECTION" and i + 1 < len(body):
                    direction = body[i + 1].lower()
            if direction not in ("input", "output"):
                raise ParseError(f"pin {name!r} missing DIRECTION", filename, line)
            pin_decls.append((line, name, net, direction))
        elif section == "NETS":
            name = body[0]
            groups = _parse_groups(body)
            if not groups:
                raise ParseError(f"net {name!r} has no connections", filename, line)
            net_decls.append((line, name, groups))

    if netlist is None:
        raise ParseError("no COMPONENTS/PINS/NETS sections found", filename)

    # Resolve nets: infer driver by output-pin membership.
    bound_ports = {}
    for line, name, groups in net_decls:
        gate_endpoints = []
        pin_endpoint = None
        for comp, pin in groups:
            if comp == "PIN":
                pin_endpoint = pin
            else:
                gate_endpoints.append((comp, pin))
        for comp, pin in gate_endpoints:
            if not netlist.has_gate(comp):
                raise ParseError(f"net {name!r} references unknown component {comp!r}", filename, line)

        if pin_endpoint is not None:
            if len(gate_endpoints) != 1:
                raise ParseError(
                    f"port net {name!r} must connect exactly one component", filename, line
                )
            bound_ports[pin_endpoint] = netlist.gate(gate_endpoints[0][0]).index
            continue

        if len(gate_endpoints) != 2:
            raise ParseError(
                f"net {name!r} has {len(gate_endpoints)} component pins; "
                "this SFQ reader expects 2-pin nets", filename, line
            )
        (comp_a, pin_a), (comp_b, pin_b) = gate_endpoints
        a_is_driver = pin_a in netlist.gate(comp_a).cell.outputs
        b_is_driver = pin_b in netlist.gate(comp_b).cell.outputs
        if a_is_driver == b_is_driver:
            raise ParseError(
                f"net {name!r}: cannot infer direction "
                f"({comp_a}.{pin_a} / {comp_b}.{pin_b})", filename, line
            )
        if a_is_driver:
            netlist.connect(comp_a, comp_b)
        else:
            netlist.connect(comp_b, comp_a)

    for _, name, net, direction in pin_decls:
        netlist.add_port(name, direction, bound_ports.get(name))
    return netlist
