"""Worker node of the distributed fleet (``repro-gpp worker``).

A :class:`FleetWorker` is a pull-based execution node: it long-polls
``POST /fleet/v1/lease`` on the coordinator, executes each leased job
through the exact :func:`repro.harness.runner.run_jobs` path every
other execution mode uses (so payloads are bitwise-identical to a local
run, and ``REPRO_MEGABATCH`` packing applies to a multi-job lease),
publishes the payload into the shared content-addressed result store,
and reports back with ``POST /fleet/v1/complete``.  A daemon thread
heartbeats every active lease at the coordinator-provided period.

Fault injection (``REPRO_FAULT``) is honored *at the node level*: the
plan is parsed once at startup and removed from the worker's own
environment (so the runner underneath does not apply it a second
time), then applied per leased job by worker-local job index —

* ``kill`` hard-exits the whole node mid-job (``os._exit``): heartbeats
  stop, the lease expires, the coordinator requeues;
* ``hang`` freezes the node (heartbeats included) for
  ``REPRO_FAULT_HANG_SECONDS`` — the heartbeat-loss path;
* ``crash`` / ``interrupt`` report a failed attempt immediately;
* ``corrupt`` executes the job but reports a mangled payload, which
  the coordinator rejects as ``invalid-result``.

Because rules carry the attempt number (``kill@0`` fires on attempt 1
only) and the coordinator passes each lease's attempt, a retried job
lands cleanly on any worker — fault-driven worker death converges to
the same bitwise payloads as a clean single-node run.
"""

import os
import threading
import time

from repro.harness import faults as fault_mod
from repro.harness.checkpoint import payload_to_jsonable
from repro.harness.runner import run_jobs
from repro.harness.wire import job_from_wire
from repro.fleet.protocol import (
    resolve_max_inflight,
    resolve_poll,
    resolve_worker_id,
)
from repro.obs import OBS, TraceContext
from repro.utils.errors import ReproError


class FleetWorker:
    """One pull-based execution node; see the module docstring."""

    def __init__(self, coordinator_url, worker_id=None, max_inflight=None,
                 poll=None, store=None, fault_plan=None, verbose=False):
        from repro.service.client import ServiceClient
        from repro.service.store import ResultStore

        self.client = ServiceClient(coordinator_url)
        self.worker_id = resolve_worker_id(worker_id)
        self.max_inflight = resolve_max_inflight(max_inflight)
        self.poll = resolve_poll(poll)
        self.store = store if store is not None else ResultStore()
        self.verbose = verbose
        if fault_plan is None:
            # Claim the node's fault plan for ourselves: the runner
            # underneath must not apply the same rules a second time.
            fault_plan = fault_mod.plan_from_env()
            if fault_plan is not None:
                os.environ.pop("REPRO_FAULT", None)
        self.fault_plan = fault_plan or None
        self.jobs_executed = 0
        self.jobs_failed = 0
        self._job_index = 0           # worker-local index for fault rules
        self._stop = threading.Event()
        self._frozen = threading.Event()  # set by an injected hang
        self._active = {}             # lease id -> True while executing
        self._active_lock = threading.Lock()
        self._heartbeat_s = None
        self._heartbeat_thread = None

    def _log(self, message):
        if self.verbose:
            print(f"[worker {self.worker_id}] {message}", flush=True)

    # -- transport ------------------------------------------------------
    def _post(self, path, body):
        _status, payload = self.client._request("POST", path, body)
        return payload

    # -- heartbeats -----------------------------------------------------
    def _heartbeat_loop(self):
        while not self._stop.is_set() and not self._frozen.is_set():
            period = self._heartbeat_s or 1.0
            if self._stop.wait(period):
                return
            if self._frozen.is_set():
                return
            with self._active_lock:
                lease_ids = list(self._active)
            if not lease_ids:
                continue
            try:
                self._post("/fleet/v1/heartbeat",
                           {"worker": self.worker_id, "leases": lease_ids})
            except ReproError as error:
                self._log(f"heartbeat failed: {error}")

    def _ensure_heartbeats(self):
        if self._heartbeat_thread is None or not self._heartbeat_thread.is_alive():
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"repro-fleet-heartbeat-{self.worker_id}", daemon=True,
            )
            self._heartbeat_thread.start()

    # -- execution ------------------------------------------------------
    def _apply_pre_fault(self, lease, index):
        """The fault kind this lease suffers, after pre-job kinds fired.

        Returns ``None`` (no fault), ``"corrupt"`` (execute, then mangle
        the report) or ``"failed"`` (a failure was already reported).
        ``kill`` and ``hang`` do not return.
        """
        if self.fault_plan is None:
            return None
        kind = self.fault_plan.fault_for(index, lease.get("attempt", 1))
        if kind is None:
            return None
        self._log(f"injected fault {kind!r} on job index {index}")
        if kind == "hang":
            # A hung node is a *silent* failure: freeze heartbeats too,
            # so the coordinator sees lease expiry, not a clean report.
            self._frozen.set()
            time.sleep(fault_mod.hang_seconds())
            return "failed"
        if kind == "kill":
            fault_mod.raise_fault("kill")  # os._exit: no cleanup, no report
        if kind in ("crash", "interrupt"):
            self._complete_failure(lease, "crashed",
                                   f"injected {kind} fault on worker "
                                   f"{self.worker_id}")
            return "failed"
        return kind  # corrupt: post-job fault

    def _complete_failure(self, lease, kind, message):
        self.jobs_failed += 1
        self._post("/fleet/v1/complete", {
            "worker": self.worker_id, "lease": lease["lease"],
            "ok": False, "kind": kind, "message": message,
        })

    def _capture(self, lease):
        """Worker-side deep-trace capture context, or ``None``."""
        if not lease.get("tracing") or not lease.get("trace"):
            return None
        ctx = TraceContext.from_wire(lease["trace"])
        if ctx is None or OBS.enabled:
            return None
        return ctx

    def _execute_lease(self, lease):
        """Run one leased job and report the outcome."""
        index = self._job_index
        self._job_index += 1
        fate = self._apply_pre_fault(lease, index)
        if fate == "failed":
            return
        try:
            suite_job = job_from_wire(lease["job"])
            ctx = self._capture(lease)
            snapshot = None
            if ctx is not None:
                OBS.reset()
                OBS.enable()
                OBS.trace.context = ctx
                try:
                    payloads = run_jobs([suite_job], jobs=1)
                    snapshot = OBS.snapshot(
                        origin=f"fleet/{self.worker_id}/{lease['lease']}"
                    )
                finally:
                    OBS.disable(reset=True)
            else:
                payloads = run_jobs([suite_job], jobs=1)
            payload = payloads[0]
        except ReproError as error:
            self._complete_failure(lease, "crashed", str(error))
            return
        if fate == "corrupt":
            jsonable = fault_mod.corrupt_payload(payload_to_jsonable(payload))
        else:
            jsonable = payload_to_jsonable(payload)
            # Publish into the shared content-addressed store so any
            # node (coordinator included) answers repeat requests.
            self.store.put(lease["key"], payload,
                           meta={"request": lease.get("request")})
        body = {
            "worker": self.worker_id, "lease": lease["lease"],
            "ok": True, "payload": jsonable,
        }
        if snapshot is not None:
            body["snapshot"] = snapshot
        outcome = self._post("/fleet/v1/complete", body)
        self.jobs_executed += 1
        self._log(f"completed lease {lease['lease']} "
                  f"({outcome.get('status')}, index {index})")

    def _execute_batch(self, leases):
        """Run a multi-job lease through one ``run_jobs`` call.

        This is the fleet's mega-batch seam: with ``REPRO_MEGABATCH``
        on, compatible jobs of one lease round pack into one batched
        kernel invocation (per-job payloads stay bitwise-identical —
        the runner's contract).  Any failure falls back to the per-job
        path, which also handles fault injection and deep tracing.
        """
        try:
            suite_jobs = [job_from_wire(lease["job"]) for lease in leases]
            payloads = run_jobs(suite_jobs, jobs=1)
        except ReproError:
            for lease in leases:
                self._execute_lease(lease)
            return
        self._job_index += len(leases)
        for lease, payload in zip(leases, payloads):
            self.store.put(lease["key"], payload,
                           meta={"request": lease.get("request")})
            self._post("/fleet/v1/complete", {
                "worker": self.worker_id, "lease": lease["lease"],
                "ok": True, "payload": payload_to_jsonable(payload),
            })
            self.jobs_executed += 1
            with self._active_lock:
                self._active.pop(lease["lease"], None)

    # -- main loop ------------------------------------------------------
    def run_once(self):
        """One lease round trip; returns how many jobs were granted."""
        response = self._post("/fleet/v1/lease", {
            "worker": self.worker_id,
            "max_jobs": self.max_inflight,
            "wait": self.poll,
        })
        leases = response.get("leases") or []
        if not leases:
            return 0
        self._heartbeat_s = leases[0].get("heartbeat_s") or self._heartbeat_s
        with self._active_lock:
            for lease in leases:
                self._active[lease["lease"]] = True
        self._ensure_heartbeats()
        try:
            traced = any(l.get("tracing") and l.get("trace") for l in leases)
            if len(leases) > 1 and self.fault_plan is None and not traced:
                self._execute_batch(leases)
            else:
                for lease in leases:
                    if self._stop.is_set() or self._frozen.is_set():
                        break
                    self._execute_lease(lease)
                    with self._active_lock:
                        self._active.pop(lease["lease"], None)
        finally:
            with self._active_lock:
                for lease in leases:
                    self._active.pop(lease["lease"], None)
        return len(leases)

    def run(self):
        """Lease/execute/report until :meth:`stop` (or a fatal fault)."""
        self._log(f"polling {self.client.base_url} "
                  f"(max_inflight={self.max_inflight})")
        while not self._stop.is_set() and not self._frozen.is_set():
            try:
                granted = self.run_once()
            except ReproError as error:
                self._log(f"lease round failed: {error}")
                if self._stop.wait(min(2.0, max(0.2, self.poll or 0.5))):
                    break
                continue
            if granted == 0 and self.poll == 0:
                # wait=0 means the caller drives pacing (tests).
                if self._stop.wait(0.02):
                    break
        self._log(f"stopped after {self.jobs_executed} job(s)")
        return self.jobs_executed

    def stop(self):
        self._stop.set()


def main(argv=None):
    """``python -m repro.fleet.worker`` — the standalone worker entry."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-fleet-worker",
        description="pull-based execution node of the repro-gpp fleet",
    )
    parser.add_argument("--coordinator", required=True, metavar="URL",
                        help="coordinator base URL, e.g. http://127.0.0.1:8731")
    parser.add_argument("--id", default=None,
                        help="worker id (default REPRO_FLEET_WORKER_ID, "
                        "else <hostname>-<pid>)")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="jobs leased per round trip (default "
                        "REPRO_FLEET_MAX_INFLIGHT, else 2)")
    parser.add_argument("--poll", type=float, default=None,
                        help="idle lease long-poll seconds (default "
                        "REPRO_FLEET_POLL, else 2)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every lease and completion")
    args = parser.parse_args(argv)
    worker = FleetWorker(
        args.coordinator, worker_id=args.id, max_inflight=args.max_inflight,
        poll=args.poll, verbose=args.verbose,
    )
    print(f"repro-gpp fleet worker {worker.worker_id} ready", flush=True)
    try:
        worker.run()
    except KeyboardInterrupt:
        worker.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
