"""Distributed fleet: one coordinator, N worker nodes, shared results.

The partitioning service (:mod:`repro.service`) runs one process on one
host.  This package splits it (the first open ROADMAP item): the
**coordinator** keeps owning validation, the job queue, dedup and the
result store, and additionally exposes a worker-facing lease API
(``/fleet/v1/*`` on the same HTTP server); **worker nodes**
(``repro-gpp worker --coordinator URL``) pull leased jobs, execute them
through the exact :func:`repro.harness.runner.execute_job` / mega-batch
path every other execution mode uses, publish the payload into the
content-addressed result store, and report back.

Failure model: every lease carries a deadline and a heartbeat period.
A worker that dies (or hangs past its deadline) stops extending its
leases; the coordinator's reaper reclaims them and requeues the jobs
through the PR-4 retry taxonomy (``timed-out`` failures, exponential
backoff, bounded retries) — so worker loss converges to the same
bitwise payloads as a clean single-node run.  See docs/fleet.md.
"""

from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.protocol import (
    FLEET_PROTOCOL_VERSION,
    resolve_heartbeat,
    resolve_lease_ttl,
    resolve_max_inflight,
    resolve_poll,
    resolve_worker_id,
)
from repro.fleet.worker import FleetWorker

__all__ = [
    "FLEET_PROTOCOL_VERSION",
    "FleetCoordinator",
    "FleetWorker",
    "resolve_heartbeat",
    "resolve_lease_ttl",
    "resolve_max_inflight",
    "resolve_poll",
    "resolve_worker_id",
]
