"""Message shapes and knob resolvers of the fleet lease protocol.

The coordinator and the worker node speak JSON over four routes of the
service HTTP server (see docs/fleet.md for the full lifecycle)::

    POST /fleet/v1/lease      {"worker", "max_jobs"?, "wait"?}
                              -> {"leases": [lease...], "draining": bool}
    POST /fleet/v1/heartbeat  {"worker", "leases": [id...]}
                              -> {"extended": [id...], "unknown": [id...]}
    POST /fleet/v1/complete   {"worker", "lease", "ok", "payload"? |
                               "kind"? + "message"?, "snapshot"?}
                              -> {"status": "accepted" | "requeued" |
                                  "failed" | "stale"}
    GET  /fleet/v1/workers    -> {"workers": [...], "pending", "leased"}

One lease grant is::

    {"lease": "<id>", "key": "<request key>", "attempt": n,
     "deadline_s": <ttl>, "heartbeat_s": <period>,
     "job": <repro.harness.wire.job_to_wire dict>,
     "request": <canonical request dict>,       # result-store meta
     "trace": <TraceContext.to_wire dict>|None, # cross-node tracing
     "tracing": bool}                           # deep capture requested

The job travels in the :mod:`repro.harness.wire` form, so the worker
executes exactly the :class:`~repro.harness.runner.SuiteJob` the
coordinator built — the bitwise-parity guarantee of the whole fleet.
"""

import os
import socket

from repro import envcfg
from repro.utils.errors import ReproError

#: Version of the lease/heartbeat/complete message shapes.
FLEET_PROTOCOL_VERSION = 1

#: Default lease time-to-live in seconds.
DEFAULT_LEASE_TTL = 30.0

#: Default jobs a worker leases (and executes) per round trip.
DEFAULT_MAX_INFLIGHT = 2

#: Default long-poll wait of an idle worker's lease request.
DEFAULT_POLL = 2.0


def resolve_lease_ttl(lease_ttl=None, environ=None):
    """Lease TTL seconds: explicit > ``REPRO_FLEET_LEASE_TTL`` > 30."""
    if lease_ttl is not None:
        lease_ttl = float(lease_ttl)
        if not lease_ttl > 0:
            raise ReproError(f"lease_ttl must be > 0 seconds, got {lease_ttl}")
        return lease_ttl
    value = envcfg.number(
        "REPRO_FLEET_LEASE_TTL", float, lambda v: v > 0,
        "a number of seconds > 0", environ,
    )
    return DEFAULT_LEASE_TTL if value is None else value


def resolve_heartbeat(heartbeat=None, lease_ttl=None, environ=None):
    """Heartbeat period: explicit > ``REPRO_FLEET_HEARTBEAT`` > TTL / 3.

    Capped at half the lease TTL — a period at or beyond the TTL could
    never extend a lease in time, which would turn every slow job into
    a spurious requeue.
    """
    ttl = resolve_lease_ttl(lease_ttl, environ)
    if heartbeat is None:
        heartbeat = envcfg.number(
            "REPRO_FLEET_HEARTBEAT", float, lambda v: v > 0,
            "a number of seconds > 0", environ,
        )
    if heartbeat is None:
        return ttl / 3.0
    heartbeat = float(heartbeat)
    if not heartbeat > 0:
        raise ReproError(f"heartbeat must be > 0 seconds, got {heartbeat}")
    return min(heartbeat, ttl / 2.0)


def resolve_max_inflight(max_inflight=None, environ=None):
    """Jobs per lease call: explicit > ``REPRO_FLEET_MAX_INFLIGHT`` > 2."""
    if max_inflight is not None:
        max_inflight = int(max_inflight)
        if max_inflight < 1:
            raise ReproError(f"max_inflight must be >= 1, got {max_inflight}")
        return max_inflight
    value = envcfg.number(
        "REPRO_FLEET_MAX_INFLIGHT", int, lambda v: v >= 1,
        "an integer >= 1", environ,
    )
    return DEFAULT_MAX_INFLIGHT if value is None else value


def resolve_poll(poll=None, environ=None):
    """Idle lease long-poll seconds: explicit > ``REPRO_FLEET_POLL`` > 2."""
    if poll is not None:
        poll = float(poll)
        if poll < 0:
            raise ReproError(f"poll must be >= 0 seconds, got {poll}")
        return poll
    value = envcfg.number(
        "REPRO_FLEET_POLL", float, lambda v: v >= 0,
        "a number of seconds >= 0", environ,
    )
    return DEFAULT_POLL if value is None else value


def resolve_worker_id(worker_id=None, environ=None):
    """Worker id: explicit > ``REPRO_FLEET_WORKER_ID`` > ``<host>-<pid>``."""
    if worker_id:
        return str(worker_id)
    value = envcfg.raw("REPRO_FLEET_WORKER_ID", environ)
    if value:
        return value
    return f"{socket.gethostname()}-{os.getpid()}"
