"""Coordinator side of the distributed fleet: leases, heartbeats, requeue.

:class:`FleetCoordinator` owns the fleet work queue.  The service's
:class:`~repro.service.jobs.JobManager` (``isolation="fleet"``) submits
each admitted job here instead of solving locally; worker nodes pull
the queue over the ``/fleet/v1`` HTTP routes and report results back.

Failure handling reuses the PR-4 taxonomy end to end:

* a worker reporting a failed attempt (``crashed`` / ``timed-out`` /
  ``invalid-result`` / ``cache-corrupt``) charges one retry and the job
  is requeued after the runner's exponential backoff
  (``backoff * 2**(n-1)``);
* a returned payload is validated with
  :func:`repro.harness.runner.validate_payload` — garbage counts as an
  ``invalid-result`` attempt, exactly like a corrupt pool worker;
* a lease whose deadline passes without a heartbeat extension (worker
  death, hang, network partition) is reclaimed by the reaper thread and
  charged as a ``timed-out`` attempt;
* a job that exhausts its retries fails with the full failure history,
  same as :func:`repro.harness.runner.run_jobs`.

Thread safety: one condition variable guards the queue, the lease
table and the worker roster; lease requests long-poll on it so work is
handed out the moment it is queued.
"""

import threading
import time
import uuid

from repro.harness.checkpoint import payload_from_jsonable
from repro.harness.runner import (
    JOB_ERROR_KINDS,
    JobFailure,
    resolve_backoff,
    resolve_retries,
    validate_payload,
)
from repro.harness.wire import job_to_wire
from repro.fleet.protocol import resolve_heartbeat, resolve_lease_ttl
from repro.utils.errors import ReproError

#: Upper bound on one lease long-poll, whatever the worker asked for.
MAX_LEASE_WAIT = 30.0

#: Finished tasks beyond this many are evicted oldest-first.
MAX_FINISHED_TASKS = 1024


class FleetTask:
    """One job's journey through the fleet queue."""

    __slots__ = ("id", "key", "job", "request", "trace", "tracing", "job_id",
                 "index", "state", "attempts", "failures", "not_before",
                 "payload", "snapshot", "error", "done_event", "worker")

    def __init__(self, key, job, request, trace, tracing, job_id, index):
        self.id = uuid.uuid4().hex[:16]
        self.key = key
        self.job = job                # SuiteJob
        self.request = request        # canonical request dict (store meta)
        self.trace = trace            # TraceContext wire dict or None
        self.tracing = bool(tracing)  # deep solver capture requested
        self.job_id = job_id          # service Job id (event correlation)
        self.index = index            # submit order (JobFailure.index)
        self.state = "pending"        # pending | leased | done | failed
        self.attempts = 0             # leases granted so far
        self.failures = []            # JobFailure records, oldest first
        self.not_before = 0.0         # backoff gate for the next lease
        self.payload = None           # decoded execute_job payload
        self.snapshot = None          # worker obs snapshot (deep tracing)
        self.error = None
        self.done_event = threading.Event()
        self.worker = None            # worker id of the completing node

    def wait(self, timeout=None):
        """Block until resolved; ``(payload, snapshot)`` or ReproError."""
        if not self.done_event.wait(timeout):
            raise ReproError(
                f"fleet job {self.key[:12]} not resolved within {timeout} s "
                f"(state {self.state}; are worker nodes connected?)"
            )
        if self.state == "failed":
            raise ReproError(self.error or "fleet job failed")
        return self.payload, self.snapshot


class FleetCoordinator:
    """See the module docstring."""

    def __init__(self, lease_ttl=None, heartbeat=None, retries=None,
                 backoff=None, metrics=None, events=None, reap_interval=None):
        self.lease_ttl = resolve_lease_ttl(lease_ttl)
        self.heartbeat_s = resolve_heartbeat(heartbeat, self.lease_ttl)
        self.retries = resolve_retries(retries)
        self.backoff = resolve_backoff(backoff)
        self.metrics = metrics
        self.events = events
        self._reap_interval = (
            reap_interval if reap_interval is not None
            else max(0.05, min(1.0, self.lease_ttl / 4.0))
        )
        self._cond = threading.Condition()
        self._pending = []            # FleetTasks awaiting a lease
        self._leases = {}             # lease id -> (task, worker_id, deadline)
        self._tasks = {}              # task id -> FleetTask
        self._finished_order = []     # finished task ids, oldest first
        self._workers = {}            # worker id -> roster record
        self._index = 0
        self._running = False
        self._reaper = None

    # -- metrics / events ----------------------------------------------
    def _inc_locked(self, name, amount=1):
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _gauge_locked(self, name, value):
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def _emit(self, event, task=None, **attrs):
        if self.events is None:
            return
        job_id = task.job_id if task is not None else None
        self.events.emit(event, job_id=job_id, **attrs)

    def _refresh_gauges_locked(self):
        self._gauge_locked("fleet.workers", len(self._workers))
        self._gauge_locked("fleet.jobs.pending", len(self._pending))
        self._gauge_locked("fleet.jobs.leased", len(self._leases))

    # -- lifecycle -----------------------------------------------------
    def start(self):
        with self._cond:
            if self._running:
                return self
            self._running = True
        self._reaper = threading.Thread(
            target=self._reaper_loop, name="repro-fleet-reaper", daemon=True
        )
        self._reaper.start()
        return self

    def stop(self, timeout=5.0):
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._reaper is not None:
            self._reaper.join(timeout)
            self._reaper = None
        return self

    # -- JobManager side -----------------------------------------------
    def submit(self, key, suite_job, request, trace=None, tracing=False,
               job_id=None):
        """Queue one job for the fleet; returns its :class:`FleetTask`.

        Dedup by content key happens upstream in the
        :class:`~repro.service.jobs.JobManager`, so every submit here is
        a distinct unit of work.
        """
        self.start()
        with self._cond:
            task = FleetTask(key, suite_job, request, trace, tracing,
                             job_id, self._index)
            self._index += 1
            self._tasks[task.id] = task
            self._pending.append(task)
            self._inc_locked("fleet.jobs.submitted")
            self._refresh_gauges_locked()
            self._cond.notify_all()
        self._emit("fleet.queued", task, key=key)
        return task

    # -- worker-facing API ---------------------------------------------
    def _roster_locked(self, worker_id):
        record = self._workers.get(worker_id)
        now = time.time()
        if record is None:
            record = {"first_seen": now, "last_seen": now,
                      "completed": 0, "failed": 0, "leases": set()}
            self._workers[worker_id] = record
        else:
            record["last_seen"] = now
        return record

    def _grant_locked(self, worker_id, now):
        """Pop the first leasable pending task, or ``None``."""
        for position, task in enumerate(self._pending):
            if task.not_before <= now:
                del self._pending[position]
                break
        else:
            return None
        task.state = "leased"
        task.attempts += 1
        lease_id = uuid.uuid4().hex[:16]
        self._leases[lease_id] = (task, worker_id, now + self.lease_ttl)
        record = self._roster_locked(worker_id)
        record["leases"].add(lease_id)
        self._gauge_locked(f"fleet.worker.{worker_id}.leases",
                           len(record["leases"]))
        self._inc_locked("fleet.lease.granted")
        return task, {
            "lease": lease_id,
            "key": task.key,
            "attempt": task.attempts,
            "deadline_s": self.lease_ttl,
            "heartbeat_s": self.heartbeat_s,
            "job": job_to_wire(task.job),
            "request": task.request,
            "trace": task.trace,
            "tracing": task.tracing,
        }

    def lease(self, worker_id, max_jobs=1, wait=0.0):
        """Grant up to ``max_jobs`` leases, long-polling up to ``wait`` s."""
        if not worker_id:
            raise ReproError("lease requests must carry a worker id")
        max_jobs = max(1, int(max_jobs))
        deadline = time.monotonic() + max(0.0, min(float(wait), MAX_LEASE_WAIT))
        grants = []
        with self._cond:
            self._roster_locked(worker_id)
            while True:
                now = time.time()
                while len(grants) < max_jobs:
                    granted = self._grant_locked(worker_id, now)
                    if granted is None:
                        break
                    grants.append(granted)
                if grants or not self._running:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                # Wake early for the nearest backoff gate so a job in
                # backoff is handed out the moment it becomes eligible.
                gates = [task.not_before - now for task in self._pending
                         if task.not_before > now]
                pause = min([remaining] + [max(0.01, g) for g in gates])
                self._cond.wait(timeout=min(pause, 0.5))
            if not grants:
                self._inc_locked("fleet.lease.empty")
            self._refresh_gauges_locked()
        for task, grant in grants:
            self._emit("fleet.leased", task, worker=worker_id,
                       lease=grant["lease"], attempt=grant["attempt"])
        return [grant for _task, grant in grants]

    def heartbeat(self, worker_id, lease_ids):
        """Extend the deadlines of a worker's live leases."""
        if not worker_id:
            raise ReproError("heartbeats must carry a worker id")
        extended, unknown = [], []
        with self._cond:
            self._roster_locked(worker_id)
            now = time.time()
            for lease_id in lease_ids or ():
                entry = self._leases.get(lease_id)
                if entry is None:
                    unknown.append(lease_id)
                    continue
                task, owner, _deadline = entry
                self._leases[lease_id] = (task, owner, now + self.lease_ttl)
                extended.append(lease_id)
            self._inc_locked("fleet.heartbeats")
        return {"extended": extended, "unknown": unknown,
                "heartbeat_s": self.heartbeat_s}

    def complete(self, worker_id, lease_id, ok, payload=None, kind=None,
                 message=None, snapshot=None):
        """A worker's result report; returns the outcome status string.

        ``payload`` is the JSON-able
        (:func:`~repro.harness.checkpoint.payload_to_jsonable`) form of
        the worker's ``execute_job`` output.  An unknown or expired
        lease answers ``"stale"`` — the job was already requeued (and
        results are deterministic), so the late result is dropped.
        """
        finish = None
        with self._cond:
            record = self._roster_locked(worker_id)
            entry = self._leases.pop(lease_id, None)
            if entry is None:
                self._inc_locked("fleet.complete.stale")
                return "stale"
            task, _owner, _deadline = entry
            record["leases"].discard(lease_id)
            self._gauge_locked(f"fleet.worker.{worker_id}.leases",
                               len(record["leases"]))
            if ok:
                try:
                    decoded = payload_from_jsonable(payload)
                except Exception as error:  # noqa: BLE001 - worker data
                    decoded, problem = None, f"payload does not decode: {error}"
                else:
                    problem = validate_payload(task.job, decoded)
                if problem is None:
                    task.state = "done"
                    task.payload = decoded
                    task.snapshot = snapshot
                    task.worker = worker_id
                    record["completed"] += 1
                    self._inc_locked("fleet.completions")
                    self._finish_locked(task)
                    finish = ("fleet.completed", task,
                              {"worker": worker_id, "attempt": task.attempts})
                    status = "accepted"
                else:
                    record["failed"] += 1
                    status = self._fail_attempt_locked(
                        task, "invalid-result",
                        f"worker {worker_id} returned an invalid payload: "
                        f"{problem}",
                    )
            else:
                failure_kind = kind if kind in JOB_ERROR_KINDS else "crashed"
                record["failed"] += 1
                status = self._fail_attempt_locked(
                    task, failure_kind,
                    message or f"worker {worker_id} reported failure",
                )
            self._refresh_gauges_locked()
            self._cond.notify_all()
        if finish is not None:
            event, task, attrs = finish
            self._emit(event, task, **attrs)
        return status

    # -- failure accounting --------------------------------------------
    def _fail_attempt_locked(self, task, kind, message):
        """Charge one failed attempt; requeue or exhaust the task."""
        failure = JobFailure(index=task.index, kind=kind,
                             attempt=task.attempts, message=message)
        task.failures.append(failure)
        self._inc_locked(f"fleet.failures.{kind}")
        if len(task.failures) > self.retries:
            task.state = "failed"
            history = "; ".join(
                f"attempt {f.attempt}: {f.kind}: {f.message}"
                for f in task.failures
            )
            task.error = (
                f"fleet job failed after {task.attempts} attempt(s) "
                f"({self.retries} retries): {history}"
            )
            self._inc_locked("fleet.jobs.failed")
            self._finish_locked(task)
            self._emit("fleet.failed", task, kind=kind, attempts=task.attempts)
            return "failed"
        retry_n = len(task.failures)
        task.state = "pending"
        task.not_before = time.time() + self.backoff * (2 ** (retry_n - 1))
        self._pending.append(task)
        self._inc_locked("fleet.requeues")
        self._inc_locked("fleet.retries")
        self._emit("fleet.requeued", task, kind=kind, attempt=task.attempts,
                   message=message)
        return "requeued"

    def _finish_locked(self, task):
        task.done_event.set()
        self._finished_order.append(task.id)
        while len(self._finished_order) > MAX_FINISHED_TASKS:
            evicted = self._finished_order.pop(0)
            if evicted != task.id:
                self._tasks.pop(evicted, None)

    # -- reaper ---------------------------------------------------------
    def reap_expired(self, now=None):
        """Reclaim leases whose deadline passed; returns how many."""
        now = time.time() if now is None else now
        reclaimed = 0
        with self._cond:
            for lease_id in [
                lease_id for lease_id, (_t, _w, deadline) in self._leases.items()
                if deadline < now
            ]:
                task, worker_id, _deadline = self._leases.pop(lease_id)
                record = self._workers.get(worker_id)
                if record is not None:
                    record["leases"].discard(lease_id)
                    record["failed"] += 1
                    self._gauge_locked(f"fleet.worker.{worker_id}.leases",
                                       len(record["leases"]))
                self._inc_locked("fleet.lease.expired")
                self._fail_attempt_locked(
                    task, "timed-out",
                    f"lease {lease_id} on worker {worker_id} expired after "
                    f"{self.lease_ttl} s without a heartbeat",
                )
                reclaimed += 1
            if reclaimed:
                self._refresh_gauges_locked()
                self._cond.notify_all()
        return reclaimed

    def _reaper_loop(self):
        while True:
            with self._cond:
                if not self._running:
                    return
            self.reap_expired()
            time.sleep(self._reap_interval)

    # -- introspection ---------------------------------------------------
    def pending_count(self):
        with self._cond:
            return len(self._pending)

    def leased_count(self):
        with self._cond:
            return len(self._leases)

    def workers_snapshot(self):
        """Roster + queue state for ``/fleet/v1/workers`` and ``/healthz``."""
        now = time.time()
        with self._cond:
            workers = [
                {
                    "id": worker_id,
                    "first_seen": record["first_seen"],
                    "last_seen": record["last_seen"],
                    "last_heartbeat_age_s": round(now - record["last_seen"], 3),
                    "active_leases": len(record["leases"]),
                    "completed": record["completed"],
                    "failed": record["failed"],
                }
                for worker_id, record in sorted(self._workers.items())
            ]
            return {
                "workers": workers,
                "pending": len(self._pending),
                "leased": len(self._leases),
                "lease_ttl_s": self.lease_ttl,
                "heartbeat_s": self.heartbeat_s,
            }
