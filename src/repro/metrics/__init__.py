"""Partition-quality metrics — the columns of Tables I-III.

* :mod:`repro.metrics.distance` — connection distance distribution
  (``d <= 1``, ``d <= 2``, ``d <= floor(K/2)``).
* :mod:`repro.metrics.bias` — per-plane bias currents, ``B_max``,
  compensation current ``I_comp`` (eq. (11)).
* :mod:`repro.metrics.area` — per-plane areas, ``A_max``, free space
  ``A_FS``.
* :mod:`repro.metrics.report` — one-stop :class:`PartitionReport`.
"""

from repro.metrics.distance import (
    connection_distances,
    distance_histogram,
    fraction_within,
    mean_distance,
)
from repro.metrics.bias import BiasMetrics, bias_metrics
from repro.metrics.area import AreaMetrics, area_metrics
from repro.metrics.report import PartitionReport, evaluate_partition

__all__ = [
    "connection_distances",
    "distance_histogram",
    "fraction_within",
    "mean_distance",
    "BiasMetrics",
    "bias_metrics",
    "AreaMetrics",
    "area_metrics",
    "PartitionReport",
    "evaluate_partition",
]
