"""Bias-current metrics — eq. (11) of the paper.

``B_max`` is the bias of the hungriest plane; since all planes are
biased serially with the *same* current, every other plane must burn the
difference in dummy structures.  ``I_comp = sum_k (B_max - B_k)`` is
that total wasted current, reported as a percentage of ``B_cir``.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BiasMetrics:
    """Per-partition bias-current summary.

    Attributes
    ----------
    per_plane_ma:
        ``B_k`` for each plane, in mA.
    total_ma:
        ``B_cir`` — circuit total.
    b_max_ma:
        ``max_k B_k`` (this is also the external supply current).
    i_comp_ma:
        ``sum_k (B_max - B_k)`` — current routed through dummies.
    i_comp_pct:
        ``I_comp / B_cir * 100`` — the paper's table column.
    """

    per_plane_ma: np.ndarray
    total_ma: float
    b_max_ma: float
    i_comp_ma: float
    i_comp_pct: float

    @property
    def b_min_ma(self):
        return float(self.per_plane_ma.min())

    @property
    def imbalance_ratio(self):
        """``B_max / mean(B_k)`` — 1.0 for a perfect partition."""
        mean = self.per_plane_ma.mean()
        return float(self.b_max_ma / mean) if mean else float("inf")


def per_plane_bias(labels, bias_ma, num_planes):
    """``B_k = sum_i b_i w_ik`` for the hard assignment, shape ``(K,)``."""
    labels = np.asarray(labels, dtype=np.intp)
    bias_ma = np.asarray(bias_ma, dtype=float)
    return np.bincount(labels, weights=bias_ma, minlength=num_planes)[:num_planes]


def bias_metrics(labels, bias_ma, num_planes):
    """Compute :class:`BiasMetrics` for a hard assignment (eq. (11))."""
    per_plane = per_plane_bias(labels, bias_ma, num_planes)
    total = float(per_plane.sum())
    b_max = float(per_plane.max()) if per_plane.size else 0.0
    i_comp = float((b_max - per_plane).sum())
    i_comp_pct = (i_comp / total * 100.0) if total else 0.0
    return BiasMetrics(
        per_plane_ma=per_plane,
        total_ma=total,
        b_max_ma=b_max,
        i_comp_ma=i_comp,
        i_comp_pct=i_comp_pct,
    )
