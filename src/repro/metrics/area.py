"""Area metrics.

With all K plane stripes sized for the largest block, every smaller
block leaves ``A_max - A_k`` of unusable white space.  The paper reports
``A_max`` and the total free space ``A_FS = sum_k (A_max - A_k)`` as a
percentage of the circuit area ``A_cir`` (verified against Table I:
KSA4 has ``5 * 0.0972 - 0.4512 = 0.0348 mm^2`` free, i.e. 7.71 %).
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AreaMetrics:
    """Per-partition area summary (mm^2 and percent)."""

    per_plane_mm2: np.ndarray
    total_mm2: float
    a_max_mm2: float
    free_space_mm2: float
    free_space_pct: float

    @property
    def a_min_mm2(self):
        return float(self.per_plane_mm2.min())

    @property
    def chip_area_mm2(self):
        """Total chip area if each plane stripe is sized at ``A_max``."""
        return float(self.a_max_mm2 * self.per_plane_mm2.size)


def per_plane_area(labels, area_mm2, num_planes):
    """``A_k = sum_i a_i w_ik`` for the hard assignment, shape ``(K,)``."""
    labels = np.asarray(labels, dtype=np.intp)
    area_mm2 = np.asarray(area_mm2, dtype=float)
    return np.bincount(labels, weights=area_mm2, minlength=num_planes)[:num_planes]


def area_metrics(labels, area_mm2, num_planes):
    """Compute :class:`AreaMetrics` for a hard assignment."""
    per_plane = per_plane_area(labels, area_mm2, num_planes)
    total = float(per_plane.sum())
    a_max = float(per_plane.max()) if per_plane.size else 0.0
    free = float((a_max - per_plane).sum())
    free_pct = (free / total * 100.0) if total else 0.0
    return AreaMetrics(
        per_plane_mm2=per_plane,
        total_mm2=total,
        a_max_mm2=a_max,
        free_space_mm2=free,
        free_space_pct=free_pct,
    )
