"""Connection-distance metrics.

For a finished partition the paper defines, per connection ``(i1, i2)``,
the distance ``d = |l_i1 - l_i2|`` — the number of plane boundaries an
SFQ pulse must cross.  ``d == 0`` is an intra-plane connection (free),
``d == 1`` needs one inductive-coupling driver/receiver pair, ``d >= 2``
needs a chain of them through every intermediate plane (undesirable).
Tables I and II report the fraction of connections with ``d <= 1``,
``d <= 2`` and ``d <= floor(K/2)``.
"""

import numpy as np


def connection_distances(labels, edges):
    """Per-connection plane distance, shape ``(|E|,)`` (int)."""
    labels = np.asarray(labels)
    edges = np.asarray(edges, dtype=np.intp).reshape(-1, 2)
    if edges.shape[0] == 0:
        return np.zeros(0, dtype=np.intp)
    return np.abs(labels[edges[:, 0]] - labels[edges[:, 1]]).astype(np.intp)


def fraction_within(labels, edges, max_distance):
    """Fraction of connections with ``d <= max_distance`` (in [0, 1]).

    Defined as 1.0 for a circuit with no connections (nothing violates).
    """
    distances = connection_distances(labels, edges)
    if distances.size == 0:
        return 1.0
    return float(np.count_nonzero(distances <= max_distance)) / distances.size


def distance_histogram(labels, edges, num_planes):
    """Count of connections at every distance ``0 .. K-1``, shape ``(K,)``."""
    distances = connection_distances(labels, edges)
    return np.bincount(distances, minlength=num_planes)[:num_planes]


def mean_distance(labels, edges):
    """Average plane distance per connection (0.0 when there are none)."""
    distances = connection_distances(labels, edges)
    if distances.size == 0:
        return 0.0
    return float(distances.mean())


def coupling_pairs_required(labels, edges):
    """Total driver/receiver pairs needed to realize all connections.

    A connection at distance ``d`` needs ``d`` inductive coupling pairs
    (one per plane boundary crossed, Section III-B.3), so the total is
    simply the sum of distances.
    """
    return int(connection_distances(labels, edges).sum())
