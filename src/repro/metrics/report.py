"""One-stop partition evaluation: every column of the paper's tables."""

from dataclasses import dataclass

from repro.metrics.area import AreaMetrics, area_metrics
from repro.metrics.bias import BiasMetrics, bias_metrics
from repro.metrics.distance import (
    connection_distances,
    coupling_pairs_required,
    fraction_within,
    mean_distance,
)


@dataclass(frozen=True)
class PartitionReport:
    """All reported quantities for one partitioned circuit.

    Mirrors one row of Table I (plus the extra ``d <= floor(K/2)`` column
    of Tables II/III and a few derived quantities the recycling planner
    uses).
    """

    circuit: str
    num_planes: int
    num_gates: int
    num_connections: int
    frac_d_le_1: float
    frac_d_le_2: float
    frac_d_le_half_k: float
    mean_distance: float
    coupling_pairs: int
    bias: BiasMetrics
    area: AreaMetrics

    # -- paper table column aliases -------------------------------------
    @property
    def b_cir_ma(self):
        return self.bias.total_ma

    @property
    def b_max_ma(self):
        return self.bias.b_max_ma

    @property
    def i_comp_pct(self):
        return self.bias.i_comp_pct

    @property
    def a_cir_mm2(self):
        return self.area.total_mm2

    @property
    def a_max_mm2(self):
        return self.area.a_max_mm2

    @property
    def a_fs_pct(self):
        return self.area.free_space_pct

    def as_dict(self):
        """Flat dictionary with the table-column names used in the paper."""
        return {
            "circuit": self.circuit,
            "K": self.num_planes,
            "gates": self.num_gates,
            "connections": self.num_connections,
            "d<=1": self.frac_d_le_1,
            "d<=2": self.frac_d_le_2,
            "d<=K/2": self.frac_d_le_half_k,
            "B_cir_mA": self.b_cir_ma,
            "B_max_mA": self.b_max_ma,
            "I_comp_pct": self.i_comp_pct,
            "A_cir_mm2": self.a_cir_mm2,
            "A_max_mm2": self.a_max_mm2,
            "A_FS_pct": self.a_fs_pct,
        }


def evaluate_partition(result):
    """Build a :class:`PartitionReport` from a
    :class:`~repro.core.partitioner.PartitionResult`."""
    netlist = result.netlist
    labels = result.labels
    edges = netlist.edge_array()
    k = result.num_planes
    return PartitionReport(
        circuit=netlist.name,
        num_planes=k,
        num_gates=netlist.num_gates,
        num_connections=netlist.num_connections,
        frac_d_le_1=fraction_within(labels, edges, 1),
        frac_d_le_2=fraction_within(labels, edges, 2),
        frac_d_le_half_k=fraction_within(labels, edges, k // 2),
        mean_distance=mean_distance(labels, edges),
        coupling_pairs=coupling_pairs_required(labels, edges),
        bias=bias_metrics(labels, netlist.bias_vector_ma(), k),
        area=area_metrics(labels, netlist.area_vector_mm2(), k),
    )
