"""Shared utilities: physical units, deterministic RNG helpers, errors."""

from repro.utils.errors import (
    ReproError,
    NetlistError,
    ParseError,
    PartitionError,
    SynthesisError,
    RecyclingError,
)
from repro.utils.units import (
    PHI0_WB,
    BIAS_BUS_VOLTAGE_MV,
    milliamps,
    microamps,
    mm2,
    um2,
    um2_to_mm2,
    mm2_to_um2,
    format_current_ma,
    format_area_mm2,
)
from repro.utils.rng import make_rng, spawn_rngs

__all__ = [
    "ReproError",
    "NetlistError",
    "ParseError",
    "PartitionError",
    "SynthesisError",
    "RecyclingError",
    "PHI0_WB",
    "BIAS_BUS_VOLTAGE_MV",
    "milliamps",
    "microamps",
    "mm2",
    "um2",
    "um2_to_mm2",
    "mm2_to_um2",
    "format_current_ma",
    "format_area_mm2",
    "make_rng",
    "spawn_rngs",
]
