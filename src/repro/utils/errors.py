"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch one base class at the API boundary while tests can assert on the
precise failure category.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """Raised for structurally invalid netlists (dangling pins, unknown
    cells, duplicate gate names, self-loops where they are not allowed)."""


class ParseError(ReproError):
    """Raised by the DEF/LEF/Verilog/bench parsers on malformed input.

    Carries optional source location information for diagnostics.
    """

    def __init__(self, message, filename=None, line=None):
        self.filename = filename
        self.line = line
        location = ""
        if filename is not None:
            location = f"{filename}:"
        if line is not None:
            location += f"{line}:"
        if location:
            message = f"{location} {message}"
        super().__init__(message)


class PartitionError(ReproError):
    """Raised by the core partitioner for invalid configurations
    (e.g. K < 2, K > number of gates, non-finite cost weights)."""


class SynthesisError(ReproError):
    """Raised by the SFQ synthesis flow (unmappable logic gate,
    unbalanced path that cannot be legalized, fanout bound violations)."""


class CacheCorruptError(ReproError):
    """Raised when a content-keyed artifact (cache entry, checkpoint
    line) fails its checksum or schema validation.  The stores normally
    self-heal — they drop the entry and regenerate — so this surfaces
    only through the suite runner's error taxonomy (``cache-corrupt``)
    and in tests."""


class RecyclingError(ReproError):
    """Raised by the current-recycling planner (infeasible serial bias
    chain, coupling between non-adjacent planes, dummy sizing failure)."""
