"""Physical units and constants used throughout the package.

Internal conventions (chosen once, converted at the boundaries):

* bias currents are stored in **milliamperes (mA)** — the unit used in all
  of the paper's tables;
* areas are stored in **square millimetres (mm^2)** for chip/plane level
  quantities and **square micrometres (um^2)** for cell-level quantities;
* voltages in **millivolts (mV)**.
"""

#: Single flux quantum, h / 2e, in webers (V*s).  Eq. (1) of the paper.
PHI0_WB = 2.067833848e-15

#: Typical ERSFQ/RSFQ bias bus voltage in millivolts (Section III-A).
BIAS_BUS_VOLTAGE_MV = 2.5

#: Square micrometres per square millimetre.
_UM2_PER_MM2 = 1.0e6


def milliamps(value):
    """Identity helper marking that ``value`` is interpreted as mA."""
    return float(value)


def microamps(value):
    """Convert a value expressed in microamperes to milliamperes."""
    return float(value) / 1000.0


def mm2(value):
    """Identity helper marking that ``value`` is interpreted as mm^2."""
    return float(value)


def um2(value):
    """Identity helper marking that ``value`` is interpreted as um^2."""
    return float(value)


def um2_to_mm2(value_um2):
    """Convert an area (scalar or array) from um^2 to mm^2."""
    return value_um2 / _UM2_PER_MM2


def mm2_to_um2(value_mm2):
    """Convert an area (scalar or array) from mm^2 to um^2."""
    return value_mm2 * _UM2_PER_MM2


def format_current_ma(value_ma, digits=2):
    """Render a current in mA the way the paper's tables do (e.g. ``17.50``)."""
    return f"{value_ma:.{digits}f}"


def format_area_mm2(value_mm2, digits=4):
    """Render an area in mm^2 the way the paper's tables do (e.g. ``0.0972``)."""
    return f"{value_mm2:.{digits}f}"
