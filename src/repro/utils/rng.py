"""Deterministic random number generation helpers.

All stochastic code in the package (random initialization of the assignment
matrix, random baseline partitioner, synthetic workload jitter) accepts
either an integer seed or an existing :class:`numpy.random.Generator` and
routes it through :func:`make_rng`, so every experiment is reproducible
from a single seed.
"""

import numpy as np


def make_rng(seed_or_rng=None):
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``numpy.random.Generator`` (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng, count):
    """Derive ``count`` independent child generators from one seed/rng.

    Used by multi-restart optimization so that each restart sees an
    independent stream while the whole run stays reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed_or_rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
