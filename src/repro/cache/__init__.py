"""repro.cache — persistent, content-keyed artifact cache.

Synthesizing a benchmark netlist (logic generation, mapping, path
balancing, splitter insertion, placement, rule checks) dominates the
cold start of every table/bench regeneration — ID8 alone is ~7k gates.
The artifacts are pure functions of (generator, parameters, cell
library, code schema version), so they cache perfectly: this package
stores the serialized netlist plus the solver's edge/bias/area vectors
on disk keyed by a sha256 over exactly those inputs
(:func:`repro.cache.store.cache_key`).

High-level API used by :func:`repro.circuits.suite.build_circuit`::

    from repro.cache import default_cache, netlist_key

    key = netlist_key(["kogge_stone_adder", {"width": 8}], options_dict, library)
    netlist = load_cached_netlist(default_cache(), key, library)
    if netlist is None:
        netlist = ...synthesize...
        store_netlist(default_cache(), key, netlist)

Environment knobs: ``REPRO_CACHE_DIR`` moves the store,
``REPRO_CACHE=0`` disables it.  ``repro-gpp cache info|clear`` inspects
and clears the ``repro`` namespace (and only it).
"""

import numpy as np

from repro.cache.store import (
    CACHE_SCHEMA_VERSION,
    ArtifactCache,
    cache_enabled,
    cache_key,
    canonical_jsonable,
    default_cache_root,
)
from repro.netlist.serialize import library_fingerprint, netlist_from_dict, netlist_to_dict

__all__ = [
    "ArtifactCache",
    "CACHE_SCHEMA_VERSION",
    "cache_key",
    "cache_enabled",
    "canonical_jsonable",
    "default_cache_root",
    "default_cache",
    "reset_default_cache",
    "netlist_key",
    "store_netlist",
    "load_cached_netlist",
]

_DEFAULT_CACHE = None


def default_cache():
    """The process-wide :class:`ArtifactCache` (namespace ``repro``).

    Created on first use so ``REPRO_CACHE_DIR`` set by a test fixture or
    a CLI wrapper is honored; :func:`reset_default_cache` re-reads the
    environment.
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ArtifactCache()
    return _DEFAULT_CACHE


def reset_default_cache():
    """Drop the cached singleton (e.g. after changing ``REPRO_CACHE_DIR``)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None


def netlist_key(generator, params, library):
    """Cache key for a synthesized netlist.

    ``generator`` describes the circuit generator and its parameters
    (JSON-able), ``params`` the synthesis options, ``library`` the
    :class:`~repro.netlist.library.CellLibrary` instance (fingerprinted,
    so editing any cell invalidates every dependent netlist).
    """
    return cache_key("netlist", generator, params, library_fingerprint(library))


def store_netlist(cache, key, netlist):
    """Serialize ``netlist`` (plus its solver vectors) into ``cache``."""
    arrays = {
        "edges": np.asarray(netlist.edge_array()),
        "bias_ma": np.asarray(netlist.bias_vector_ma()),
        "area_um2": np.asarray(netlist.area_vector_um2()),
    }
    return cache.put(
        key,
        "netlist",
        netlist_to_dict(netlist),
        arrays=arrays,
        meta={"circuit": netlist.name, "gates": netlist.num_gates},
    )


def load_cached_netlist(cache, key, library):
    """Rebuild a cached netlist, or ``None`` on miss.

    The stored edge/bias/area solver vectors are cross-checked against
    the rebuilt netlist (which leaves them primed in its vector cache,
    so the first solver call pays nothing extra).  Any mismatch — a
    corrupt or stale sidecar — is treated as corruption: the entry is
    dropped and the caller regenerates.
    """
    found = cache.get(key, "netlist")
    if found is None:
        return None
    payload, arrays = found
    try:
        netlist = netlist_from_dict(payload, library)
    except Exception:
        cache._count("corrupt")
        cache._drop_entry(key)
        return None
    edges = arrays.get("edges")
    bias = arrays.get("bias_ma")
    area = arrays.get("area_um2")
    if (
        edges is None
        or bias is None
        or area is None
        or not np.array_equal(edges, netlist.edge_array())
        or not np.array_equal(bias, netlist.bias_vector_ma())
        or not np.array_equal(area, netlist.area_vector_um2())
    ):
        cache._count("corrupt")
        cache._drop_entry(key)
        return None
    return netlist
