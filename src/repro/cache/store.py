"""Content-keyed on-disk artifact store.

Layout (all inside one *namespace* directory, so :meth:`ArtifactCache.clear`
can never touch anything else)::

    <root>/<namespace>/<key[:2]>/<key>.json   # schema + meta + payload
    <root>/<namespace>/<key[:2]>/<key>.npz    # optional numpy arrays

``root`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-gpp``;
setting ``REPRO_CACHE=0`` (or ``off``/``false``/``no``) disables every
read and write so a run can be forced cold.  Keys come from
:func:`cache_key` — a sha256 over canonical JSON of the artifact kind,
its generator + parameters, the cell-library fingerprint and
:data:`CACHE_SCHEMA_VERSION`, so any input that could change the bytes
of the artifact changes the key.

Every entry carries a payload checksum; a corrupted entry (truncated
file, bad JSON, schema drift, checksum or array mismatch) is counted,
deleted and reported as a miss — callers regenerate and overwrite.
Hit/miss/write/corrupt counts are kept on :attr:`ArtifactCache.stats`
and mirrored into the process metrics registry (``cache.*``) whenever
observability is enabled.
"""

import hashlib
import io
import json
import os
import shutil
import uuid

import numpy as np

from repro import envcfg
from repro.obs import OBS

#: Version of the on-disk entry layout *and* of the artifact-producing
#: code. Part of every cache key: bump it whenever synthesis, placement
#: or serialization output changes so stale artifacts can never be
#: replayed into newer code.
CACHE_SCHEMA_VERSION = 1


def cache_enabled(environ=None):
    """Whether the on-disk cache is globally enabled (``REPRO_CACHE``)."""
    return not envcfg.flag_disabled("REPRO_CACHE", environ)


def default_cache_root(environ=None):
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-gpp``."""
    env = envcfg.raw("REPRO_CACHE_DIR", environ)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-gpp")


def canonical_jsonable(value):
    """Recursively convert ``value`` into plain JSON-able Python types.

    Sweep and benchmark code routinely builds generator parameters out
    of numpy scalars (``np.int64`` widths from ``np.arange``, ``np.
    float64`` knobs) which ``json.dumps`` rejects with ``TypeError``.
    This canonicalization maps numpy integers/floats/bools to their
    Python equivalents (so ``np.int64(16)`` and ``16`` produce the same
    cache key), arrays to nested lists, tuples to lists, and applies the
    same treatment to dictionary keys.
    """
    if isinstance(value, dict):
        return {
            canonical_jsonable(key) if not isinstance(key, str) else key:
                canonical_jsonable(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [canonical_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return canonical_jsonable(value.tolist())
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def cache_key(kind, generator, params, library_hash):
    """Content key: sha256 over canonical JSON of every input.

    Parameters
    ----------
    kind:
        Artifact kind (``"netlist"``, ...); namespaces the key space.
    generator:
        What produced the artifact (e.g. ``["kogge_stone_adder",
        {"width": 16}]``) — JSON-able, canonicalized with sorted keys
        (numpy scalars/arrays are converted via
        :func:`canonical_jsonable`, so e.g. an ``np.int64`` width yields
        the same key as the plain ``int``).
    params:
        Remaining knobs (e.g. the synthesis options) — JSON-able.
    library_hash:
        :func:`repro.netlist.serialize.library_fingerprint` of the cell
        library the artifact was built against.
    """
    blob = json.dumps(
        canonical_jsonable(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "kind": kind,
                "generator": generator,
                "params": params,
                "library": library_hash,
            }
        ),
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def _payload_checksum(payload):
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


class ArtifactCache:
    """One namespace of the on-disk store; see the module docstring."""

    def __init__(self, root=None, namespace="repro"):
        if not namespace or os.sep in namespace or namespace in (".", ".."):
            raise ValueError(f"invalid cache namespace {namespace!r}")
        self.root = root if root is not None else default_cache_root()
        self.namespace = namespace
        self.stats = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}

    @property
    def path(self):
        """The namespace directory every entry lives under."""
        return os.path.join(self.root, self.namespace)

    @property
    def enabled(self):
        return cache_enabled()

    def _count(self, event, amount=1):
        self.stats[event] += amount
        if OBS.enabled:
            OBS.metrics.counter(f"cache.{event}").inc(amount)

    def _entry_paths(self, key):
        shard = os.path.join(self.path, key[:2])
        return os.path.join(shard, f"{key}.json"), os.path.join(shard, f"{key}.npz")

    def _drop_entry(self, key):
        for path in self._entry_paths(key):
            try:
                os.remove(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def put(self, key, kind, payload, arrays=None, meta=None):
        """Store a JSON payload (and optional numpy arrays) under ``key``.

        Writes are atomic (per-writer temp file + rename) so a crashed
        writer leaves no half-entry behind and concurrent workers
        racing on the same key each complete their own rename — last
        writer wins with identical content, since keys are content
        addresses.  A reader that still catches a torn entry falls back
        to regeneration via the corruption path.
        """
        if not self.enabled:
            return None
        json_path, npz_path = self._entry_paths(key)
        os.makedirs(os.path.dirname(json_path), exist_ok=True)
        suffix = f".{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        if arrays:
            buffer = io.BytesIO()
            np.savez(buffer, **arrays)
            tmp = npz_path + suffix
            with open(tmp, "wb") as handle:
                handle.write(buffer.getvalue())
            os.replace(tmp, npz_path)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "meta": meta or {},
            "checksum": _payload_checksum(payload),
            "arrays": sorted(arrays) if arrays else [],
            "payload": payload,
        }
        tmp = json_path + suffix
        with open(tmp, "w") as handle:
            json.dump(entry, handle)
        os.replace(tmp, json_path)
        self._count("writes")
        return json_path

    def get(self, key, kind):
        """Load ``(payload, arrays)`` for ``key`` or ``None`` on miss.

        Any corruption — unreadable JSON, schema or kind drift, payload
        checksum mismatch, missing/undecodable array file — deletes the
        entry and reports a miss, so callers always regenerate cleanly.
        """
        entry = self.get_entry(key, kind)
        if entry is None:
            return None
        payload, arrays, _meta = entry
        return payload, arrays

    def get_entry(self, key, kind):
        """Like :meth:`get` but returns ``(payload, arrays, meta)``.

        ``meta`` is whatever dict :meth:`put` stored alongside the
        payload — the service's ECO route uses it to recover the
        canonical request a stored result answered.
        """
        if not self.enabled:
            return None
        json_path, npz_path = self._entry_paths(key)
        try:
            with open(json_path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self._count("misses")
            return None
        except (OSError, ValueError):
            self._count("corrupt")
            self._count("misses")
            self._drop_entry(key)
            return None
        try:
            if entry["schema"] != CACHE_SCHEMA_VERSION or entry["kind"] != kind:
                raise ValueError("schema or kind drift")
            payload = entry["payload"]
            if entry["checksum"] != _payload_checksum(payload):
                raise ValueError("payload checksum mismatch")
            arrays = {}
            if entry.get("arrays"):
                with np.load(npz_path) as data:
                    for name in entry["arrays"]:
                        arrays[name] = np.array(data[name])
        except (KeyError, ValueError, OSError):
            self._count("corrupt")
            self._count("misses")
            self._drop_entry(key)
            return None
        self._count("hits")
        return payload, arrays, entry.get("meta", {})

    # ------------------------------------------------------------------
    def entries(self):
        """Iterate over entry records (no payloads): one dict per entry.

        Each record carries ``key``, ``kind`` (``None`` when the entry
        JSON is unreadable — garbage collection treats those as
        droppable), ``meta`` (the dict :meth:`put` stored), ``mtime``
        (seconds since the epoch of the entry file) and ``bytes``
        (entry file + array file).  Ordering is unspecified.
        """
        if not os.path.isdir(self.path):
            return
        for dirpath, _dirnames, filenames in os.walk(self.path):
            for filename in sorted(filenames):
                if not filename.endswith(".json"):
                    continue
                key = filename[:-len(".json")]
                json_path = os.path.join(dirpath, filename)
                npz_path = os.path.join(dirpath, f"{key}.npz")
                record = {"key": key, "kind": None, "meta": {}}
                try:
                    record["mtime"] = os.path.getmtime(json_path)
                    record["bytes"] = os.path.getsize(json_path)
                except OSError:
                    continue  # deleted underneath us
                try:
                    record["bytes"] += os.path.getsize(npz_path)
                except OSError:
                    pass
                try:
                    with open(json_path) as handle:
                        entry = json.load(handle)
                    record["kind"] = entry.get("kind")
                    meta = entry.get("meta")
                    if isinstance(meta, dict):
                        record["meta"] = meta
                except (OSError, ValueError):
                    pass  # unreadable: record stays kind=None
                yield record

    def remove(self, key):
        """Delete one entry outright; ``True`` when a file existed."""
        json_path, npz_path = self._entry_paths(key)
        existed = os.path.exists(json_path) or os.path.exists(npz_path)
        self._drop_entry(key)
        return existed

    # ------------------------------------------------------------------
    def info(self):
        """Entry count, total bytes and per-kind breakdown of the namespace."""
        entries = 0
        total_bytes = 0
        kinds = {}
        if os.path.isdir(self.path):
            for dirpath, _dirnames, filenames in os.walk(self.path):
                for filename in filenames:
                    full = os.path.join(dirpath, filename)
                    try:
                        total_bytes += os.path.getsize(full)
                    except OSError:
                        continue
                    if filename.endswith(".json"):
                        entries += 1
                        try:
                            with open(full) as handle:
                                kind = json.load(handle).get("kind", "?")
                        except (OSError, ValueError):
                            kind = "corrupt"
                        kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "path": self.path,
            "enabled": self.enabled,
            "entries": entries,
            "bytes": total_bytes,
            "kinds": kinds,
            "stats": dict(self.stats),
        }

    def clear(self):
        """Remove the namespace directory (and nothing outside it).

        Returns the number of entries removed.  The cache root itself —
        which other tools may share — is left untouched.
        """
        removed = self.info()["entries"]
        shutil.rmtree(self.path, ignore_errors=True)
        return removed
