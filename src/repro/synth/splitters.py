"""Splitter-tree insertion.

An SFQ pulse is a quantum of flux — it cannot be passively forked, so a
cell output drives exactly one sink and fanout is realized with active
splitter cells (2 outputs each).  :func:`insert_splitters` rewrites a
:class:`~repro.synth.mapping.MappedGraph` so that

* every node drives at most ``cell.max_fanout`` sinks (1, or 2 for
  splitters);
* every primary input port feeds exactly one node;
* a node that both feeds logic and a primary output gets the output
  counted as a sink.

A driver with ``f`` sinks receives a balanced binary tree of ``f - 1``
splitters (depth ``ceil(log2 f)``), keeping the added interconnect depth
minimal.  Splitters are transparent to the clock stage, so balancing is
preserved.
"""

import math

from repro.utils.errors import SynthesisError

SPLITTER_TAG = "sp"


def _attach(graph, driver, sinks, splitter_cell, tag):
    """Give every entry of ``sinks`` its own copy of ``driver``'s pulse.

    ``sinks`` entries are ``("node", sink id, fanin position)`` or
    ``("output", port name)``.  Creates ``len(sinks) - 1`` splitters.
    """
    if len(sinks) == 1:
        kind = sinks[0][0]
        if kind == "node":
            _, sink_id, position = sinks[0]
            graph.nodes[sink_id].fanins[position] = driver
        else:
            _, port_name = sinks[0]
            if not isinstance(driver, int):
                raise SynthesisError(f"output port {port_name!r} cannot be driven by an input port directly")
            graph.output_ports[port_name] = driver
        return 0
    splitter = graph.add_node(splitter_cell, [driver], tag=tag)
    half = (len(sinks) + 1) // 2
    count = 1
    count += _attach(graph, splitter, sinks[:half], splitter_cell, tag)
    count += _attach(graph, splitter, sinks[half:], splitter_cell, tag)
    return count


def insert_splitters(graph, splitter_cell=None, tag=SPLITTER_TAG):
    """Expand all illegal fanouts with splitter trees (in place).

    Returns ``(graph, inserted_count)``.
    """
    if splitter_cell is None:
        splitter_cell = graph.library.splitter.name
    if splitter_cell not in graph.library:
        raise SynthesisError(f"splitter cell {splitter_cell!r} not in library")

    # Collect sinks per driver: fanin references plus output-port bindings.
    sinks_of = {}
    for node in graph.nodes:
        for position, fanin in enumerate(node.fanins):
            key = fanin if not isinstance(fanin, int) else int(fanin)
            sinks_of.setdefault(key, []).append(("node", node.id, position))
    for port_name, node_id in graph.output_ports.items():
        sinks_of.setdefault(int(node_id), []).append(("output", port_name))

    inserted = 0
    # Snapshot keys: _attach adds splitter nodes, and fresh splitters are
    # created with legal fanout, so they never need re-expansion.
    for driver, sinks in list(sinks_of.items()):
        capacity = 1 if not isinstance(driver, int) else graph.cell(driver).max_fanout
        if len(sinks) <= capacity:
            continue
        if capacity == 2:
            # A splitter over capacity should not happen (we only create
            # legal ones), but handle it by re-expanding both slots.
            half = (len(sinks) + 1) // 2
            inserted += _attach(graph, driver, sinks[:half], splitter_cell, tag)
            inserted += _attach(graph, driver, sinks[half:], splitter_cell, tag)
        else:
            inserted += _attach(graph, driver, sinks, splitter_cell, tag)
    return graph, inserted


def splitter_tree_size(fanout):
    """Number of splitters needed for a given fanout (``max(f-1, 0)``)."""
    return max(int(fanout) - 1, 0)


def splitter_tree_depth(fanout):
    """Depth of the balanced splitter tree for a given fanout."""
    return 0 if fanout <= 1 else math.ceil(math.log2(fanout))


def check_fanout_legal(graph):
    """Return illegal ``(driver, fanout, capacity)`` triples (empty = OK)."""
    counts = {}
    for node in graph.nodes:
        for fanin in node.fanins:
            key = fanin if not isinstance(fanin, int) else int(fanin)
            counts[key] = counts.get(key, 0) + 1
    for node_id in graph.output_ports.values():
        counts[int(node_id)] = counts.get(int(node_id), 0) + 1
    violations = []
    for driver, fanout in counts.items():
        capacity = 1 if not isinstance(driver, int) else graph.cell(driver).max_fanout
        if fanout > capacity:
            violations.append((driver, fanout, capacity))
    return violations
