"""End-to-end SFQ synthesis: logic IR -> placed, legal SFQ netlist.

:func:`synthesize` chains decomposition, technology mapping, full path
balancing, splitter insertion, optional clock distribution and row
placement, then converts the mapped graph into a
:class:`~repro.netlist.netlist.Netlist` and checks it against the SFQ
design rules.  The returned netlist is exactly what the paper's
algorithm takes as input.
"""

from dataclasses import dataclass

from repro.netlist.library import default_library
from repro.netlist.netlist import Netlist
from repro.netlist.validate import check_sfq_rules, validate_netlist
from repro.synth.balancing import balance
from repro.synth.clocking import add_clock_spine
from repro.synth.mapping import decompose, map_circuit
from repro.synth.placement import place_netlist
from repro.synth.splitters import insert_splitters
from repro.utils.errors import SynthesisError


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the synthesis flow.

    Attributes
    ----------
    balance_outputs:
        Pad primary outputs to a common pipeline depth (default True —
        the reconstructed benchmarks are fully pipelined).
    include_clock_tree:
        Add the flow-clocking spine to the netlist graph.  Off by
        default: the paper's connection counts are consistent with
        signal nets only (see :mod:`repro.synth.clocking`).
    place:
        Run the row placer so gates carry DEF-able coordinates.
    aspect_ratio:
        Die aspect passed to the placer.
    check_rules:
        Verify SFQ design rules on the result and raise on violation.
    """

    balance_outputs: bool = True
    include_clock_tree: bool = False
    place: bool = True
    aspect_ratio: float = 1.0
    check_rules: bool = True


@dataclass(frozen=True)
class SynthesisStats:
    """Cell-population accounting of one synthesis run."""

    logic_gates: int
    balance_dffs: int
    splitters: int
    clock_splitters: int
    total_gates: int
    connections: int

    def as_dict(self):
        return {
            "logic_gates": self.logic_gates,
            "balance_dffs": self.balance_dffs,
            "splitters": self.splitters,
            "clock_splitters": self.clock_splitters,
            "total_gates": self.total_gates,
            "connections": self.connections,
        }


def _graph_to_netlist(graph, clock_edges, library, name):
    """Materialize the mapped graph as a Netlist with ports and edges."""
    netlist = Netlist(name, library=library)
    for node in graph.nodes:
        netlist.add_gate(f"{node.tag}{node.id}", library[node.cell_name])
    for node in graph.nodes:
        for fanin in node.fanins:
            if isinstance(fanin, int):
                netlist.connect(fanin, node.id)
    for driver, sink in clock_edges:
        if isinstance(driver, int):
            netlist.connect(driver, sink)
        # clock edges from the clk port are port bindings, not gate edges

    # Input ports: after splitter insertion each port feeds exactly one
    # node; find it (ports with no consumer stay unbound).
    port_sink = {}
    for node in graph.nodes:
        for fanin in node.fanins:
            if not isinstance(fanin, int):
                _, port_name = fanin
                port_sink.setdefault(port_name, node.id)
    for port_name in graph.input_ports:
        netlist.add_port(port_name, "input", port_sink.get(port_name))
    for port_name, node_id in graph.output_ports.items():
        netlist.add_port(port_name, "output", node_id)
    return netlist


def synthesize(circuit, library=None, options=None):
    """Synthesize a logic circuit into a placed SFQ netlist.

    Parameters
    ----------
    circuit:
        A :class:`~repro.synth.logic.LogicCircuit`.
    library:
        Target cell library (defaults to
        :func:`repro.netlist.library.default_library`).
    options:
        :class:`SynthesisOptions`.

    Returns
    -------
    ``(netlist, stats)`` — the placed netlist and a
    :class:`SynthesisStats` record.
    """
    if library is None:
        library = default_library()
    if options is None:
        options = SynthesisOptions()
    if not circuit.outputs:
        raise SynthesisError(f"{circuit.name}: circuit has no outputs")

    decomposed = decompose(circuit)
    graph = map_circuit(decomposed, library)
    logic_gates = len(graph.nodes)

    graph, balance_dffs = balance(graph, balance_outputs=options.balance_outputs)
    graph, splitters = insert_splitters(graph)

    clock_edges = []
    clock_splitters = 0
    if options.include_clock_tree:
        graph, clock_edges, clock_splitters = add_clock_spine(graph)

    netlist = _graph_to_netlist(graph, clock_edges, library, circuit.name)
    validate_netlist(netlist)
    if options.check_rules:
        # Clock consumers receive one extra (clock) connection beyond
        # their data pins, so skip the fanin rule when the spine is in.
        issues = [
            issue
            for issue in check_sfq_rules(netlist)
            if not (options.include_clock_tree and issue.rule == "fanin")
        ]
        if issues:
            details = "; ".join(str(issue) for issue in issues[:5])
            raise SynthesisError(
                f"{circuit.name}: synthesis produced {len(issues)} SFQ rule "
                f"violations ({details})"
            )
    if options.place:
        place_netlist(netlist, aspect_ratio=options.aspect_ratio)

    stats = SynthesisStats(
        logic_gates=logic_gates,
        balance_dffs=balance_dffs,
        splitters=splitters,
        clock_splitters=clock_splitters,
        total_gates=netlist.num_gates,
        connections=netlist.num_connections,
    )
    return netlist, stats
