"""SFQ synthesis flow.

Turns a technology-independent logic circuit (:mod:`repro.synth.logic`)
into a legal SFQ gate-level netlist:

1. :mod:`repro.synth.mapping` — decompose to 2-input gates and map onto
   the SFQ cell library;
2. :mod:`repro.synth.balancing` — full path balancing with DFF chains
   (SFQ logic is gate-level pipelined, Section II of the paper);
3. :mod:`repro.synth.splitters` — splitter-tree insertion (an SFQ pulse
   cannot be passively forked);
4. :mod:`repro.synth.clocking` — optional flow-clocking distribution
   network;
5. :mod:`repro.synth.placement` — row-based placement producing DEF
   coordinates.

:func:`repro.synth.flow.synthesize` chains all of the above.  This flow
is how the paper's (non-public) benchmark suite is reconstructed; see
DESIGN.md, substitution 1.
"""

from repro.synth.logic import LogicCircuit, LogicOp
from repro.synth.flow import SynthesisOptions, SynthesisStats, synthesize

__all__ = [
    "LogicCircuit",
    "LogicOp",
    "SynthesisOptions",
    "SynthesisStats",
    "synthesize",
]
